"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in environments without the `wheel` module (offline
containers), via `python setup.py develop` or legacy pip code paths.
"""

from setuptools import setup

setup()
