#!/usr/bin/env python3
"""Scenario 2 — an encrypted salary database with live updates (USPS).

The paper's second dataset is salary records — heavily skewed (few
distinct values, large clusters), the worst case for Logarithmic-SRC and
the showcase for SRC-i.  This example also exercises Section 7: monthly
payroll batches flow through the LSM-style update manager (fresh keys
per batch, hierarchical consolidation, forward privacy), with raises
(modifications) and departures (deletions).

Run:  python examples/salary_audit.py
"""

from __future__ import annotations

import random

from repro import make_scheme
from repro.updates import BatchUpdateManager, delete, insert, modify
from repro.workloads.datasets import usps_like

DOMAIN = 276_841  # the USPS salary domain
rng = random.Random(2024)

# The update manager creates one fresh-keyed static SRC-i index per
# payroll batch and consolidates every 3 batches.
seeder = random.Random(99)
manager = BatchUpdateManager(
    lambda: make_scheme(
        "logarithmic-src-i", DOMAIN, rng=random.Random(seeder.randrange(2**62))
    ),
    consolidation_step=3,
    rng=rng,
)

# Month 1: onboarding 300 employees with skewed salaries.
roster = {eid: value for eid, value in usps_like(300, seed=11)}
manager.apply_batch([insert(eid, sal) for eid, sal in roster.items()])
print(f"month 1: {len(roster)} employees onboarded; "
      f"active indexes: {manager.active_indexes}")

# Month 2: 10 raises, 5 departures, 20 hires.
batch = []
for eid in rng.sample(sorted(roster), 10):
    new_salary = min(DOMAIN - 1, roster[eid] + 5_000)
    batch.extend(modify(eid, roster[eid], new_salary))
    roster[eid] = new_salary
for eid in rng.sample(sorted(roster), 5):
    batch.append(delete(eid, roster.pop(eid)))
for i in range(20):
    eid, sal = 10_000 + i, rng.randrange(30_000, 90_000)
    batch.append(insert(eid, sal))
    roster[eid] = sal
manager.apply_batch(batch)
print(f"month 2: raises/departures/hires applied; "
      f"active indexes: {manager.active_indexes}")

# Month 3: another hiring wave — triggers consolidation (s = 3).
batch = []
for i in range(30):
    eid, sal = 20_000 + i, rng.randrange(25_000, 120_000)
    batch.append(insert(eid, sal))
    roster[eid] = sal
manager.apply_batch(batch)
print(f"month 3: consolidation merged batches; active indexes: "
      f"{manager.active_indexes}, stats: {manager.stats}")

# Audit queries: who earns within each pay band?
bands = [(0, 40_000), (40_001, 80_000), (80_001, DOMAIN - 1)]
print("\npay-band audit:")
for lo, hi in bands:
    outcome = manager.query(lo, hi)
    expected = {eid for eid, sal in roster.items() if lo <= sal <= hi}
    assert outcome.ids == expected, (lo, hi)
    print(f"  [{lo:>7}, {hi:>7}] -> {len(outcome.ids):3d} employees "
          f"(queried {outcome.rounds} indexes, "
          f"{outcome.false_positives} false positives filtered)")

print("\nOK — every band matches the ground-truth roster, across "
      "insertions, raises, departures and consolidations.")
