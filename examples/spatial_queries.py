#!/usr/bin/env python3
"""Scenario 5 — two-dimensional spatial queries (the paper's future work).

Section 9 names multi-attribute range queries as future work.  This
example runs the natural per-dimension composition shipped in
``repro.extensions``: an encrypted store of (latitude, longitude) grid
cells answering "which check-ins fall inside this bounding box", with
one independently-keyed 1-D RSSE index per axis and owner-side
intersection.  The composition's extra leakage (per-axis match sets) is
printed so the trade-off is visible, not hidden.

Run:  python examples/spatial_queries.py
"""

from __future__ import annotations

import random

from repro import make_scheme
from repro.extensions import MultiDimScheme

GRID = 1 << 10  # 1024 x 1024 spatial grid
rng = random.Random(77)

# Check-ins clustered around two hotspots.
points = []
for i in range(500):
    cx, cy = ((200, 300), (700, 800))[i % 2]
    x = max(0, min(GRID - 1, int(rng.gauss(cx, 40))))
    y = max(0, min(GRID - 1, int(rng.gauss(cy, 40))))
    points.append((i, x, y))

seeder = random.Random(5)
md = MultiDimScheme(
    [
        lambda: make_scheme(
            "logarithmic-src-i", GRID, rng=random.Random(seeder.randrange(2**62))
        )
        for _ in range(2)
    ]
)
md.build_index(points)
print(f"indexed {len(points)} points; combined index "
      f"{md.index_size_bytes() // 1024} KiB across 2 dimensions")

boxes = [
    ((150, 250), (250, 350)),   # hotspot 1
    ((650, 750), (750, 850)),   # hotspot 2
    ((0, 100), (900, 1023)),    # empty corner
]
for (xlo, xhi), (ylo, yhi) in boxes:
    outcome = md.query([(xlo, xhi), (ylo, yhi)])
    expected = {
        i for i, x, y in points if xlo <= x <= xhi and ylo <= y <= yhi
    }
    assert outcome.ids == expected
    print(f"box x:[{xlo},{xhi}] y:[{ylo},{yhi}] -> {len(outcome.ids):3d} points, "
          f"{outcome.rounds} protocol rounds, "
          f"per-axis candidates revealed: {outcome.false_positives + len(outcome.ids)}")

print("\nNote the honest caveat: the server learns each axis's 1-D match "
      "set (the candidates line), which is more than the box's final "
      "access pattern — exactly why the paper calls multi-dimensional "
      "RSSE 'considerably harder'.")
