#!/usr/bin/env python3
"""Quickstart: an updatable encrypted range store in a dozen lines.

``RangeStore`` is the library's front door: it composes an RSSE scheme
(Logarithmic-SRC-i by default — the paper's best security/efficiency
trade-off), the forward-private batch-update manager, and a pluggable
storage backend behind one insert/delete/search/save/load API.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import RangeStore

# Open a store over a 16-bit measurement domain and insert sensor
# readings.  Writes buffer owner-side and flush as one encrypted batch.
store = RangeStore.open("logarithmic-src-i", domain_size=1 << 16)
store.insert_many(
    [
        (101, 2_310),
        (102, 47_000),
        (103, 2_355),
        (104, 61_200),
        (105, 2_290),
    ]
)

# Which sensors reported a value between 2,000 and 3,000?  One call runs
# trapdoor → (two-round) encrypted search → client-side refinement.
outcome = store.search(2_000, 3_000)

print("matching ids:       ", sorted(outcome.ids))
print("server returned:    ", len(outcome.raw_ids), "candidates")
print("false positives:    ", outcome.false_positives)
print("query token bytes:  ", outcome.token_bytes)
print("response bytes:     ", outcome.response_bytes)
print("protocol rounds:    ", outcome.rounds)
print("index size (bytes): ", store.index_bytes())

assert sorted(outcome.ids) == [101, 103, 105]

# Updates are first-class: tombstone one reading, add another.
store.delete(103, 2_355)
store.insert(106, 2_500)
assert sorted(store.search(2_000, 3_000).ids) == [101, 105, 106]

# Persistence: checkpoint everything (keys included — always use a
# passphrase) and reopen it elsewhere.
with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "sensors.rsse")
    store.save(path, passphrase="s3cret")
    reopened = RangeStore.open_snapshot(path, passphrase="s3cret")
    assert sorted(reopened.search(2_000, 3_000).ids) == [101, 105, 106]

print("\nOK — the encrypted store answered exactly, before and after reload.")
