#!/usr/bin/env python3
"""Quickstart: encrypted range search in a dozen lines.

An owner outsources a small dataset to an (untrusted) server and runs
range queries that reveal nothing but the formulated leakage.  This uses
Logarithmic-SRC-i — the paper's best security/efficiency trade-off.

Run:  python examples/quickstart.py
"""

from repro import make_scheme

# Setup + BuildIndex: the owner encrypts and indexes (id, value) tuples.
# Here: sensor readings with a 16-bit measurement domain.
scheme = make_scheme("logarithmic-src-i", domain_size=1 << 16)
readings = [
    (101, 2_310),
    (102, 47_000),
    (103, 2_355),
    (104, 61_200),
    (105, 2_290),
]
scheme.build_index(readings)

# Trpdr + Search + refinement, all in one call: which sensors reported
# a value between 2,000 and 3,000?
outcome = scheme.query(2_000, 3_000)

print("matching ids:       ", sorted(outcome.ids))
print("server returned:    ", len(outcome.raw_ids), "candidates")
print("false positives:    ", outcome.false_positives)
print("query token bytes:  ", outcome.token_bytes)
print("protocol rounds:    ", outcome.rounds)
print("index size (bytes): ", scheme.index_size_bytes())

assert sorted(outcome.ids) == [101, 103, 105]
print("\nOK — the encrypted index answered exactly.")
