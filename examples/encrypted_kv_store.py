#!/usr/bin/env python3
"""Scenario 4 — using the SSE substrate directly as an encrypted multimap.

The RSSE schemes treat single-keyword SSE as a black box; that black box
is useful on its own.  This example builds an encrypted tag → document
store with PiBas, ships the EDB over a (simulated) wire, and shows that
the server learns nothing it wasn't handed a token for — including the
DPRF-delegation trick the Constant schemes are built on.

Run:  python examples/encrypted_kv_store.py
"""

from __future__ import annotations

import random

from repro.crypto.dprf import GgmDprf
from repro.crypto.prf import generate_key
from repro.sse.base import EncryptedIndex, PrfKeyDeriver, token_from_secret
from repro.sse.encoding import decode_id, encode_id
from repro.sse.pibas import PiBas

# --- Owner side: build an encrypted tag index ---------------------------
master_key = generate_key()
sse = PiBas(PrfKeyDeriver(master_key))

documents_by_tag = {
    b"tag:finance": [encode_id(1), encode_id(4), encode_id(9)],
    b"tag:legal": [encode_id(2)],
    b"tag:ops": [encode_id(4), encode_id(7)],
}
edb = sse.build_index(documents_by_tag)
wire = edb.to_bytes()
print(f"encrypted index: {len(edb)} entries, {len(wire)} bytes on the wire")

# --- Server side: holds only the EDB bytes ------------------------------
server_edb = EncryptedIndex.from_bytes(wire)

# --- Owner queries one tag ----------------------------------------------
token = sse.trapdoor(b"tag:finance")
ids = sorted(decode_id(p) for p in sse.search(server_edb, token))
print(f"tag:finance -> documents {ids}")
assert ids == [1, 4, 9]

# Without a token, a label is just 16 pseudorandom bytes:
print("a raw EDB label:", wire[8 + 4 : 8 + 4 + 16].hex())

# --- Bonus: DPRF delegation over a numeric keyword space ----------------
# Index documents under numeric hour-of-week keywords, then delegate the
# whole business-hours range with O(log R) seeds instead of R tokens.
dprf = GgmDprf(168)  # hours in a week
dprf_key = GgmDprf.generate_key()
from repro.sse.base import CallbackKeyDeriver

hours_sse = PiBas(
    CallbackKeyDeriver(lambda kw: dprf.evaluate(dprf_key, int.from_bytes(kw, "big")))
)
events = {(h).to_bytes(8, "big"): [encode_id(1000 + h)] for h in range(168)}
hours_edb = hours_sse.build_index(events)

tokens = dprf.delegate(dprf_key, 9, 17, shuffle_rng=random.SystemRandom())
print(f"\ndelegating hours [9, 17] with {len(tokens)} GGM seeds "
      f"({sum(t.serialized_size() for t in tokens)} bytes)")
found = []
for leaf in GgmDprf.expand_all(tokens):
    found.extend(
        decode_id(p) for p in hours_sse.search(hours_edb, token_from_secret(leaf))
    )
assert sorted(found) == [1000 + h for h in range(9, 18)]
print(f"server resolved {len(found)} hourly events without ever seeing "
      "the range endpoints or the key.")
