#!/usr/bin/env python3
"""Scenario 1 — time-range analytics over outsourced check-ins (Gowalla).

The paper's first evaluation dataset is a geo-social check-in log
queried by timestamp.  This example builds a synthetic check-in stream
with the same shape (near-uniform timestamps, ~95% distinct), indexes it
under every experiment scheme, and contrasts their index size, query
size and accuracy on the same "last-hour"-style window queries — a
miniature of the trade-off study in Table 1.

Run:  python examples/geo_checkins.py
"""

from __future__ import annotations

import random

from repro import EXPERIMENT_SCHEMES, make_scheme
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.harness.tables import render_table
from repro.workloads.datasets import with_distinct_fraction

DOMAIN = 1 << 20  # timestamp domain (scaled from Gowalla's ~1.03e8)
N_CHECKINS = 2_000

print(f"Generating {N_CHECKINS} synthetic check-ins over a {DOMAIN}-value "
      "timestamp domain …")
checkins = with_distinct_fraction(N_CHECKINS, DOMAIN, 0.95, seed=7)
oracle = PlaintextRangeIndex(checkins)

# Three window queries, like "who checked in during this hour".
windows = [
    (100_000, 140_000),
    (500_000, 505_000),
    (0, DOMAIN - 1),
]

rows = []
for name in EXPERIMENT_SCHEMES:
    kwargs = {"rng": random.Random(1)}
    if name.startswith("constant"):
        kwargs["intersection_policy"] = "allow"
    scheme = make_scheme(name, DOMAIN, **kwargs)
    scheme.build_index(checkins)
    total_token_bytes = 0
    total_fps = 0
    for lo, hi in windows:
        outcome = scheme.query(lo, hi)
        expected = sorted(oracle.query(lo, hi))
        assert sorted(outcome.ids) == expected, (name, lo, hi)
        total_token_bytes += outcome.token_bytes
        total_fps += outcome.false_positives
    rows.append(
        [
            name,
            scheme.index_size_bytes() // 1024,
            total_token_bytes // len(windows),
            total_fps,
        ]
    )

print()
print(render_table(
    ["scheme", "index KiB", "avg token B", "false positives"], rows
))
print("\nEvery scheme returned the exact oracle answer after refinement.")
print("Note the Table 1 trade-off: Constant = smallest index but most "
      "leakage; SRC = single-token queries but false positives; SRC-i "
      "bounds the false positives at slightly larger index size.")
