#!/usr/bin/env python3
"""Scenario 6 — choosing the right scheme, then proving it healthy.

The paper ends every scheme section with qualitative advice on when to
use it.  This example walks a practitioner's actual flow: profile the
dataset, state workload constraints, let the advisor pick the Table 1
scheme (with its reasoning), build it, persist it with a passphrase,
reopen it, and run the self-check diagnostics against ground truth.

Run:  python examples/choosing_a_scheme.py
"""

from __future__ import annotations

import tempfile
import pathlib

from repro import make_scheme
from repro.harness import (
    WorkloadProfile,
    profile_dataset,
    recommend,
    verify_scheme,
)
from repro.io import load_scheme, save_scheme
from repro.workloads.datasets import usps_like

DOMAIN = 276_841
records = usps_like(1_000, seed=31)

# 1. Profile the data.
profile = profile_dataset(records, DOMAIN)
print(f"dataset: n={profile.n}, distinct fraction="
      f"{profile.distinct_fraction:.2f}, heaviest value share="
      f"{profile.max_value_share:.2f}")

# 2. State the workload: an analyst dashboard — overlapping queries,
#    false positives fine (refined client-side), ordering must stay
#    hidden, an extra round trip is acceptable.
workload = WorkloadProfile(
    intersecting_queries=True,
    false_positives_ok=True,
    hide_order=True,
    interactive_ok=True,
)

# 3. Ask the advisor.
rec = recommend(profile, workload)
print(f"\nrecommended scheme: {rec.scheme}")
for reason in rec.reasons:
    print(f"  - {reason}")

# 4. Build, persist under a passphrase, reopen.
scheme = make_scheme(rec.scheme, DOMAIN)
scheme.build_index(records)
with tempfile.TemporaryDirectory() as tmp:
    path = pathlib.Path(tmp) / "salaries.rsse"
    save_scheme(scheme, path, passphrase="correct horse battery staple")
    print(f"\nsnapshot written: {path.stat().st_size} bytes (passphrase-wrapped)")
    reopened = load_scheme(path, passphrase="correct horse battery staple")

# 5. Self-check the reopened index against ground truth.
report = verify_scheme(reopened, probes=15, oracle_records=records)
print(f"diagnostics: {report.queries_run} probes, healthy={report.healthy}, "
      f"false positives refined away: {report.false_positive_total}")
assert report.healthy and rec.scheme == "logarithmic-src-i"
print("\nOK — skewed salary data routed to Logarithmic-SRC-i, persisted, "
      "reopened, and verified.")
