#!/usr/bin/env python3
"""Scenario 3 — measuring what each scheme actually leaks.

Table 1 ranks the schemes by security level with qualitative arguments.
This example makes the ranking concrete: it runs honest leakage-only
adversaries against the L2 leakage of each scheme family on the same
dataset and query trace, and reports how much ordering information each
one surrenders.

Run:  python examples/leakage_comparison.py
"""

from __future__ import annotations

import random

from repro.harness.tables import render_table
from repro.leakage import (
    constant_leakage,
    logarithmic_leakage,
    order_reconstruction,
    ordered_pair_accuracy,
    partition_entropy,
    src_leakage,
)

DOMAIN = 1 << 10
rng = random.Random(5)
records = [(i, rng.randrange(DOMAIN)) for i in range(400)]
queries = [(50, 300), (400, 700), (10, 900), (600, 650), (0, DOMAIN - 1)]

total_pairs = 400 * 399 // 2

rows = []
for label, fn in (
    ("constant-brc (level 1)", lambda: constant_leakage(records, DOMAIN, queries)),
    ("logarithmic-brc (level 3)", lambda: logarithmic_leakage(records, DOMAIN, queries)),
    ("logarithmic-src (level 6)", lambda: src_leakage(records, DOMAIN, queries)),
):
    _, trace = fn()
    pairs = order_reconstruction(trace)
    accuracy = ordered_pair_accuracy(pairs, records)
    rows.append(
        [
            label,
            len(pairs),
            f"{100 * len(pairs) / total_pairs:.1f}%",
            f"{accuracy:.2f}",
            f"{partition_entropy(trace):.1f}",
        ]
    )

print("Adversary: passively observes the L2 leakage of 5 range queries")
print(f"over {len(records)} tuples, then reconstructs tuple order.\n")
print(
    render_table(
        [
            "scheme (security level)",
            "ordered pairs recovered",
            "of all pairs",
            "attack precision",
            "partition bits/query",
        ],
        rows,
    )
)
print("""
Reading the table:
 - Constant-* disclose per-subtree id maps: the adversary recovers the
   exact relative order of thousands of tuple pairs (at 100% precision —
   this is real information, not noise).
 - Logarithmic-BRC/URC hide offsets; only the partitioning of each
   result into subtree groups remains (the 'partition bits' column).
 - Logarithmic-SRC collapses every answer into one unordered group:
   nothing to reconstruct, 0 bits of partition structure — the highest
   security level in the framework.""")
