"""Network service benchmark (``BENCH_PR5.json``).

Two questions, two experiments:

**1. What does the socket cost?** (latency)
    One client runs the full owner protocol — trapdoor, search frame,
    fetch frame, decrypt, refine — through the in-process transport and
    through a real loopback TCP connection, same scheme, same keys,
    same queries.  Per-query minimum across passes (the ``timeit``
    rule), lane score = mean of per-query minimums.

    *Gate:* net single-client mean ≤ ``--latency-factor`` (default 2×)
    the in-process mean.

**2. What does concurrency buy?** (throughput)
    A server process hosts one index; 1, 4 and 16 *client processes*
    (real processes — separate GILs, like real owners) each run a
    closed loop of full protocol queries for a fixed window.  The
    gated lane adds ``--rtt-ms`` (default 2 ms — a same-region,
    cross-zone figure) of simulated network latency per response —
    injected server-side as an ``asyncio.sleep``,
    which overlaps across in-flight requests exactly like real
    propagation delay.  This is the service's reason to exist: a
    sequential client pays RTT serially, concurrent clients hide it.
    A raw-loopback (0 RTT) lane is recorded alongside for transparency;
    on a single-CPU box it saturates near the per-request CPU floor
    (scaling ~1.5–2×), which is the honest hardware ceiling, not the
    service's scaling story.

    *Gate:* 16-client aggregate QPS ≥ ``--scaling-floor`` (default 3×)
    single-client QPS on the simulated-RTT lane.

Run it::

    PYTHONPATH=src python benchmarks/bench_net.py --json BENCH_PR5.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_net.py --smoke \
        --json bench-net-smoke.json
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402

#: The shared index handle every process of the throughput experiment
#: addresses (the parent uploads it once; clients attach).
INDEX_ID = 777_000


def _query_mix(rng: random.Random, domain: int, count: int, *, narrow: bool):
    """Seeded workload: point-ish plus ranged queries.

    The throughput mix stays narrow (cheap per query) so the measured
    quantity is the service, not index arithmetic; the latency mix
    includes wide ranges so the socket overhead is priced against
    realistic work.
    """
    ranges = []
    for i in range(count):
        lo = rng.randrange(domain)
        if narrow or i % 2 == 0:
            width = rng.randrange(1, max(2, domain // 64))
        else:
            width = rng.randrange(domain // 16, domain // 4)
        ranges.append((lo, min(domain - 1, lo + width)))
    return ranges


# ---------------------------------------------------------------------------
# Experiment 1: single-client latency, in-process vs TCP
# ---------------------------------------------------------------------------


def _measure_lane(client, ranges, passes: int) -> "dict[str, float]":
    """Per-query min across passes; lane score = mean of minimums."""
    best = [float("inf")] * len(ranges)
    for _ in range(passes):
        for i, (lo, hi) in enumerate(ranges):
            t0 = time.perf_counter()
            client.query(lo, hi)
            elapsed = time.perf_counter() - t0
            if elapsed < best[i]:
                best[i] = elapsed
    return {
        "query_mean_seconds": sum(best) / len(best),
        "query_max_seconds": max(best),
    }


def run_latency(args, scheme_blob: bytes) -> "tuple[dict, dict]":
    from repro.io.snapshot import restore_scheme
    from repro.net import NetTransport, serve_in_thread
    from repro.protocol import RemoteRangeClient, RsseServer

    rng = random.Random(args.seed + 10)
    ranges = _query_mix(rng, args.domain, args.queries, narrow=False)

    # In-process lane.
    scheme = restore_scheme(scheme_blob)
    client = RemoteRangeClient(
        scheme, RsseServer().handle, rng=random.Random(1)
    )
    client.outsource()  # already built — upload only
    client.query(*ranges[0])  # warm caches and lazy state
    inproc = _measure_lane(client, ranges, args.passes)

    # TCP loopback lane: identical restored keys, identical queries.
    scheme = restore_scheme(scheme_blob)
    with serve_in_thread(RsseServer()) as server:
        with NetTransport("127.0.0.1", server.port, pool_size=2) as transport:
            client = RemoteRangeClient(scheme, transport, rng=random.Random(1))
            client.outsource()
            client.query(*ranges[0])
            net = _measure_lane(client, ranges, args.passes)
    net["overhead_ratio"] = (
        net["query_mean_seconds"] / inproc["query_mean_seconds"]
    )
    return inproc, net


# ---------------------------------------------------------------------------
# Experiment 2: multi-process throughput (spawned workers)
# ---------------------------------------------------------------------------


def _server_main(port_value, ready, stop, rtt_s: float) -> None:
    """Server process: one RsseNetServer until the stop event."""
    import asyncio

    from repro.net.server import RsseNetServer
    from repro.protocol import RsseServer

    async def run() -> None:
        server = RsseNetServer(
            RsseServer(), response_delay_s=rtt_s, max_inflight=512
        )
        await server.start()
        port_value.value = server.port
        ready.set()
        while not stop.is_set():
            await asyncio.sleep(0.05)
        await server.stop()

    asyncio.run(run())


def _client_main(
    snapshot_path: str,
    port: int,
    duration: float,
    barrier,
    counts,
    slot: int,
    seed: int,
    domain: int,
) -> None:
    """Client process: closed-loop full-protocol queries for a window."""
    from repro.io.snapshot import load_scheme
    from repro.net import NetTransport
    from repro.protocol import RemoteRangeClient

    scheme = load_scheme(snapshot_path)
    rng = random.Random(seed)
    ranges = _query_mix(rng, domain, 64, narrow=True)
    with NetTransport("127.0.0.1", port, pool_size=1) as transport:
        client = RemoteRangeClient(scheme, transport, index_id=INDEX_ID)
        client.attach()
        client.query(*ranges[0])  # connection + caches warm
        barrier.wait(timeout=120)
        deadline = time.perf_counter() + duration
        done = 0
        while time.perf_counter() < deadline:
            lo, hi = ranges[done % len(ranges)]
            client.query(lo, hi)
            done += 1
        counts[slot] = done


def _throughput_lane(
    ctx, snapshot_path: str, port: int, clients: int, duration: float, args
) -> float:
    counts = ctx.Array("q", clients)
    barrier = ctx.Barrier(clients + 1)
    workers = [
        ctx.Process(
            target=_client_main,
            args=(
                snapshot_path,
                port,
                duration,
                barrier,
                counts,
                slot,
                args.seed + 100 + slot,
                args.domain,
            ),
        )
        for slot in range(clients)
    ]
    for w in workers:
        w.start()
    barrier.wait(timeout=180)  # everyone connected and warm
    for w in workers:
        w.join(timeout=duration + 120)
    total = sum(counts[:])
    for w in workers:
        if w.exitcode != 0:
            raise RuntimeError(
                f"client worker exited {w.exitcode} (lane {clients})"
            )
    return total / duration


def run_throughput(
    args, snapshot_path: str, rtt_ms: float
) -> "dict[int, float]":
    """QPS per client count, against one server process at ``rtt_ms``."""
    from repro.io.snapshot import load_scheme
    from repro.net import NetTransport
    from repro.protocol import RemoteRangeClient

    ctx = multiprocessing.get_context("spawn")
    port_value = ctx.Value("i", 0)
    ready = ctx.Event()
    stop = ctx.Event()
    server = ctx.Process(
        target=_server_main,
        args=(port_value, ready, stop, rtt_ms / 1000.0),
    )
    server.start()
    try:
        if not ready.wait(timeout=60):
            raise RuntimeError("server process never came up")
        port = port_value.value
        # Upload the index once, from the parent.
        scheme = load_scheme(snapshot_path)
        with NetTransport("127.0.0.1", port) as transport:
            owner = RemoteRangeClient(scheme, transport, index_id=INDEX_ID)
            owner.outsource()
        results: "dict[int, float]" = {}
        for clients in args.client_counts:
            results[clients] = _throughput_lane(
                ctx, snapshot_path, port, clients, args.duration, args
            )
            print(
                f"  rtt={rtt_ms:g}ms clients={clients:2d}: "
                f"{results[clients]:8.0f} qps",
                flush=True,
            )
    finally:
        stop.set()
        server.join(timeout=30)
        if server.is_alive():
            server.terminate()
    return results


# ---------------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--records", type=int, default=1_500)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--queries", type=int, default=48,
                        help="latency-lane query count")
    parser.add_argument("--passes", type=int, default=3,
                        help="latency passes (per-query min scored)")
    parser.add_argument("--clients", default="1,4,16",
                        help="comma-separated client counts")
    parser.add_argument("--duration", type=float, default=2.5,
                        help="throughput window seconds per lane")
    parser.add_argument("--rtt-ms", type=float, default=2.0,
                        help="simulated per-response RTT for the gated lane")
    parser.add_argument("--scheme", default="logarithmic-brc")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--latency-factor", type=float, default=2.0,
                        help="gate: net mean <= factor * in-process mean")
    parser.add_argument("--scaling-floor", type=float, default=3.0,
                        help="gate: 16-client qps >= floor * 1-client qps")
    parser.add_argument("--skip-raw-lane", action="store_true",
                        help="skip the ungated 0-RTT transparency lane")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: small dataset, short windows")
    parser.add_argument("--json", default="BENCH_PR5.json", metavar="PATH")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.records = min(args.records, 300)
        args.queries = min(args.queries, 12)
        args.duration = min(args.duration, 1.2)
        args.passes = min(args.passes, 2)
    args.client_counts = sorted(
        {int(c) for c in str(args.clients).split(",") if c.strip()}
    )
    jsonout.check_baseline_path(args.json, args.force)

    from repro.core.registry import make_scheme
    from repro.io.snapshot import dump_scheme

    rng = random.Random(args.seed)
    records = [(i, rng.randrange(args.domain)) for i in range(args.records)]
    scheme = make_scheme(
        args.scheme, args.domain, rng=random.Random(args.seed + 1)
    )
    t0 = time.perf_counter()
    scheme.build_index(records)
    build_s = time.perf_counter() - t0
    scheme_blob = dump_scheme(scheme)
    print(
        f"built {args.scheme} over {args.records} records "
        f"in {build_s:.2f}s ({len(scheme_blob)} snapshot bytes)"
    )

    results = []

    print("latency: single client, in-process vs TCP loopback")
    inproc, net = run_latency(args, scheme_blob)
    print(
        f"  in-process mean {inproc['query_mean_seconds'] * 1000:.3f} ms | "
        f"net mean {net['query_mean_seconds'] * 1000:.3f} ms | "
        f"overhead {net['overhead_ratio']:.2f}x"
    )
    results.append(
        jsonout.result(
            "latency/in-process",
            "net",
            {"records": args.records, "queries": args.queries},
            **inproc,
        )
    )
    results.append(
        jsonout.result(
            "latency/tcp-loopback",
            "net",
            {"records": args.records, "queries": args.queries},
            **net,
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = os.path.join(tmp, "scheme.rsse")
        with open(snapshot_path, "wb") as fh:
            fh.write(scheme_blob)

        print(f"throughput: simulated rtt {args.rtt_ms:g} ms")
        gated = run_throughput(args, snapshot_path, args.rtt_ms)
        raw: "dict[int, float]" = {}
        if not args.skip_raw_lane:
            print("throughput: raw loopback (transparency lane, ungated)")
            raw = run_throughput(args, snapshot_path, 0.0)

    for clients, qps in gated.items():
        results.append(
            jsonout.result(
                f"throughput/sim-rtt/clients-{clients}",
                "net",
                {"clients": clients, "rtt_ms": args.rtt_ms,
                 "duration_s": args.duration},
                qps=qps,
                scale_vs_single=qps / gated[args.client_counts[0]],
            )
        )
    for clients, qps in raw.items():
        results.append(
            jsonout.result(
                f"throughput/loopback/clients-{clients}",
                "net",
                {"clients": clients, "rtt_ms": 0.0,
                 "duration_s": args.duration},
                qps=qps,
                scale_vs_single=qps / raw[args.client_counts[0]],
            )
        )

    top = max(args.client_counts)
    scaling = gated[top] / gated[args.client_counts[0]]
    results.append(
        jsonout.result(
            "acceptance",
            "net",
            {"latency_factor": args.latency_factor,
             "scaling_floor": args.scaling_floor,
             "top_clients": top},
            latency_overhead_ratio=net["overhead_ratio"],
            scaling_x=scaling,
        )
    )

    jsonout.emit_json(
        args.json,
        "net",
        results,
        meta={
            "records": args.records,
            "domain": args.domain,
            "scheme": args.scheme,
            "rtt_ms": args.rtt_ms,
            "clients": ",".join(map(str, args.client_counts)),
            "duration_s": args.duration,
            "cpus": os.cpu_count(),
            "smoke": args.smoke,
        },
        force=args.force,
    )
    print(f"wrote {args.json}")

    ok = True
    if net["overhead_ratio"] > args.latency_factor:
        print(
            f"GATE FAIL: net latency {net['overhead_ratio']:.2f}x in-process "
            f"(allowed {args.latency_factor}x)"
        )
        ok = False
    if scaling < args.scaling_floor:
        print(
            f"GATE FAIL: {top}-client scaling {scaling:.2f}x "
            f"(floor {args.scaling_floor}x)"
        )
        ok = False
    if ok:
        print(
            f"gates pass: latency overhead {net['overhead_ratio']:.2f}x "
            f"<= {args.latency_factor}x, {top}-client scaling "
            f"{scaling:.2f}x >= {args.scaling_floor}x"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
