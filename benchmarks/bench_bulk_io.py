"""Bulk storage I/O benchmark — the repo's perf baseline (``BENCH_PR2.json``).

Two sections, both repeatable from one committed entry point:

``backend_io``
    The storage seam in isolation, at index-build shape (16-byte
    labels, ~40-byte ciphertexts, plus an encrypted tuple store): the
    *per-key seed path* — one autocommitting ``put``/``get`` per key,
    exactly what every caller degenerated to before the bulk contract —
    against the *bulk path* (``put_many``/``get_many`` inside one
    transaction) on every backend.  The headline number is
    ``sqlite/build speedup_x``: bulk build over the seed path on a
    10k-record index (acceptance floor: ≥ 5×).

``scheme_backend``
    End-to-end build throughput (records/sec) and mean in-process query
    latency per scheme × backend — the trajectory later PRs are
    measured against.

Run it::

    PYTHONPATH=src python benchmarks/bench_bulk_io.py --json BENCH_PR2.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_bulk_io.py \
        --records 2000 --scheme-records 200 --queries 4 --json bench.json
"""

from __future__ import annotations

import argparse
import os
import random
import sqlite3
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402
from repro.core.registry import make_scheme  # noqa: E402
from repro.core.split import EncryptedDatabase  # noqa: E402
from repro.sse.base import EncryptedIndex  # noqa: E402
from repro.storage.backend import (  # noqa: E402
    InMemoryBackend,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
)

#: Benchmark schemes: one per index-size family (log, constant) plus the
#: paper's recommended default (the two-round SRC-i).
SCHEMES = ("logarithmic-brc", "logarithmic-src-i", "constant-brc")

DOMAIN = 1 << 16


class SeedSqliteBackend(SqliteBackend):
    """The pre-bulk-contract SQLite backend, kept for the baseline lane.

    Replicates the seed's behaviour: no WAL, ``synchronous=FULL``, and
    every bulk operation degenerating to one autocommitting statement
    per key — the N+1 pattern this PR's bulk contract removed.
    """

    def __init__(self, path) -> None:
        super().__init__(path)
        self._conn.execute("PRAGMA journal_mode=DELETE")
        self._conn.execute("PRAGMA synchronous=FULL")

    # Per-key fallbacks, exactly what callers paid before the contract.
    put_many = StorageBackend.put_many
    get_many = StorageBackend.get_many
    delete_many = StorageBackend.delete_many
    transaction = StorageBackend.transaction


def _index_shaped_entries(n: int, rng: random.Random):
    """(label, ciphertext) pairs shaped like a built EDB."""
    return [
        (rng.randbytes(16), rng.randbytes(40))
        for _ in range(n)
    ]


def _build_through_db(backend: StorageBackend, entries, tuples) -> float:
    """Time one index build through the EncryptedDatabase call path."""
    db = EncryptedDatabase(backend)
    t0 = time.perf_counter()
    db.put_index("edb", EncryptedIndex(dict(entries)))
    db.replace_tuples(tuples)
    elapsed = time.perf_counter() - t0
    backend.close()
    return elapsed


def bench_backend_io(records: int, tmpdir: str, results: list) -> float:
    """Storage-seam section; returns the sqlite build speedup (the
    acceptance-criterion number)."""
    rng = random.Random(2)
    entries = _index_shaped_entries(records, rng)
    tuples = [(rid, rng.randbytes(56)) for rid in range(records)]
    probe_keys = [k for k, _ in entries[:: max(1, records // 1000)]]

    lanes = {
        "memory": lambda: InMemoryBackend(),
        "sqlite": lambda: SqliteBackend(
            os.path.join(tmpdir, f"bulk-{time.monotonic_ns()}.sqlite")
        ),
        "sharded-sqlite": lambda: ShardedBackend(
            shard_count=4,
            shard_factory=lambda i: SqliteBackend(
                os.path.join(tmpdir, f"shard-{i}-{time.monotonic_ns()}.sqlite")
            ),
        ),
    }
    seed_lanes = {
        "sqlite": lambda: SeedSqliteBackend(
            os.path.join(tmpdir, f"seed-{time.monotonic_ns()}.sqlite")
        ),
    }

    speedup = 0.0
    for name, factory in lanes.items():
        bulk_s = _build_through_db(factory(), entries, tuples)
        results.append(
            jsonout.result(
                f"{name}/build-bulk",
                "backend_io",
                {"records": records, "path": "bulk"},
                build_seconds=bulk_s,
                records_per_s=records / bulk_s if bulk_s else 0.0,
            )
        )
        # Read lane: coalesced fetch vs per-key gets.
        backend = factory()
        backend.put_many("edb/edb", entries)
        t0 = time.perf_counter()
        backend.get_many("edb/edb", probe_keys)
        get_bulk_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for key in probe_keys:
            backend.get("edb/edb", key)
        get_loop_s = time.perf_counter() - t0
        backend.close()
        results.append(
            jsonout.result(
                f"{name}/fetch",
                "backend_io",
                {"keys": len(probe_keys)},
                get_many_seconds=get_bulk_s,
                get_loop_seconds=get_loop_s,
                speedup_x=get_loop_s / get_bulk_s if get_bulk_s else 0.0,
            )
        )
        if name in seed_lanes:
            seed_s = _build_through_db(seed_lanes[name](), entries, tuples)
            results.append(
                jsonout.result(
                    f"{name}/build-per-key-seed",
                    "backend_io",
                    {"records": records, "path": "per-key (seed)"},
                    build_seconds=seed_s,
                    records_per_s=records / seed_s if seed_s else 0.0,
                )
            )
            speedup = seed_s / bulk_s if bulk_s else 0.0
            results.append(
                jsonout.result(
                    f"{name}/build",
                    "backend_io",
                    {"records": records},
                    speedup_x=speedup,
                )
            )
    return speedup


def bench_scheme_backend(records: int, queries: int, tmpdir: str, results: list) -> None:
    """End-to-end build/query per scheme × backend."""
    rng = random.Random(7)
    data = [(rid, rng.randrange(DOMAIN)) for rid in range(records)]
    ranges = []
    for _ in range(queries):
        lo = rng.randrange(DOMAIN - 1)
        ranges.append((lo, min(DOMAIN - 1, lo + rng.randrange(1, DOMAIN // 16))))

    backends = {
        "memory": lambda: None,  # scheme default (pure in-memory)
        "sqlite": lambda: SqliteBackend(
            os.path.join(tmpdir, f"scheme-{time.monotonic_ns()}.sqlite")
        ),
        "sharded": lambda: ShardedBackend(shard_count=4),
    }
    for scheme_name in SCHEMES:
        for backend_name, factory in backends.items():
            kwargs = {"rng": random.Random(11)}
            if scheme_name.startswith("constant"):
                kwargs["intersection_policy"] = "allow"
            backend = factory()
            if backend is not None:
                kwargs["backend"] = backend
            scheme = make_scheme(scheme_name, DOMAIN, **kwargs)
            t0 = time.perf_counter()
            scheme.build_index(data)
            build_s = time.perf_counter() - t0
            latencies = []
            for lo, hi in ranges:
                t0 = time.perf_counter()
                scheme.query(lo, hi)
                latencies.append(time.perf_counter() - t0)
            index_bytes = scheme.index_size_bytes()
            if backend is not None:
                backend.close()
            results.append(
                jsonout.result(
                    f"{scheme_name}/{backend_name}",
                    "scheme_backend",
                    {"records": records, "queries": queries, "domain": DOMAIN},
                    build_seconds=build_s,
                    build_records_per_s=records / build_s if build_s else 0.0,
                    query_mean_seconds=sum(latencies) / len(latencies),
                    query_max_seconds=max(latencies),
                    index_bytes=index_bytes,
                )
            )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000,
                        help="records in the backend_io section (default 10000)")
    parser.add_argument("--scheme-records", type=int, default=1_000,
                        help="records per scheme build (default 1000)")
    parser.add_argument("--queries", type=int, default=16,
                        help="query ranges per scheme × backend (default 16)")
    parser.add_argument("--json", default="BENCH_PR2.json", metavar="PATH",
                        help="output file (default BENCH_PR2.json)")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json "
                        "baseline")
    parser.add_argument("--skip-schemes", action="store_true",
                        help="backend_io section only")
    args = parser.parse_args(argv)
    jsonout.check_baseline_path(args.json, args.force)

    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-bulk-io-") as tmpdir:
        speedup = bench_backend_io(args.records, tmpdir, results)
        if not args.skip_schemes:
            bench_scheme_backend(args.scheme_records, args.queries, tmpdir, results)

    jsonout.emit_json(
        args.json,
        "bulk_io",
        results,
        force=args.force,
        meta={
            "records": args.records,
            "scheme_records": args.scheme_records,
            "queries": args.queries,
            "sqlite": sqlite3.sqlite_version,
        },
    )
    jsonout.print_table(results)
    print(f"\nsqlite bulk-build speedup over per-key seed path: {speedup:.1f}x")
    print(f"wrote {args.json}")
    if speedup and speedup < 5.0:
        print("FAIL: speedup below the 5x acceptance floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
