"""Benchmark suite regenerating the paper's evaluation artifacts."""
