"""Figure 7 — server search time vs range size, all schemes + SSE floor.

Expected shape (paper): Logarithmic-BRC/URC coincide with the bare SSE
retrieval floor; Constant adds the O(R) GGM expansion (more pronounced
on large domains); the SRC family pays for false positives, with SRC-i
beating SRC under skew and losing to it on uniform data; PB sits above
the Logarithmic schemes.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import BENCH_DOMAIN, USPS_DOMAIN, built
from repro.baselines.pb import PbScheme
from repro.baselines.sse_floor import SseFloor
from repro.workloads.queries import percent_of_domain_ranges

#: Small domain keeps Constant's O(R) GGM expansion benchable.
FIG7_DOMAIN = 1 << 12
PERCENT = 25
N_QUERIES = 4

SCHEMES = (
    "constant-brc",
    "logarithmic-brc",
    "logarithmic-src",
    "logarithmic-src-i",
)


def _run_queries(scheme, queries):
    return [scheme.query(lo, hi) for lo, hi in queries]


@pytest.mark.parametrize("name", SCHEMES)
def test_fig7_gowalla(benchmark, name):
    rng = random.Random(9)
    records = [(i, rng.randrange(FIG7_DOMAIN)) for i in range(600)]
    scheme = built(name, records, domain=FIG7_DOMAIN)
    queries = percent_of_domain_ranges(FIG7_DOMAIN, PERCENT, N_QUERIES, seed=5)
    outcomes = benchmark.pedantic(
        _run_queries, args=(scheme, queries), rounds=2, iterations=1
    )
    benchmark.extra_info["avg_result_size"] = sum(
        o.result_size for o in outcomes
    ) / len(outcomes)


@pytest.mark.parametrize("name", ("logarithmic-src", "logarithmic-src-i"))
def test_fig7_usps_skew(benchmark, name, usps_records):
    scheme = built(name, usps_records, domain=USPS_DOMAIN)
    queries = percent_of_domain_ranges(USPS_DOMAIN, PERCENT, N_QUERIES, seed=5)
    benchmark.pedantic(_run_queries, args=(scheme, queries), rounds=2, iterations=1)


def test_fig7_pb(benchmark):
    rng = random.Random(9)
    records = [(i, rng.randrange(FIG7_DOMAIN)) for i in range(600)]
    scheme = PbScheme(FIG7_DOMAIN, rng=random.Random(7))
    scheme.build_index(records)
    queries = percent_of_domain_ranges(FIG7_DOMAIN, PERCENT, N_QUERIES, seed=5)
    benchmark.pedantic(_run_queries, args=(scheme, queries), rounds=2, iterations=1)


def test_fig7_sse_floor(benchmark, gowalla_oracle):
    floor = SseFloor(len(gowalla_oracle), rng=random.Random(7))
    queries = percent_of_domain_ranges(BENCH_DOMAIN, PERCENT, N_QUERIES, seed=5)
    result_sizes = [gowalla_oracle.count(lo, hi) for lo, hi in queries]

    def retrieve_all():
        for r in result_sizes:
            floor.retrieve(r)

    benchmark.pedantic(retrieve_all, rounds=2, iterations=1)


def test_fig7_shape_log_matches_floor():
    """Logarithmic-BRC search ≈ SSE floor: the extra log R is negligible."""
    rng = random.Random(9)
    records = [(i, rng.randrange(FIG7_DOMAIN)) for i in range(600)]
    scheme = built("logarithmic-brc", records, domain=FIG7_DOMAIN)
    floor = SseFloor(len(records), rng=random.Random(7))
    queries = percent_of_domain_ranges(FIG7_DOMAIN, 50, 6, seed=5)
    from repro.harness.metrics import timed

    scheme_s = sum(scheme.query(lo, hi).server_seconds for lo, hi in queries)
    floor_s = 0.0
    from repro.baselines.plaintext import PlaintextRangeIndex

    oracle = PlaintextRangeIndex(records)
    for lo, hi in queries:
        _, seconds = timed(floor.retrieve, oracle.count(lo, hi))
        floor_s += seconds
    assert scheme_s < 8 * floor_s + 0.01
