"""Figure 8 — query size (a) and query generation time (b) at the owner.

Dataset-independent: only the range covers and token formats matter.
Expected shape: SRC = one 32-byte token, SRC-i = two; BRC/URC grow
logarithmically in the range size with URC's saw-like worst case above
BRC's smoothed average.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_scheme
from repro.workloads.queries import fixed_size_ranges

DOMAIN = 1 << 20  # the paper's exact Figure 8 domain
RANGE_SIZE = 100
N_QUERIES = 200

SCHEMES = (
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)


def _built(name):
    scheme = fresh_scheme(name, domain=DOMAIN)
    scheme.build_index([(0, 0)])
    return scheme


@pytest.mark.parametrize("name", SCHEMES)
def test_fig8_trapdoor_generation(benchmark, name):
    scheme = _built(name)
    queries = fixed_size_ranges(DOMAIN, RANGE_SIZE, N_QUERIES, seed=5)

    def generate_all():
        total = 0
        for lo, hi in queries:
            total += scheme.token_size_bytes(scheme.trapdoor(lo, hi))
        return total

    total_bytes = benchmark(generate_all)
    benchmark.extra_info["avg_token_bytes"] = total_bytes / N_QUERIES


def test_fig8_shape_constant_vs_logarithmic_tokens():
    queries = fixed_size_ranges(DOMAIN, RANGE_SIZE, 50, seed=5)
    sizes = {}
    for name in SCHEMES:
        scheme = _built(name)
        sizes[name] = sum(
            scheme.token_size_bytes(scheme.trapdoor(lo, hi)) for lo, hi in queries
        ) / len(queries)
    assert sizes["logarithmic-src"] == 32.0
    assert sizes["logarithmic-src-i"] == 32.0  # + 32 for round 2 at query time
    assert sizes["logarithmic-brc"] > 3 * 32  # O(log R) tokens
    assert sizes["constant-urc"] >= sizes["constant-brc"]
    assert sizes["logarithmic-urc"] >= sizes["logarithmic-brc"]
