"""Figure 6 — false-positive rate vs range size, SRC vs SRC-i.

Timing here is secondary; the benchmark's ``extra_info["fp_rate"]``
column is the figure.  Expected shape: FP rate decreases with range
size; SRC-i ≤ SRC with a wider margin on the skewed (USPS) dataset.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DOMAIN, USPS_DOMAIN, built
from repro.workloads.queries import percent_of_domain_ranges

PERCENTS = (10, 50, 90)


def _fp_rate(scheme, domain, percent, queries=6, seed=5):
    rates = [
        scheme.query(lo, hi).false_positive_rate
        for lo, hi in percent_of_domain_ranges(domain, percent, queries, seed=seed)
    ]
    return sum(rates) / len(rates)


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.parametrize("name", ("logarithmic-src", "logarithmic-src-i"))
def test_fig6_gowalla(benchmark, name, percent, gowalla_records):
    scheme = built(name, gowalla_records)
    rate = benchmark.pedantic(
        _fp_rate, args=(scheme, BENCH_DOMAIN, percent), rounds=1, iterations=1
    )
    benchmark.extra_info["fp_rate"] = round(rate, 4)


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.parametrize("name", ("logarithmic-src", "logarithmic-src-i"))
def test_fig6_usps(benchmark, name, percent, usps_records):
    scheme = built(name, usps_records, domain=USPS_DOMAIN)
    rate = benchmark.pedantic(
        _fp_rate, args=(scheme, USPS_DOMAIN, percent), rounds=1, iterations=1
    )
    benchmark.extra_info["fp_rate"] = round(rate, 4)


def test_fig6_shape_rate_decreases(usps_records):
    """FP rate must fall as the range grows (more marked tuples inside)."""
    scheme = built("logarithmic-src", usps_records, domain=USPS_DOMAIN)
    low = _fp_rate(scheme, USPS_DOMAIN, 10, queries=10)
    high = _fp_rate(scheme, USPS_DOMAIN, 100, queries=10)
    assert high <= low + 0.05


def test_fig6_shape_bounded(gowalla_records, usps_records):
    """Paper: SRC-i false positives stay below ~40% of the answer."""
    for records, domain in ((gowalla_records, BENCH_DOMAIN), (usps_records, USPS_DOMAIN)):
        scheme = built("logarithmic-src-i", records, domain=domain)
        for percent in (25, 75):
            assert _fp_rate(scheme, domain, percent, queries=8) <= 0.55
