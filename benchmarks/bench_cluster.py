"""Cluster scatter-gather benchmark (``BENCH_PR6.json``).

Question: what does sharding the records over N servers buy, when each
server box has one CPU core?

This CI box *is* one core, so the gated lanes run the net layer's
**simulated single-core service-time model**
(``sim_core_floor_s``/``sim_core_per_kb_s`` on
:class:`~repro.net.RsseNetServer`): every response holds its server's
one "core" for ``floor + per_kb × response_KiB`` seconds.  N shard
servers own N independent cores, exactly like N real one-core boxes —
the same trick ``response_delay_s`` plays for RTT in ``bench_net.py``.
The workload is wide ranges (byte-heavy responses), where sharding
genuinely divides the work: each shard serves only its ~1/N of every
answer.

Both lanes run the *same* :class:`~repro.cluster.ClusterRouter` code
path — the baseline is a 1-shard cluster, so the measured difference is
shard fan-out, not router overhead.

*Gate:* N-shard aggregate QPS ≥ ``--scaling-floor`` (default 3×) the
1-shard QPS on the sim-core lanes.

A raw lane (sim model off, both shard counts) is recorded ungated for
transparency; on a single real core it sits near 1× by construction.

Run it::

    PYTHONPATH=src python benchmarks/bench_cluster.py --json BENCH_PR6.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke \
        --json bench-cluster-smoke.json
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402


def _query_mix(rng: random.Random, domain: int, count: int):
    """Wide ranges: responses big enough that bytes dominate the sim
    cost (the regime where sharding divides real work)."""
    ranges = []
    for _ in range(count):
        width = rng.randrange(domain // 8, domain // 3)
        lo = rng.randrange(domain - width)
        ranges.append((lo, lo + width))
    return ranges


def run_lane(
    args, shards: int, *, sim: bool, label: str
) -> "dict[str, float]":
    """One lane: an N-shard cluster under closed-loop client threads."""
    from repro.cluster import ClusterRouter, make_shard_map
    from repro.core.registry import make_scheme
    from repro.net import serve_in_thread

    rng = random.Random(args.seed)
    records = [(i, rng.randrange(args.domain)) for i in range(args.records)]
    ranges = _query_mix(random.Random(args.seed + 2), args.domain, 64)
    sim_kwargs = (
        {
            "sim_core_floor_s": args.sim_floor_ms / 1000.0,
            "sim_core_per_kb_s": args.sim_per_kb_ms / 1000.0,
        }
        if sim
        else {}
    )
    servers = [
        serve_in_thread(
            shard=f"{i}/{shards}", max_inflight=512, **sim_kwargs
        )
        for i in range(shards)
    ]
    router = ClusterRouter(
        [
            make_scheme(
                args.scheme, args.domain, rng=random.Random(args.seed + 1 + i)
            )
            for i in range(shards)
        ],
        make_shard_map([(s.host, s.port) for s in servers]),
        pool_size=1,
        scatter_workers=max(8, shards * args.threads),
    )
    try:
        router.outsource(records)
        router.query(*ranges[0])  # warm every lane
        counts = [0] * args.threads
        start_barrier = threading.Barrier(args.threads + 1)
        deadline_holder = [0.0]

        def worker(slot: int) -> None:
            thread_rng = random.Random(args.seed + 50 + slot)
            start_barrier.wait()
            done = 0
            while time.perf_counter() < deadline_holder[0]:
                lo, hi = ranges[thread_rng.randrange(len(ranges))]
                router.query(lo, hi)
                done += 1
            counts[slot] = done

        threads = [
            threading.Thread(target=worker, args=(slot,), daemon=True)
            for slot in range(args.threads)
        ]
        for t in threads:
            t.start()
        start_barrier.wait()
        deadline_holder[0] = time.perf_counter() + args.duration
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=args.duration + 120)
        elapsed = time.perf_counter() - t0
        qps = sum(counts) / elapsed
        print(f"  {label}: {sum(counts)} queries in {elapsed:.2f}s = "
              f"{qps:7.1f} qps", flush=True)
        return {"qps": qps, "queries": float(sum(counts))}
    finally:
        router.close()
        for server in servers:
            server.stop()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--records", type=int, default=1_600)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--scheme", default="logarithmic-brc")
    parser.add_argument("--cluster-shards", type=int, default=4,
                        help="shard count of the scaled lane")
    parser.add_argument("--threads", type=int, default=6,
                        help="closed-loop client threads per lane")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="measurement window seconds per lane")
    parser.add_argument("--sim-floor-ms", type=float, default=0.1,
                        help="simulated per-response core floor")
    parser.add_argument("--sim-per-kb-ms", type=float, default=8.0,
                        help="simulated core ms per response KiB")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--scaling-floor", type=float, default=3.0,
                        help="gate: N-shard qps >= floor * 1-shard qps "
                        "(sim-core lanes)")
    parser.add_argument("--skip-raw-lane", action="store_true",
                        help="skip the ungated real-core transparency lanes")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: small dataset, short windows")
    parser.add_argument("--json", default="BENCH_PR6.json", metavar="PATH")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.records = min(args.records, 600)
        args.duration = min(args.duration, 2.0)
        args.threads = min(args.threads, 4)
    jsonout.check_baseline_path(args.json, args.force)

    results = []
    n = args.cluster_shards
    print(
        f"sim-core lanes (floor {args.sim_floor_ms:g} ms + "
        f"{args.sim_per_kb_ms:g} ms/KiB, {args.threads} client threads)"
    )
    sim_single = run_lane(args, 1, sim=True, label="sim-core  1 shard ")
    sim_cluster = run_lane(args, n, sim=True, label=f"sim-core {n:2d} shards")
    scaling = sim_cluster["qps"] / sim_single["qps"]
    print(f"  sim-core scaling: {scaling:.2f}x with {n} shards")
    results.append(
        jsonout.result(
            "cluster/sim-core/shards-1", "cluster",
            {"shards": 1, "threads": args.threads,
             "sim_floor_ms": args.sim_floor_ms,
             "sim_per_kb_ms": args.sim_per_kb_ms},
            **sim_single,
        )
    )
    results.append(
        jsonout.result(
            f"cluster/sim-core/shards-{n}", "cluster",
            {"shards": n, "threads": args.threads,
             "sim_floor_ms": args.sim_floor_ms,
             "sim_per_kb_ms": args.sim_per_kb_ms},
            **sim_cluster,
            scale_vs_single=scaling,
        )
    )

    if not args.skip_raw_lane:
        print("raw lanes (no sim model — honest 1-core ceiling, ungated)")
        raw_single = run_lane(args, 1, sim=False, label="raw       1 shard ")
        raw_cluster = run_lane(args, n, sim=False, label=f"raw      {n:2d} shards")
        results.append(
            jsonout.result(
                "cluster/raw/shards-1", "cluster",
                {"shards": 1, "threads": args.threads}, **raw_single,
            )
        )
        results.append(
            jsonout.result(
                f"cluster/raw/shards-{n}", "cluster",
                {"shards": n, "threads": args.threads},
                **raw_cluster,
                scale_vs_single=raw_cluster["qps"] / raw_single["qps"],
            )
        )

    results.append(
        jsonout.result(
            "acceptance", "cluster",
            {"scaling_floor": args.scaling_floor, "shards": n},
            cluster_sim_scaling_x=scaling,
        )
    )

    jsonout.emit_json(
        args.json,
        "cluster",
        results,
        meta={
            "records": args.records,
            "domain": args.domain,
            "scheme": args.scheme,
            "shards": n,
            "threads": args.threads,
            "duration_s": args.duration,
            "sim_floor_ms": args.sim_floor_ms,
            "sim_per_kb_ms": args.sim_per_kb_ms,
            "cpus": os.cpu_count(),
            "smoke": args.smoke,
        },
        force=args.force,
    )
    print(f"wrote {args.json}")

    if scaling < args.scaling_floor:
        print(
            f"GATE FAIL: {n}-shard sim-core scaling {scaling:.2f}x "
            f"(floor {args.scaling_floor}x)"
        )
        return 1
    print(
        f"gate passes: {n}-shard sim-core scaling {scaling:.2f}x "
        f">= {args.scaling_floor}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
