"""Query-execution-engine benchmark (``BENCH_PR3.json``).

Measures what the exec layer bought over the PR-2 baseline, on the same
workload shape as ``bench_bulk_io``'s ``scheme_backend`` section (domain
2^16, seeded data/ranges):

``query_exec``
    Per scheme × backend × engine lane, mean/max query latency:

    - ``legacy``   — the retired pre-engine loop (one Π_bas walk per
      token/leaf, one storage lane each), reconstructed here so the
      before/after stays measurable in-repo;
    - ``serial``   — the engine at ``workers=1`` with no cache (still
      coalesces probes into shared ``get_many`` rounds);
    - ``parallel`` — default worker pool, no cache;
    - ``cached``   — default pool plus the GGM expansion cache, with a
      cold and a warm (repeat-workload) pass.

``wire``
    Transport frames for ``query_many``: total frames and search frames
    per batch — one ``MultiSearchRequest`` per batch (two for the
    interactive SRC-i), versus one ``SearchRequest`` per query before.

Acceptance gate: constant-brc's SQLite *cold* query mean under the
default engine must beat the PR-2 134 ms baseline (read from
``BENCH_PR2.json`` when present) by ≥ 5×.  The gated number is the
best of ``--gate-passes`` independent cold passes (fresh scheme, fresh
cache each) — the ``timeit`` min rule: the minimum is the run least
perturbed by other load on the host, while every pass is genuinely
cold so cache warmth never flatters the gate.

Run it::

    PYTHONPATH=src python benchmarks/bench_query_exec.py --json BENCH_PR3.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_query_exec.py \
        --records 200 --queries 4 --json bench-exec.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402
from repro.core.registry import make_scheme  # noqa: E402
from repro.crypto.dprf import GgmDprf  # noqa: E402
from repro.exec import ExpansionCache, QueryExecutor  # noqa: E402
from repro.protocol import messages as msg  # noqa: E402
from repro.protocol.client import RemoteRangeClient  # noqa: E402
from repro.protocol.server import RsseServer  # noqa: E402
from repro.sse.base import token_from_secret  # noqa: E402
from repro.sse.pibas import search as pibas_search  # noqa: E402
from repro.storage.backend import SqliteBackend  # noqa: E402

SCHEMES = ("constant-brc", "logarithmic-brc")
DOMAIN = 1 << 16

#: PR-2 measured constant-brc/SQLite mean; overridden by BENCH_PR2.json.
FALLBACK_BASELINE_S = 0.134

#: The acceptance floor: default-engine mean must beat baseline by this.
SPEEDUP_FLOOR = 5.0


def _workload(records: int, queries: int):
    """Same seeded generation as bench_bulk_io's scheme section."""
    rng = random.Random(7)
    data = [(rid, rng.randrange(DOMAIN)) for rid in range(records)]
    ranges = []
    for _ in range(queries):
        lo = rng.randrange(DOMAIN - 1)
        ranges.append((lo, min(DOMAIN - 1, lo + rng.randrange(1, DOMAIN // 16))))
    return data, ranges


def _pr2_baseline(path: str) -> float:
    """constant-brc/sqlite query mean from the PR-2 baseline file."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
        for entry in doc.get("results", ()):
            if entry.get("name") == "constant-brc/sqlite":
                return float(entry["metrics"]["query_mean_seconds"])
    except (OSError, KeyError, ValueError):
        pass
    return FALLBACK_BASELINE_S


def _build_scheme(name: str, data, tmpdir: str, backend_name: str, executor):
    kwargs = {"rng": random.Random(11), "executor": executor}
    if name.startswith("constant"):
        kwargs["intersection_policy"] = "allow"
    backend = None
    if backend_name == "sqlite":
        backend = SqliteBackend(
            os.path.join(tmpdir, f"exec-{time.monotonic_ns()}.sqlite")
        )
        kwargs["backend"] = backend
    scheme = make_scheme(name, DOMAIN, **kwargs)
    scheme.build_index(data)
    return scheme, backend


def _legacy_query(scheme, lo: int, hi: int):
    """The retired pre-engine search loop, reconstructed for the
    before/after lane: one full walk per token (per GGM leaf for the
    Constant schemes), no probe coalescing, no cache."""
    token = scheme.trapdoor(lo, hi)
    index = scheme._index
    results = []
    if scheme.name.startswith("constant"):
        for dtoken in token:
            for leaf in GgmDprf.iter_leaves(dtoken):
                results.extend(pibas_search(index, token_from_secret(leaf)))
    else:
        for kw_token in token:
            results.extend(pibas_search(index, kw_token))
    return results


def bench_engine_lanes(records: int, queries: int, tmpdir: str, results: list) -> dict:
    """query_exec section; returns default-engine means keyed by
    (scheme, backend) for the acceptance gate."""
    data, ranges = _workload(records, queries)
    lanes = {
        "legacy": None,
        "serial": lambda: QueryExecutor(workers=1, cache=False),
        "parallel": lambda: QueryExecutor(cache=False),
        "cached": lambda: QueryExecutor(cache=ExpansionCache()),
    }
    default_means: dict = {}
    for scheme_name in SCHEMES:
        for backend_name in ("memory", "sqlite"):
            for lane, factory in lanes.items():
                executor = factory() if factory is not None else None
                scheme, backend = _build_scheme(
                    scheme_name, data, tmpdir, backend_name, executor
                )
                passes = 2 if lane == "cached" else 1
                metrics = {}
                totals = {"probes_issued": 0, "probes_coalesced": 0, "cache_hits": 0}
                for pass_no in range(passes):
                    latencies = []
                    for lo, hi in ranges:
                        t0 = time.perf_counter()
                        if lane == "legacy":
                            _legacy_query(scheme, lo, hi)
                        else:
                            outcome = scheme.query(lo, hi)
                            totals["probes_issued"] += outcome.probes_issued
                            totals["probes_coalesced"] += outcome.probes_coalesced
                            totals["cache_hits"] += outcome.cache_hits
                        latencies.append(time.perf_counter() - t0)
                    tag = "warm_" if pass_no else ""
                    metrics[f"{tag}query_mean_seconds"] = sum(latencies) / len(
                        latencies
                    )
                    metrics[f"{tag}query_max_seconds"] = max(latencies)
                if lane != "legacy":
                    # Lane-wide totals across every measured query (both
                    # passes for the cached lane).
                    metrics.update(totals)
                if lane == "cached":
                    default_means[(scheme_name, backend_name)] = metrics[
                        "query_mean_seconds"
                    ]
                if backend is not None:
                    backend.close()
                if executor is not None:
                    executor.close()
                results.append(
                    jsonout.result(
                        f"{scheme_name}/{backend_name}/{lane}",
                        "query_exec",
                        {
                            "records": records,
                            "queries": queries,
                            "domain": DOMAIN,
                            "lane": lane,
                        },
                        **metrics,
                    )
                )
    return default_means


def measure_gate(
    records: int, queries: int, tmpdir: str, passes: int, results: list
) -> float:
    """Best-of-N cold constant-brc/SQLite mean (the acceptance number).

    Each pass rebuilds the scheme with a fresh engine and cache, so
    every measured query pays full GGM expansion and derivation; taking
    the minimum mean across passes only filters out host-load noise.
    """
    data, ranges = _workload(records, queries)
    pass_means: "list[float]" = []
    for _ in range(max(1, passes)):
        executor = QueryExecutor(cache=ExpansionCache())
        scheme, backend = _build_scheme(
            "constant-brc", data, tmpdir, "sqlite", executor
        )
        latencies = []
        for lo, hi in ranges:
            t0 = time.perf_counter()
            scheme.query(lo, hi)
            latencies.append(time.perf_counter() - t0)
        pass_means.append(sum(latencies) / len(latencies))
        if backend is not None:
            backend.close()
        executor.close()
    best = min(pass_means)
    results.append(
        jsonout.result(
            "constant-brc/sqlite/gate-passes",
            "query_exec",
            {"records": records, "queries": queries, "passes": len(pass_means)},
            **{
                f"pass{i}_query_mean_seconds": mean
                for i, mean in enumerate(pass_means)
            },
        )
    )
    return best


class _CountingTransport:
    """In-process transport that tallies frames by message type."""

    def __init__(self, server: RsseServer) -> None:
        self._server = server
        self.frames = 0
        self.search_frames = 0

    def __call__(self, frame: bytes):
        self.frames += 1
        message = msg.parse_message(frame)
        if isinstance(message, (msg.SearchRequest, msg.MultiSearchRequest)):
            self.search_frames += 1
        return self._server.handle(frame)


def bench_wire(records: int, queries: int, results: list) -> None:
    """wire section: frames per query_many batch."""
    data, ranges = _workload(records, queries)
    for scheme_name in ("constant-brc", "logarithmic-brc", "logarithmic-src-i"):
        kwargs = {"rng": random.Random(13)}
        if scheme_name.startswith("constant"):
            kwargs["intersection_policy"] = "allow"
        scheme = make_scheme(scheme_name, DOMAIN, **kwargs)
        transport = _CountingTransport(RsseServer())
        client = RemoteRangeClient(scheme, transport, rng=random.Random(17))
        client.outsource(data)
        transport.frames = transport.search_frames = 0
        client.query_many(ranges)
        results.append(
            jsonout.result(
                f"{scheme_name}/query_many",
                "wire",
                {"records": records, "batch": len(ranges)},
                total_frames=transport.frames,
                search_frames=transport.search_frames,
                search_frames_per_query=transport.search_frames / len(ranges),
            )
        )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=1_000,
                        help="records per scheme build (default 1000)")
    parser.add_argument("--queries", type=int, default=16,
                        help="query ranges per lane (default 16)")
    parser.add_argument("--json", default="BENCH_PR3.json", metavar="PATH",
                        help="output file (default BENCH_PR3.json)")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json "
                        "baseline")
    parser.add_argument("--baseline", default="BENCH_PR2.json", metavar="PATH",
                        help="PR-2 baseline file for the acceptance gate")
    parser.add_argument("--gate-passes", type=int, default=3,
                        help="independent cold passes; the gate takes "
                        "the best mean (default 3)")
    args = parser.parse_args(argv)
    jsonout.check_baseline_path(args.json, args.force)

    baseline_s = _pr2_baseline(args.baseline)
    results: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-query-exec-") as tmpdir:
        bench_engine_lanes(args.records, args.queries, tmpdir, results)
        bench_wire(args.records, args.queries, results)
        gated = measure_gate(
            args.records, args.queries, tmpdir, args.gate_passes, results
        )

    speedup = baseline_s / gated if gated else 0.0
    results.append(
        jsonout.result(
            "constant-brc/sqlite/acceptance",
            "query_exec",
            {
                "baseline_seconds": baseline_s,
                "floor_x": SPEEDUP_FLOOR,
                "policy": f"best cold mean of {args.gate_passes} passes",
            },
            query_mean_seconds=gated,
            speedup_x=speedup,
        )
    )
    jsonout.emit_json(
        args.json,
        "query_exec",
        results,
        force=args.force,
        meta={
            "records": args.records,
            "queries": args.queries,
            "baseline_seconds": baseline_s,
        },
    )
    jsonout.print_table(results)
    print(
        f"\nconstant-brc sqlite mean {gated * 1e3:.2f} ms vs PR-2 baseline "
        f"{baseline_s * 1e3:.1f} ms: {speedup:.1f}x"
    )
    print(f"wrote {args.json}")
    if speedup < SPEEDUP_FLOOR:
        print(
            f"FAIL: speedup below the {SPEEDUP_FLOOR:.0f}x acceptance floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
