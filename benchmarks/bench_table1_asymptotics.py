"""Table 1 — empirical validation of the asymptotic cost claims.

Benchmarks the primitive operations whose costs Table 1 tabulates
(trapdoor generation per cover technique, GGM expansion, SSE retrieval)
and asserts the storage growth factors.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import fresh_scheme
from repro.covers.brc import best_range_cover
from repro.covers.tdag import Tdag
from repro.covers.urc import uniform_range_cover
from repro.crypto.dprf import DelegationToken, GgmDprf
from repro.harness.experiments import table1

DOMAIN = 1 << 20


def test_table1_storage_growth_is_linear(benchmark):
    rows = benchmark.pedantic(
        table1,
        kwargs=dict(n_small=200, n_large=800, domain=1 << 14, seed=3),
        rounds=1,
        iterations=1,
    )
    for name, claim, factor, verdict in rows:
        assert verdict == "linear-in-n ok", (name, factor)


@pytest.mark.parametrize(
    "cover_fn", [best_range_cover, uniform_range_cover], ids=["brc", "urc"]
)
def test_table1_cover_computation(benchmark, cover_fn):
    rng = random.Random(4)
    queries = []
    for _ in range(200):
        lo = rng.randrange(DOMAIN - 10_000)
        queries.append((lo, lo + rng.randrange(1, 10_000)))

    def cover_all():
        for lo, hi in queries:
            cover_fn(lo, hi)

    benchmark(cover_all)


def test_table1_src_cover_computation(benchmark):
    tdag = Tdag(DOMAIN)
    rng = random.Random(4)
    queries = []
    for _ in range(200):
        lo = rng.randrange(DOMAIN - 10_000)
        queries.append((lo, lo + rng.randrange(1, 10_000)))

    def cover_all():
        for lo, hi in queries:
            tdag.src_cover(lo, hi)

    benchmark(cover_all)


def test_table1_ggm_expansion_linear_in_R(benchmark):
    """Constant's O(R) search term: expanding one level-10 token = 1024
    leaf PRF values."""
    key = GgmDprf.generate_key(random.Random(5))
    token = DelegationToken(key, 10)
    leaves = benchmark(GgmDprf.expand_token, token)
    assert len(leaves) == 1024


def test_table1_search_linear_in_r(gowalla_records):
    """O(r) retrieval: doubling the result size roughly doubles work,
    measured via the result-proportional server time of Logarithmic-BRC."""
    scheme = fresh_scheme("logarithmic-brc")
    scheme.build_index(gowalla_records)
    import statistics

    def avg_time(lo, hi, repeats=5):
        return statistics.median(
            scheme.query(lo, hi).server_seconds for _ in range(repeats)
        )

    domain = 1 << 16
    small = avg_time(0, domain // 4 - 1)
    large = avg_time(0, domain - 1)
    assert large > small  # 4x the results must cost measurably more
