"""Crypto-kernel benchmark (``BENCH_PR7.json``).

Three gated questions, one transparency lane:

**1. What does the kernel seam cost when serial?** (overhead)
    The ``SerialKernel`` batch primitives against the retired inline
    loops they replaced — per-leaf ``subkeys_from_secret`` over
    ``GgmDprf.iter_leaves``, and the per-counter ``posting_label``
    loop — on engine-shaped batches, best-of-N passes.

    *Gate:* kernel/direct ratio ≤ ``--overhead-factor`` (default
    1.05×) on both primitives.  Zero workers must cost nothing.

**2. Are the lanes byte-identical?** (identity)
    Every registry scheme runs the same recorded query frames against
    a serial-kernel server and a pooled-kernel server (crossover 1, so
    every batch rides the worker lane) over the same stored state.

    *Gate:* every response frame matches byte for byte.

**3. Does the ceiling move with worker count?** (scaling)
    The PR-3/PR-5 finding was a GIL-bound crypto floor: more threads,
    same QPS.  Here N client threads replay wide-range constant-brc
    queries against in-process servers whose kernels run the *capacity
    simulation* (``sim_hmac_s``): each HMAC-equivalent costs a fixed
    service time, serial batches occupy the one simulated GIL,
    offloaded batches occupy one of ``workers`` lanes — computation
    itself stays real and byte-identical.  This is the same modeling
    device the net/cluster benches use (``response_delay_s``,
    ``sim_core_*``) and exists for the same reason: CI runs on a
    single CPU, where a real pool cannot demonstrate parallelism.

    *Gate:* top-worker QPS ≥ ``--scaling-floor`` (default 2×) the
    1-worker QPS.

**Transparency (ungated).**  The real ``ProcessPoolExecutor`` lane on
this machine: pooled vs serial wall time on a large subkey batch, and
the fitted offload crossover.  On a single-CPU box the honest number
is ≤ 1× — that is the hardware, not the kernel; the differential tests
plus the simulated capacity lanes carry the correctness and scaling
stories respectively.

Run it::

    PYTHONPATH=src python benchmarks/bench_crypto_kernel.py \
        --json BENCH_PR7.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_crypto_kernel.py --smoke \
        --json bench-crypto-smoke.json
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402

IDENTITY_SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)


def _best_of(fn, passes: int) -> float:
    best = float("inf")
    for _ in range(passes):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_pair(fn_a, fn_b, passes: int) -> "tuple[float, float, float]":
    """Two lanes timed in *interleaved* passes; returns
    ``(best_a, best_b, median per-pass b/a ratio)``.

    On a busy single-CPU box an interference burst lasts milliseconds —
    the same order as one lane pass — so back-to-back lane timing (and
    even min-of-N per lane) lets one burst skew the ratio by ~10%.
    Pairing each pass and taking the *median* of per-pass ratios makes
    the comparison robust: a burst lands inside one pass pair and that
    pair's ratio becomes an outlier the median ignores."""
    best_a = best_b = float("inf")
    ratios = []
    for _ in range(passes):
        t0 = time.perf_counter()
        fn_a()
        elapsed_a = time.perf_counter() - t0
        t0 = time.perf_counter()
        fn_b()
        elapsed_b = time.perf_counter() - t0
        best_a = min(best_a, elapsed_a)
        best_b = min(best_b, elapsed_b)
        ratios.append(elapsed_b / elapsed_a)
    ratios.sort()
    return best_a, best_b, ratios[len(ratios) // 2]


# ---------------------------------------------------------------------------
# Experiment 1: serial-kernel overhead vs the retired inline loops
# ---------------------------------------------------------------------------


def run_overhead(args) -> "dict[str, float]":
    from repro.crypto.dprf import DelegationToken, GgmDprf
    from repro.crypto.kernel import SerialKernel
    from repro.sse.base import subkeys_from_secret
    from repro.sse.pibas import posting_label

    rng = random.Random(args.seed)
    kernel = SerialKernel()

    # Engine-shaped DPRF batch: a handful of mid-size subtrees, the
    # shape one constant-scheme query wave misses into the kernel.
    descriptors = [
        (rng.randbytes(32), args.subtree_level) for _ in range(args.subtrees)
    ]
    tokens = [DelegationToken(seed, level) for seed, level in descriptors]

    def direct_subkeys():
        return [
            tuple(
                subkeys_from_secret(leaf)
                for leaf in GgmDprf.iter_leaves(token)
            )
            for token in tokens
        ]

    direct_subkeys_s, kernel_subkeys_s, subkeys_ratio = _best_pair(
        direct_subkeys,
        lambda: kernel.derive_leaf_subkeys(descriptors),
        args.passes,
    )
    assert kernel.derive_leaf_subkeys(descriptors) == direct_subkeys()

    # Engine-shaped label batch: one coalesced probe round's worth.
    items = [(rng.randbytes(16), i) for i in range(args.labels)]
    direct_labels_s, kernel_labels_s, labels_ratio = _best_pair(
        lambda: [posting_label(key, c) for key, c in items],
        lambda: kernel.derive_labels(items),
        args.passes,
    )

    leaves = args.subtrees << args.subtree_level
    return {
        "subkeys_direct_seconds": direct_subkeys_s,
        "subkeys_kernel_seconds": kernel_subkeys_s,
        "subkeys_overhead_ratio": subkeys_ratio,
        "subkeys_leaves_per_s": leaves / kernel_subkeys_s,
        "labels_direct_seconds": direct_labels_s,
        "labels_kernel_seconds": kernel_labels_s,
        "labels_overhead_ratio": labels_ratio,
        "labels_per_s": args.labels / kernel_labels_s,
    }


# ---------------------------------------------------------------------------
# Experiment 2: all-scheme serial/pooled byte identity over the wire
# ---------------------------------------------------------------------------


def run_identity(args) -> "tuple[int, int]":
    """(schemes checked, total frames compared); raises on mismatch."""
    from repro.core.registry import make_scheme
    from repro.crypto.kernel import PooledKernel, SerialKernel
    from repro.exec.engine import QueryExecutor
    from repro.protocol import RemoteRangeClient, RsseServer
    from repro.storage import InMemoryBackend

    rng = random.Random(args.seed + 1)
    dataset = [(i, rng.randrange(64)) for i in range(args.identity_records)]
    frames_compared = 0
    pooled = PooledKernel(2, offload_min_units=1)
    try:
        for name in IDENTITY_SCHEMES:
            domain = 64 if name == "quadratic" else 128
            kwargs = (
                {"intersection_policy": "allow"}
                if name.startswith("constant")
                else {}
            )
            scheme = make_scheme(
                name, domain, rng=random.Random(args.seed + 2), **kwargs
            )
            backend = InMemoryBackend()
            serial_server = RsseServer(
                backend,
                executor=QueryExecutor(
                    workers=1, cache=False, kernel=SerialKernel()
                ),
            )
            recorded: "list[tuple[bytes, bytes | None]]" = []

            def transport(frame: bytes):
                response = serial_server.handle(frame)
                recorded.append(
                    (bytes(frame), None if response is None else bytes(response))
                )
                return response

            client = RemoteRangeClient(
                scheme, transport, rng=random.Random(args.seed + 3)
            )
            client.outsource(dataset)
            recorded.clear()
            for lo, hi in [(0, 63), (17, 51), (32, 32)]:
                client.query(lo, hi)
            pooled_server = RsseServer(
                backend,
                executor=QueryExecutor(workers=1, cache=False, kernel=pooled),
            )
            for request, expected in recorded:
                response = pooled_server.handle(request)
                got = None if response is None else bytes(response)
                if got != expected:
                    raise AssertionError(
                        f"{name}: pooled response frame differs from serial"
                    )
                frames_compared += 1
        stats = pooled.stats()
        if stats["serial_fallbacks"]:
            raise AssertionError(
                f"worker lane died during identity lane "
                f"({stats['serial_fallbacks']} fallbacks)"
            )
    finally:
        pooled.close()
    return len(IDENTITY_SCHEMES), frames_compared


# ---------------------------------------------------------------------------
# Experiment 3: simulated-capacity QPS scaling with worker count
# ---------------------------------------------------------------------------


def _record_query_frames(args) -> "tuple[object, list[list[bytes]]]":
    """Build one constant-brc index; return (backend, per-query frame
    groups) for wide-range queries — the replayable workload."""
    from repro.core.registry import make_scheme
    from repro.crypto.kernel import SerialKernel
    from repro.exec.engine import QueryExecutor
    from repro.protocol import RemoteRangeClient, RsseServer
    from repro.storage import InMemoryBackend

    rng = random.Random(args.seed + 10)
    records = [
        (i, rng.randrange(args.domain)) for i in range(args.records)
    ]
    scheme = make_scheme(
        "constant-brc",
        args.domain,
        rng=random.Random(args.seed + 11),
        intersection_policy="allow",
    )
    backend = InMemoryBackend()
    server = RsseServer(
        backend,
        executor=QueryExecutor(workers=1, cache=False, kernel=SerialKernel()),
    )
    recorded: "list[bytes]" = []

    def transport(frame: bytes):
        recorded.append(bytes(frame))
        return server.handle(frame)

    client = RemoteRangeClient(
        scheme, transport, rng=random.Random(args.seed + 12)
    )
    client.outsource(records)
    groups: "list[list[bytes]]" = []
    for _ in range(args.sim_queries):
        lo = rng.randrange(args.domain // 2)
        width = rng.randrange(args.domain // 4, args.domain // 2)
        recorded.clear()
        client.query(lo, min(args.domain - 1, lo + width))
        groups.append(list(recorded))
    return backend, groups


def _sim_lane(args, backend, groups, workers: int) -> float:
    """Closed-loop QPS: N threads replay query frame groups against a
    server whose kernel simulates ``workers`` crypto lanes."""
    from repro.crypto.kernel import PooledKernel
    from repro.exec.engine import QueryExecutor
    from repro.protocol import RsseServer

    kernel = PooledKernel(
        workers,
        offload_min_units=1,
        sim_hmac_s=args.sim_hmac_us * 1e-6,
    )
    server = RsseServer(
        backend,
        executor=QueryExecutor(workers=1, cache=False, kernel=kernel),
    )
    # Warm one query outside the window (lazy state, code paths hot).
    for frame in groups[0]:
        server.handle_request(frame)

    counts = [0] * args.sim_threads
    start_barrier = threading.Barrier(args.sim_threads + 1)
    deadline = [0.0]

    def worker(slot: int) -> None:
        start_barrier.wait()
        done = 0
        i = slot
        while time.perf_counter() < deadline[0]:
            for frame in groups[i % len(groups)]:
                server.handle_request(frame)
            i += 1
            done += 1
        counts[slot] = done

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(args.sim_threads)
    ]
    for t in threads:
        t.start()
    deadline[0] = time.perf_counter() + args.duration
    start_barrier.wait()
    for t in threads:
        t.join(timeout=args.duration + 120)
    kernel.close()
    stats = kernel.stats()
    if stats["serial_fallbacks"]:
        raise RuntimeError("simulated lane must never hit the fallback path")
    return sum(counts) / args.duration


# ---------------------------------------------------------------------------
# Transparency: the real process pool on this machine
# ---------------------------------------------------------------------------


def run_real_pool(args) -> "dict[str, float]":
    from repro.crypto.kernel import (
        PooledKernel,
        SerialKernel,
        fit_offload_crossover,
    )

    rng = random.Random(args.seed + 20)
    descriptors = [
        (rng.randbytes(32), args.real_level) for _ in range(args.real_subtrees)
    ]
    serial = SerialKernel()
    pooled = PooledKernel(args.real_workers, offload_min_units=1)
    try:
        pooled.worker_pids()  # spin the pool up outside the timing
        serial_s = _best_of(
            lambda: serial.derive_leaf_subkeys(descriptors), args.passes
        )
        pooled_s = _best_of(
            lambda: pooled.derive_leaf_subkeys(descriptors), args.passes
        )
        crossover, speedup = fit_offload_crossover(pooled, repeats=2)
        fallbacks = pooled.stats()["serial_fallbacks"]
    finally:
        pooled.close()
    leaves = args.real_subtrees << args.real_level
    return {
        "serial_seconds": serial_s,
        "pooled_seconds": pooled_s,
        "pooled_speedup": serial_s / pooled_s,
        "batch_leaves": float(leaves),
        "fitted_crossover_units": crossover,
        "fitted_speedup": speedup,
        "serial_fallbacks": float(fallbacks),
    }


# ---------------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--subtrees", type=int, default=6,
                        help="overhead lane: descriptors per batch")
    parser.add_argument("--subtree-level", type=int, default=10,
                        help="overhead lane: GGM level per descriptor")
    parser.add_argument("--labels", type=int, default=4096,
                        help="overhead lane: labels per batch")
    parser.add_argument("--passes", type=int, default=7,
                        help="interleaved passes for paired timed lanes")
    parser.add_argument("--identity-records", type=int, default=150)
    parser.add_argument("--records", type=int, default=400,
                        help="scaling lane: indexed records")
    parser.add_argument("--domain", type=int, default=1 << 12,
                        help="scaling lane: value domain")
    parser.add_argument("--sim-queries", type=int, default=12,
                        help="scaling lane: distinct recorded queries")
    parser.add_argument("--sim-threads", type=int, default=8,
                        help="scaling lane: concurrent client threads")
    parser.add_argument("--sim-hmac-us", type=float, default=10.0,
                        help="simulated service time per HMAC-equivalent")
    parser.add_argument("--workers", default="1,4",
                        help="scaling lane: comma-separated worker counts")
    parser.add_argument("--duration", type=float, default=2.5,
                        help="scaling lane: seconds per worker count")
    parser.add_argument("--real-workers", type=int, default=2,
                        help="transparency lane: real pool width")
    parser.add_argument("--real-subtrees", type=int, default=8)
    parser.add_argument("--real-level", type=int, default=12)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--overhead-factor", type=float, default=1.05,
                        help="gate: serial kernel <= factor * direct loop")
    parser.add_argument("--scaling-floor", type=float, default=2.0,
                        help="gate: top-worker qps >= floor * 1-worker qps")
    parser.add_argument("--skip-real-lane", action="store_true",
                        help="skip the ungated real-pool transparency lane")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: small batches, short windows")
    parser.add_argument("--json", default="BENCH_PR7.json", metavar="PATH")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.subtree_level = min(args.subtree_level, 8)
        args.labels = min(args.labels, 1024)
        args.passes = min(args.passes, 3)
        args.identity_records = min(args.identity_records, 80)
        args.records = min(args.records, 150)
        args.domain = min(args.domain, 1 << 10)
        args.sim_queries = min(args.sim_queries, 6)
        args.duration = min(args.duration, 1.0)
        args.real_subtrees = min(args.real_subtrees, 4)
        args.real_level = min(args.real_level, 10)
    args.worker_counts = sorted(
        {int(w) for w in str(args.workers).split(",") if w.strip()}
    )
    jsonout.check_baseline_path(args.json, args.force)

    results = []

    print("overhead: serial kernel vs retired inline loops")
    overhead = run_overhead(args)
    print(
        f"  subkeys {overhead['subkeys_overhead_ratio']:.3f}x "
        f"({overhead['subkeys_leaves_per_s']:,.0f} leaves/s) | "
        f"labels {overhead['labels_overhead_ratio']:.3f}x "
        f"({overhead['labels_per_s']:,.0f} labels/s)"
    )
    results.append(
        jsonout.result(
            "overhead/serial-kernel",
            "crypto_kernel",
            {"subtrees": args.subtrees, "level": args.subtree_level,
             "labels": args.labels, "passes": args.passes},
            **overhead,
        )
    )

    print("identity: serial vs pooled frames, all schemes")
    schemes_checked, frames_compared = run_identity(args)
    print(
        f"  {schemes_checked} schemes, {frames_compared} response frames "
        "byte-identical"
    )
    results.append(
        jsonout.result(
            "identity/all-schemes",
            "crypto_kernel",
            {"records": args.identity_records},
            schemes=schemes_checked,
            frames_compared=frames_compared,
        )
    )

    print(
        f"scaling: simulated crypto capacity "
        f"({args.sim_hmac_us:g} us/HMAC, {args.sim_threads} client threads)"
    )
    backend, groups = _record_query_frames(args)
    qps: "dict[int, float]" = {}
    for workers in args.worker_counts:
        qps[workers] = _sim_lane(args, backend, groups, workers)
        print(f"  workers={workers}: {qps[workers]:7.1f} qps")
    base = qps[args.worker_counts[0]]
    for workers, rate in qps.items():
        results.append(
            jsonout.result(
                f"scaling/sim/workers-{workers}",
                "crypto_kernel",
                {"workers": workers, "sim_hmac_us": args.sim_hmac_us,
                 "threads": args.sim_threads, "duration_s": args.duration},
                qps=rate,
                scale_vs_single=rate / base,
            )
        )

    real: "dict[str, float]" = {}
    if not args.skip_real_lane:
        print(
            f"transparency: real {args.real_workers}-worker pool "
            "(ungated on 1-CPU boxes)"
        )
        real = run_real_pool(args)
        print(
            f"  pooled {real['pooled_speedup']:.2f}x serial on "
            f"{real['batch_leaves']:,.0f} leaves; fitted crossover "
            f"{real['fitted_crossover_units']:g} units"
        )
        results.append(
            jsonout.result(
                "transparency/real-pool",
                "crypto_kernel",
                {"workers": args.real_workers,
                 "subtrees": args.real_subtrees, "level": args.real_level},
                **real,
            )
        )

    top = max(args.worker_counts)
    scaling = qps[top] / base
    worst_overhead = max(
        overhead["subkeys_overhead_ratio"], overhead["labels_overhead_ratio"]
    )
    results.append(
        jsonout.result(
            "acceptance",
            "crypto_kernel",
            {"overhead_factor": args.overhead_factor,
             "scaling_floor": args.scaling_floor, "top_workers": top},
            overhead_ratio=worst_overhead,
            scaling_x=scaling,
            frames_compared=frames_compared,
        )
    )

    jsonout.emit_json(
        args.json,
        "crypto_kernel",
        results,
        meta={
            "records": args.records,
            "domain": args.domain,
            "sim_hmac_us": args.sim_hmac_us,
            "workers": ",".join(map(str, args.worker_counts)),
            "duration_s": args.duration,
            "cpus": os.cpu_count(),
            "smoke": args.smoke,
        },
        force=args.force,
    )
    print(f"wrote {args.json}")

    ok = True
    if worst_overhead > args.overhead_factor:
        print(
            f"GATE FAIL: serial kernel overhead {worst_overhead:.3f}x "
            f"(allowed {args.overhead_factor}x)"
        )
        ok = False
    if scaling < args.scaling_floor:
        print(
            f"GATE FAIL: {top}-worker scaling {scaling:.2f}x "
            f"(floor {args.scaling_floor}x)"
        )
        ok = False
    if ok:
        print(
            f"gates pass: serial overhead {worst_overhead:.3f}x <= "
            f"{args.overhead_factor}x, identity {frames_compared} frames, "
            f"{top}-worker scaling {scaling:.2f}x >= {args.scaling_floor}x"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
