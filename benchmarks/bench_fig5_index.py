"""Figure 5 — index size (a) and construction time (b) on Gowalla-like data.

``--benchmark-only`` timing reproduces 5(b); the per-benchmark
``extra_info["index_mib"]`` column carries 5(a).  Expected ordering
(paper): Constant < Logarithmic-BRC/URC < Logarithmic-SRC <
Logarithmic-SRC-i, with PB construction far slower than all of ours.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DOMAIN, fresh_scheme
from repro.baselines.pb import PbScheme
from repro.harness.metrics import mib

import random

SCHEMES = (
    "constant-brc",
    "logarithmic-brc",
    "logarithmic-src",
    "logarithmic-src-i",
)


@pytest.mark.parametrize("name", SCHEMES)
def test_fig5_build(benchmark, name, gowalla_records):
    def build():
        scheme = fresh_scheme(name)
        scheme.build_index(gowalla_records)
        return scheme

    scheme = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index_mib"] = round(mib(scheme.index_size_bytes()), 4)
    benchmark.extra_info["n"] = len(gowalla_records)


def test_fig5_build_pb(benchmark, gowalla_records):
    def build():
        scheme = PbScheme(BENCH_DOMAIN, rng=random.Random(7))
        scheme.build_index(gowalla_records)
        return scheme

    scheme = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index_mib"] = round(mib(scheme.index_size_bytes()), 4)
    benchmark.extra_info["n"] = len(gowalla_records)


def test_fig5_shape_assertion(gowalla_records):
    """The paper's size ordering must hold at this scale too."""
    sizes = {}
    for name in SCHEMES:
        scheme = fresh_scheme(name)
        scheme.build_index(gowalla_records)
        sizes[name] = scheme.index_size_bytes()
    assert (
        sizes["constant-brc"]
        < sizes["logarithmic-brc"]
        < sizes["logarithmic-src"]
        <= sizes["logarithmic-src-i"]
    )
