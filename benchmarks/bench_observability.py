"""Observability benchmark (``BENCH_PR10.json``; PR-8 lanes retained).

Four gated questions, one transparency lane:

**1. What does always-on instrumentation cost?** (overhead)
    The PR-8 telemetry sits on every hot path: ``span()`` probes in
    the engine wave loop and kernel batch primitives, dispatcher
    decision counters, and the per-op latency histogram behind
    ``ServerStats.record_op``.  This lane replays recorded
    constant-brc query frames through an in-process server twice per
    pass — once with instruments enabled, once against
    registry-disabled no-ops — in *interleaved* passes, gating on the
    median per-pass ratio (the same anti-interference device the
    crypto-kernel bench uses).

    *Gate:* enabled/disabled ratio ≤ ``--overhead-factor`` (default
    1.05×).

**2. Does the stats surface actually carry tails?** (cluster poll)
    Two in-thread shard servers take real uploads and scatter-gather
    queries; the stats frame is then polled through
    :class:`~repro.net.NetTransport` and every op on every shard must
    report populated ``p50/p95/p99`` percentiles alongside the
    historical count/mean keys, and the live monitor's sample must
    see every shard reachable.

    *Gate:* every recorded op on every shard carries all three
    percentile keys with ``p50 ≤ p95 ≤ p99`` and a positive count.

**3. What does the always-on *production posture* cost?** (sampled)
    The PR-10 posture: 1-in-``--sample-rate`` probabilistic trace
    sampling on the server's query path, a per-pass SLO evaluation
    (registry snapshot → burn-rate states), and a live JSONL event
    log — versus the everything-off ``REPRO_OBS=0`` baseline.  Same
    interleaved replay and median-of-ratios device as lane 1.

    *Gate:* sampled/disabled ratio ≤ ``--overhead-factor`` (1.05×).

**4. Does the flight recorder catch the tail?** (flight)
    A delay-injecting storage wrapper makes a handful of queries slow
    while the shard runs 1-in-``--flight-sample-rate`` sampling (so
    ordinary sampling would all but certainly drop them) with the
    recorder armed at ``--flight-threshold-ms``.  The slow queries
    must land in the recorder ring with their *full span trees*.

    *Gate:* ≥ 1 capture; the top capture's elapsed ≥ the injected
    delay, its spans include ``storage.get_many``, and its sampling
    coin flip was tails (the capture exists *despite* sampling).

**Transparency (ungated).**  The same replay with a per-batch trace
active — every ``span()`` actually recording — reported as a ratio
against the untraced enabled lane.  Tracing is opt-in per query, so
its cost rides outside the always-on gate.

Run it::

    PYTHONPATH=src python benchmarks/bench_observability.py \
        --json BENCH_PR10.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_observability.py --smoke \
        --json bench-obs-smoke.json
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402


def _paired_ratio(fn_a, fn_b, passes: int) -> "tuple[float, float, float]":
    """Interleaved passes; returns (best_a, best_b, median b/a ratio).

    Median-of-per-pass-ratios keeps one scheduler burst on a busy CI
    box from skewing a comparison whose true difference is ~1%."""
    best_a = best_b = float("inf")
    ratios = []
    for _ in range(passes):
        t0 = time.perf_counter()
        fn_a()
        elapsed_a = time.perf_counter() - t0
        t0 = time.perf_counter()
        fn_b()
        elapsed_b = time.perf_counter() - t0
        best_a = min(best_a, elapsed_a)
        best_b = min(best_b, elapsed_b)
        ratios.append(elapsed_b / elapsed_a)
    ratios.sort()
    return best_a, best_b, ratios[len(ratios) // 2]


# ---------------------------------------------------------------------------
# Experiment 1: instrumentation overhead on the in-process hot path
# ---------------------------------------------------------------------------


def _record_workload(args):
    """One constant-brc index plus recorded query frame groups."""
    from repro.core.registry import make_scheme
    from repro.exec.engine import QueryExecutor
    from repro.protocol import RemoteRangeClient, RsseServer
    from repro.storage import InMemoryBackend

    rng = random.Random(args.seed)
    records = [(i, rng.randrange(args.domain)) for i in range(args.records)]
    scheme = make_scheme(
        "constant-brc",
        args.domain,
        rng=random.Random(args.seed + 1),
        intersection_policy="allow",
    )
    backend = InMemoryBackend()
    server = RsseServer(
        backend, executor=QueryExecutor(workers=1, cache=False)
    )
    recorded: "list[bytes]" = []

    def transport(frame: bytes):
        recorded.append(bytes(frame))
        return server.handle(frame)

    client = RemoteRangeClient(
        scheme, transport, rng=random.Random(args.seed + 2)
    )
    client.outsource(records)
    groups: "list[list[bytes]]" = []
    for _ in range(args.queries):
        lo = rng.randrange(args.domain // 2)
        width = rng.randrange(args.domain // 4, args.domain // 2)
        recorded.clear()
        client.query(lo, min(args.domain - 1, lo + width))
        groups.append(list(recorded))
    return backend, groups


def _make_server(backend, **kwargs):
    """A fresh cacheless single-worker server over the stored state —
    every replay pass does the same real crypto work.  ``kwargs``
    (``trace_sampler``, ``flight``, ...) pass through to the core."""
    from repro.exec.engine import QueryExecutor
    from repro.protocol import RsseServer

    return RsseServer(
        backend, executor=QueryExecutor(workers=1, cache=False), **kwargs
    )


def _replay(server, stats, groups) -> None:
    """What the net front does per frame: handle it, record the op."""
    for group in groups:
        for frame in group:
            t0 = time.perf_counter()
            server.handle_request(frame)
            stats.record_op("multi-search", time.perf_counter() - t0)


def _replay_traced(server, stats, groups, buffer) -> None:
    from repro.obs.tracing import new_trace_id, start_trace

    for group in groups:
        with start_trace(new_trace_id(), buffer, "server.handle"):
            for frame in group:
                t0 = time.perf_counter()
                server.handle_request(frame)
                stats.record_op("multi-search", time.perf_counter() - t0)


def run_overhead(args) -> "dict[str, float]":
    from repro.net.server import ServerStats
    from repro.obs.registry import MetricsRegistry, configure_default_registry
    from repro.obs.tracing import TraceBuffer

    backend, groups = _record_workload(args)
    server = _make_server(backend)
    enabled_stats = ServerStats(registry=MetricsRegistry(enabled=True))
    disabled_stats = ServerStats(registry=MetricsRegistry(enabled=False))
    # Warm every lazy path (searchable index, dispatcher cache) once.
    _replay(server, disabled_stats, groups[:1])

    def disabled_lane():
        configure_default_registry(enabled=False)
        try:
            _replay(server, disabled_stats, groups)
        finally:
            configure_default_registry(enabled=None)

    def enabled_lane():
        _replay(server, enabled_stats, groups)

    disabled_s, enabled_s, ratio = _paired_ratio(
        disabled_lane, enabled_lane, args.passes
    )

    # Transparency: the opt-in traced path against the enabled lane.
    buffer = TraceBuffer()
    traced_s = float("inf")
    for _ in range(args.passes):
        t0 = time.perf_counter()
        _replay_traced(server, enabled_stats, groups, buffer)
        traced_s = min(traced_s, time.perf_counter() - t0)

    frames = sum(len(g) for g in groups)
    hist = enabled_stats.registry.histogram("op.multi-search")
    return {
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "overhead_ratio": ratio,
        "traced_seconds": traced_s,
        "traced_ratio": traced_s / enabled_s,
        "frames_per_pass": float(frames),
        "enabled_frames_per_s": frames / enabled_s,
        "observations_recorded": float(hist.count),
        "traces_recorded": float(len(buffer)),
    }


# ---------------------------------------------------------------------------
# Experiment 3: the full PR-10 production posture vs REPRO_OBS=0
# ---------------------------------------------------------------------------


def run_sampled(args) -> "dict[str, float]":
    """Sampled tracing + SLO evaluator + event log vs everything off."""
    import tempfile

    from repro.net.server import ServerStats
    from repro.obs.events import EventLog
    from repro.obs.registry import MetricsRegistry, configure_default_registry
    from repro.obs.slo import SloTracker
    from repro.obs.tracing import TraceSampler

    backend, groups = _record_workload(args)
    baseline_server = _make_server(backend)
    sampled_server = _make_server(
        backend,
        trace_sampler=TraceSampler(
            args.sample_rate, rng=random.Random(args.seed + 3)
        ),
    )
    baseline_stats = ServerStats(registry=MetricsRegistry(enabled=False))
    sampled_stats = ServerStats(registry=MetricsRegistry(enabled=True))
    # Pin each core's instruments to its lane's registry (what the net
    # front does) so the baseline's counters are disabled no-ops and
    # the sampled lane's land where we can read them back.
    baseline_server.metrics_registry = baseline_stats.registry
    sampled_server.metrics_registry = sampled_stats.registry
    tracker = SloTracker(
        [
            "search-p99: p99(op.multi-search) < 250ms over 1m",
            "error-rate: error_rate < 5% over 1m",
        ],
        registry=sampled_stats.registry,
    )
    # Warm both servers' lazy paths once.
    _replay(baseline_server, baseline_stats, groups[:1])
    _replay(sampled_server, sampled_stats, groups[:1])

    with tempfile.NamedTemporaryFile(suffix=".jsonl") as sink:
        events = EventLog(path=sink.name, registry=sampled_stats.registry)

        def baseline_lane():
            configure_default_registry(enabled=False)
            try:
                _replay(baseline_server, baseline_stats, groups)
            finally:
                configure_default_registry(enabled=None)

        def sampled_lane():
            _replay(sampled_server, sampled_stats, groups)
            # The steady-state control plane: one evaluation tick and
            # one lifecycle event per polling interval.
            tracker.observe(sampled_stats.registry.snapshot(), unreachable=0)
            tracker.evaluate()
            events.emit("bench.pass", frames=sum(len(g) for g in groups))

        disabled_s, sampled_s, ratio = _paired_ratio(
            baseline_lane, sampled_lane, args.passes
        )

    registry = sampled_server.metrics_registry
    sampled_traces = (
        registry.counter("trace.sampled").value if registry else 0
    )
    dropped_traces = (
        registry.counter("trace.dropped").value if registry else 0
    )
    frames = sum(len(g) for g in groups)
    return {
        "disabled_seconds": disabled_s,
        "sampled_seconds": sampled_s,
        "sampled_ratio": ratio,
        "sample_rate": float(args.sample_rate),
        "frames_per_pass": float(frames),
        "sampled_frames_per_s": frames / sampled_s,
        "traces_sampled": float(sampled_traces),
        "traces_dropped": float(dropped_traces),
        "slo_evaluations": float(
            sampled_stats.registry.counter("slo.evaluations").value
        ),
        "events_emitted": float(events.emitted),
    }


# ---------------------------------------------------------------------------
# Experiment 4: tail-based capture — slow queries survive 1/1000 sampling
# ---------------------------------------------------------------------------


class _DelayedBackend:
    """Storage wrapper that can inject latency into ``get_many``.

    Everything else delegates verbatim; the bench arms the delay for a
    few queries to manufacture a reproducible tail."""

    def __init__(self, inner, delay_s: float) -> None:
        self._inner = inner
        self._delay_s = delay_s
        self.armed = False

    def get_many(self, ns, keys):
        if self.armed:
            time.sleep(self._delay_s)
        return self._inner.get_many(ns, keys)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def run_flight(args) -> "dict[str, float]":
    """Returns lane metrics; raises AssertionError when the gate fails."""
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import FlightRecorder, TraceSampler

    delay_s = args.flight_delay_ms / 1e3
    threshold_s = args.flight_threshold_ms / 1e3
    backend, groups = _record_workload(args)
    delayed = _DelayedBackend(backend, delay_s)
    server = _make_server(
        delayed,
        trace_sampler=TraceSampler(
            args.flight_sample_rate, rng=random.Random(args.seed + 4)
        ),
        flight=FlightRecorder(threshold_s=threshold_s),
    )
    server.metrics_registry = MetricsRegistry(enabled=True)

    for group in groups:
        for frame in group:
            server.handle_request(frame)
    fast_captures = len(server.flight)
    assert fast_captures == 0, (
        f"{fast_captures} fast queries crossed the "
        f"{args.flight_threshold_ms}ms bar; raise --flight-threshold-ms"
    )

    delayed.armed = True
    try:
        for frame in groups[0]:
            server.handle_request(frame)
    finally:
        delayed.armed = False

    captures = server.flight.snapshot()
    assert captures, "no slow query captured by the flight recorder"
    top = captures[0]
    assert top["elapsed_s"] >= delay_s, (
        f"capture elapsed {top['elapsed_s']:.4f}s < injected {delay_s}s"
    )
    names = {span["name"] for span in top["spans"]}
    assert "storage.get_many" in names, (
        f"capture span tree missing storage.get_many: {sorted(names)}"
    )
    assert not top["sampled"], (
        "the seeded coin flip sampled the slow query; the tail-based "
        "claim needs an unsampled capture (adjust --seed)"
    )
    registry = server.metrics_registry
    return {
        "captures": float(len(captures)),
        "capture_elapsed_s": top["elapsed_s"],
        "capture_spans": float(len(top["spans"])),
        "injected_delay_s": delay_s,
        "threshold_s": threshold_s,
        "flight_sample_rate": float(args.flight_sample_rate),
        "traces_dropped": float(registry.counter("trace.dropped").value),
        "slowlog_captured": float(
            registry.counter("slowlog.captured").value
        ),
    }


# ---------------------------------------------------------------------------
# Experiment 2: cluster stats poll — percentiles on every op, every shard
# ---------------------------------------------------------------------------


def run_cluster_poll(args) -> "dict[str, float]":
    """Returns lane metrics; raises AssertionError when the gate fails."""
    from repro.cluster import ClusterRouter, make_shard_map
    from repro.core.registry import make_scheme
    from repro.net import NetTransport, serve_in_thread
    from repro.obs import ClusterMonitor
    from repro.obs.tracing import new_trace_id

    rng = random.Random(args.seed + 10)
    records = [
        (i, rng.randrange(args.domain)) for i in range(args.records)
    ]
    servers = [
        serve_in_thread(shard=f"{i}/{args.shards}")
        for i in range(args.shards)
    ]
    ops_checked = 0
    try:
        shard_map = make_shard_map([(s.host, s.port) for s in servers])
        schemes = [
            make_scheme(
                "logarithmic-brc",
                args.domain,
                rng=random.Random(args.seed + 11 + i),
            )
            for i in range(args.shards)
        ]
        router = ClusterRouter(schemes, shard_map)
        try:
            router.outsource(records)
            for q in range(args.poll_queries):
                lo = rng.randrange(args.domain)
                hi = rng.randrange(lo, args.domain)
                router.query_many(
                    [(lo, hi)],
                    trace_id=new_trace_id() if q % 2 == 0 else None,
                )
            for server in servers:
                with NetTransport(server.host, server.port) as transport:
                    stats = transport.stats()
                assert stats.get("v") == 1, "stats frame must be versioned"
                ops = stats["net"]["ops"]
                assert ops, f"shard {server.port}: no ops recorded"
                for name, entry in ops.items():
                    label = f"shard {server.port} op {name}"
                    assert entry.get("count", 0) >= 1, label
                    for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
                        assert key in entry, f"{label}: missing {key}"
                        assert entry[key] > 0.0, f"{label}: {key} empty"
                    assert (
                        entry["p50_seconds"]
                        <= entry["p95_seconds"] * 1.0001
                        <= entry["p99_seconds"] * 1.0002
                    ), f"{label}: percentiles out of order"
                    ops_checked += 1
            addrs = [(s.host, s.port) for s in servers]
            with ClusterMonitor(addrs) as monitor:
                sample = monitor.sample()
            assert sample["reachable"] == args.shards, "monitor saw a DOWN shard"
        finally:
            router.close()
    finally:
        for server in servers:
            server.stop()
    return {
        "shards": float(args.shards),
        "queries": float(args.poll_queries),
        "ops_with_percentiles": float(ops_checked),
    }


# ---------------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--records", type=int, default=300,
                        help="indexed records (both lanes)")
    parser.add_argument("--domain", type=int, default=1 << 10,
                        help="value domain (both lanes)")
    parser.add_argument("--queries", type=int, default=16,
                        help="overhead lane: recorded query frame groups")
    parser.add_argument("--passes", type=int, default=7,
                        help="overhead lane: interleaved passes")
    parser.add_argument("--shards", type=int, default=2,
                        help="cluster lane: in-thread shard servers")
    parser.add_argument("--poll-queries", type=int, default=12,
                        help="cluster lane: scatter-gather queries")
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--overhead-factor", type=float, default=1.05,
                        help="gate: enabled <= factor * disabled")
    parser.add_argument("--sample-rate", type=int, default=100,
                        help="sampled lane: trace 1 in N queries")
    parser.add_argument("--flight-delay-ms", type=float, default=80.0,
                        help="flight lane: injected storage latency")
    parser.add_argument("--flight-threshold-ms", type=float, default=40.0,
                        help="flight lane: recorder capture threshold")
    parser.add_argument("--flight-sample-rate", type=int, default=1000,
                        help="flight lane: trace 1 in N queries")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: small batches, few passes")
    parser.add_argument("--json", default="BENCH_PR10.json", metavar="PATH")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.records = min(args.records, 150)
        args.domain = min(args.domain, 1 << 9)
        args.queries = min(args.queries, 8)
        args.passes = min(args.passes, 3)
        args.poll_queries = min(args.poll_queries, 6)
    jsonout.check_baseline_path(args.json, args.force)

    results = []

    print("overhead: instrumented hot path vs registry-disabled no-ops")
    overhead = run_overhead(args)
    print(
        f"  enabled {overhead['overhead_ratio']:.3f}x disabled "
        f"({overhead['enabled_frames_per_s']:,.0f} frames/s); "
        f"traced {overhead['traced_ratio']:.3f}x enabled (ungated)"
    )
    results.append(
        jsonout.result(
            "overhead/instrumented-hot-path",
            "observability",
            {"records": args.records, "domain": args.domain,
             "queries": args.queries, "passes": args.passes},
            **overhead,
        )
    )

    print(
        f"sampled: production posture (1/{args.sample_rate} tracing + "
        "SLO evaluator + event log) vs REPRO_OBS=0"
    )
    sampled = run_sampled(args)
    print(
        f"  sampled {sampled['sampled_ratio']:.3f}x disabled "
        f"({sampled['traces_sampled']:.0f} traces kept, "
        f"{sampled['traces_dropped']:.0f} dropped, "
        f"{sampled['slo_evaluations']:.0f} SLO ticks, "
        f"{sampled['events_emitted']:.0f} events)"
    )
    results.append(
        jsonout.result(
            "sampled/production-posture",
            "observability",
            {"records": args.records, "domain": args.domain,
             "queries": args.queries, "passes": args.passes,
             "sample_rate": args.sample_rate},
            **sampled,
        )
    )

    print(
        f"flight: {args.flight_delay_ms:.0f}ms injected tail vs "
        f"{args.flight_threshold_ms:.0f}ms bar at "
        f"1/{args.flight_sample_rate} sampling"
    )
    flight = run_flight(args)
    print(
        f"  {flight['captures']:.0f} captures; top "
        f"{1e3 * flight['capture_elapsed_s']:.1f}ms with "
        f"{flight['capture_spans']:.0f} spans, unsampled"
    )
    results.append(
        jsonout.result(
            "flight/tail-capture",
            "observability",
            {"delay_ms": args.flight_delay_ms,
             "threshold_ms": args.flight_threshold_ms,
             "sample_rate": args.flight_sample_rate},
            **flight,
        )
    )

    print(
        f"cluster poll: {args.shards} shards, tail percentiles on every op"
    )
    poll = run_cluster_poll(args)
    print(
        f"  {poll['ops_with_percentiles']:.0f} op entries carried "
        "p50/p95/p99 across all shards; monitor saw every shard up"
    )
    results.append(
        jsonout.result(
            "cluster/stats-poll",
            "observability",
            {"shards": args.shards, "queries": args.poll_queries},
            **poll,
        )
    )

    results.append(
        jsonout.result(
            "acceptance",
            "observability",
            {"overhead_factor": args.overhead_factor},
            overhead_ratio=overhead["overhead_ratio"],
            sampled_ratio=sampled["sampled_ratio"],
            flight_captures=flight["captures"],
            ops_with_percentiles=poll["ops_with_percentiles"],
        )
    )

    jsonout.emit_json(
        args.json,
        "observability",
        results,
        meta={
            "records": args.records,
            "domain": args.domain,
            "queries": args.queries,
            "passes": args.passes,
            "shards": args.shards,
            "cpus": os.cpu_count(),
            "smoke": args.smoke,
        },
        force=args.force,
    )
    print(f"wrote {args.json}")

    ok = True
    if overhead["overhead_ratio"] > args.overhead_factor:
        print(
            f"GATE FAIL: instrumentation overhead "
            f"{overhead['overhead_ratio']:.3f}x "
            f"(allowed {args.overhead_factor}x)"
        )
        ok = False
    if sampled["sampled_ratio"] > args.overhead_factor:
        print(
            f"GATE FAIL: production posture "
            f"{sampled['sampled_ratio']:.3f}x REPRO_OBS=0 "
            f"(allowed {args.overhead_factor}x)"
        )
        ok = False
    if flight["captures"] < 1:
        print("GATE FAIL: flight recorder captured no slow query")
        ok = False
    if poll["ops_with_percentiles"] < 1:
        print("GATE FAIL: no op percentiles observed in the cluster poll")
        ok = False
    if ok:
        print(
            f"gates pass: overhead {overhead['overhead_ratio']:.3f}x, "
            f"sampled posture {sampled['sampled_ratio']:.3f}x "
            f"(both <= {args.overhead_factor}x), "
            f"{flight['captures']:.0f} tail captures, "
            f"{poll['ops_with_percentiles']:.0f} op entries with tails "
            f"across {args.shards} shards"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
