"""Ablation benchmarks (DESIGN.md E-A1…E-A3) plus crypto micro-benches.

These quantify the design choices the paper argues qualitatively:
URC's canonicality premium over BRC, the TDAG blow-up factor, LSM
consolidation cost vs consolidation step, and the primitive costs that
dominate every scheme (PRF, GGM step, semantic encryption).
"""

from __future__ import annotations

import random

import pytest

from repro.core.registry import make_scheme
from repro.crypto.prf import generate_key, prf
from repro.crypto.prg import g
from repro.crypto.symmetric import SemanticCipher
from repro.harness.experiments import ablation_tdag, ablation_urc
from repro.updates import BatchUpdateManager, insert


def test_ablation_urc_canonicality(benchmark):
    rows = benchmark.pedantic(
        ablation_urc,
        kwargs=dict(domain=1 << 16, range_sizes=(100,), trials=100, seed=1),
        rounds=1,
        iterations=1,
    )
    ((_, brc_min, brc_max, urc_min, urc_max),) = rows
    assert urc_min == urc_max, "URC must be canonical"
    assert brc_max - brc_min >= 1, "BRC must vary with position"


def test_ablation_tdag_blowup(benchmark):
    avg, worst = benchmark.pedantic(
        ablation_tdag,
        kwargs=dict(domain=1 << 16, trials=300, seed=1),
        rounds=1,
        iterations=1,
    )
    assert worst <= 4.0, "Lemma 1 violated"


@pytest.mark.parametrize("step", (2, 8))
def test_ablation_consolidation_step(benchmark, step):
    def ingest():
        seeder = random.Random(step)
        mgr = BatchUpdateManager(
            lambda: make_scheme(
                "logarithmic-brc", 1 << 12, rng=random.Random(seeder.randrange(2**62))
            ),
            consolidation_step=step,
            rng=random.Random(3),
        )
        next_id = 0
        for _ in range(8):
            mgr.apply_batch([insert(next_id + i, (next_id + i) % (1 << 12)) for i in range(16)])
            next_id += 16
        return mgr

    mgr = benchmark.pedantic(ingest, rounds=2, iterations=1)
    benchmark.extra_info["active_indexes"] = mgr.active_indexes
    benchmark.extra_info["reencrypted"] = mgr.stats.tuples_reencrypted


class TestPrimitives:
    def test_prf_evaluation(self, benchmark):
        key = generate_key(random.Random(1))
        benchmark(prf, key, b"benchmark-message")

    def test_ggm_step(self, benchmark):
        seed = generate_key(random.Random(2))
        benchmark(g, seed)

    def test_semantic_encrypt(self, benchmark):
        cipher = SemanticCipher(generate_key(random.Random(3)))
        benchmark(cipher.encrypt, b"p" * 64)

    def test_semantic_round_trip(self, benchmark):
        cipher = SemanticCipher(generate_key(random.Random(3)))
        blob = cipher.encrypt(b"p" * 64)
        benchmark(cipher.decrypt, blob)
