"""Shared ``BENCH_*.json`` emitter for the benchmark suite.

Every benchmark entry point — the standalone :mod:`bench_bulk_io`
script and the pytest-benchmark modules via the suite's ``--bench-json``
option (see ``conftest.py``) — funnels its results through
:func:`emit_json`, so all ``BENCH_*.json`` files in the repository share
one shape and later PRs can diff perf trajectories mechanically:

```json
{
  "suite": "bulk_io",
  "meta": {"python": "3.12.3", "platform": "...", ...},
  "results": [
    {"name": "...", "group": "...", "params": {...}, "metrics": {...}},
    ...
  ]
}
```

``metrics`` values are floats (seconds, ops/sec, bytes — the entry's
``unit`` convention is carried in the metric name, e.g.
``build_seconds``, ``put_ops_per_s``).
"""

from __future__ import annotations

import json
import os
import platform
import sys


class BaselineOverwriteError(RuntimeError):
    """Refusal to clobber a committed ``BENCH_*.json`` baseline."""


def result(name: str, group: str, params: "dict | None" = None, **metrics) -> dict:
    """One benchmark entry in the shared shape."""
    return {
        "name": name,
        "group": group,
        "params": dict(params or {}),
        "metrics": {k: float(v) for k, v in metrics.items()},
    }


def environment_meta() -> dict:
    """Interpreter/platform fingerprint attached to every emitted file."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def check_baseline_path(path, force: bool = False) -> None:
    """Refuse to target an existing ``BENCH_*.json`` without ``force``.

    Benchmark CLIs call this up front (before minutes of measuring) and
    :func:`emit_json` enforces it again at write time.
    """
    name = os.path.basename(str(path))
    if (
        not force
        and name.startswith("BENCH_")
        and name.endswith(".json")
        and os.path.exists(path)
    ):
        raise BaselineOverwriteError(
            f"{path} is a committed benchmark baseline; pass --force "
            "(emit_json(force=True)) to overwrite it, or write to a "
            "different path"
        )


def emit_json(
    path,
    suite: str,
    results: "list[dict]",
    meta: "dict | None" = None,
    *,
    force: bool = False,
) -> dict:
    """Write one ``BENCH_*.json`` document; returns the document.

    An existing ``BENCH_*.json`` at ``path`` is a committed baseline
    that later PRs diff against; overwriting one silently would erase
    the trajectory, so it requires ``force=True`` (the benchmark CLIs'
    ``--force``).  Scratch outputs (any other filename, e.g. the CI
    smoke runs' ``bench-*.json``) overwrite freely.
    """
    check_baseline_path(path, force)
    doc = {
        "suite": suite,
        "meta": {**environment_meta(), **(meta or {})},
        "results": list(results),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


def print_table(results: "list[dict]", stream=None) -> None:
    """Human-readable dump of emitted entries (one line per metric)."""
    stream = stream if stream is not None else sys.stdout
    for entry in results:
        for metric, value in entry["metrics"].items():
            print(
                f"{entry['group']:>14} | {entry['name']:<44} "
                f"{metric:<22} {value:>14.6g}",
                file=stream,
            )
