"""Sustained-churn workload over the live-ingest wire path (``BENCH_PR9.json``).

Question: what does continuous ingest cost the reader?  A
:class:`~repro.net.NetRangeStore` is bulk-loaded, then measured twice
over a real TCP server:

* **static lane** — search latency with the LSM forest at rest, the
  baseline every dynamic scheme is judged against;
* **churn lane** — the same searches while a writer drives a sustained
  mixed insert/delete batch stream (server-side index builds and
  logarithmic consolidations racing every query).

*Gate:* churn search p99 ≤ ``--degradation-factor`` × static p99 (with
a small absolute floor so a sub-millisecond static p99 on a fast box
doesn't turn measurement noise into a failure), and the churn lane's
answers must match a plaintext oracle exactly once the stream drains.
The default factor is 1.5 with ≥2 CPUs (ingest builds run on another
core) and 2.5 on a single-core box, where a search overlapping any
server-side build time-shares the interpreter and ~2x its solo latency
is the fair-share floor — the single-core gate still catches real
serialization bugs (a head-of-line-blocked offload pool measured 4.3x
before it was widened).
``--smoke`` relaxes the factor (default 3.0) and shrinks the workload —
the CI smoke run is a mechanics check that the harness, frames and gate
plumbing work, not a perf claim; committed baselines come from the
full-scale run.

Run it::

    PYTHONPATH=src python benchmarks/bench_churn.py --json BENCH_PR9.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_churn.py --smoke \
        --json bench-churn-smoke.json
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402


def _percentile(sorted_values: "list[float]", q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _search_mix(rng: random.Random, domain: int, count: int):
    ranges = []
    for _ in range(count):
        width = rng.randrange(max(1, domain // 16), max(2, domain // 4))
        lo = rng.randrange(max(1, domain - width))
        ranges.append((lo, lo + width))
    return ranges


def _measure_searches(store, ranges, *, deadline: "float | None" = None):
    """Closed-loop search latencies (seconds, sorted ascending)."""
    latencies = []
    for lo, hi in ranges:
        if deadline is not None and time.perf_counter() > deadline:
            break
        t0 = time.perf_counter()
        store.search(lo, hi)
        latencies.append(time.perf_counter() - t0)
    return sorted(latencies)


def run_lanes(args) -> "tuple[dict, dict, dict]":
    """Build the store, run static then churn; returns the three dicts
    (static metrics, churn metrics, final store stats)."""
    from repro.net import NetRangeStore, serve_in_thread
    from repro.protocol import RsseServer

    rng = random.Random(args.seed)
    oracle = {i: rng.randrange(args.domain) for i in range(args.records)}
    ranges = _search_mix(random.Random(args.seed + 1), args.domain, args.searches)

    core = RsseServer()
    with serve_in_thread(core, max_inflight=256) as server:
        store = NetRangeStore.connect(
            server.host,
            server.port,
            domain_size=args.domain,
            scheme=args.scheme,
            consolidation_step=args.step,
        )
        # Bulk load in ingest-sized batches (the forest shape a live
        # deployment would actually have, not one giant level-0 index).
        for base in range(0, args.records, args.batch):
            store.insert_many(
                (rid, oracle[rid])
                for rid in range(base, min(base + args.batch, args.records))
            )
            store.flush()

        # -- static lane ---------------------------------------------------
        static_lat = _measure_searches(store, ranges)
        static = {
            "search_p50_ms": _percentile(static_lat, 0.50) * 1e3,
            "search_p99_ms": _percentile(static_lat, 0.99) * 1e3,
            "searches": float(len(static_lat)),
        }
        print(
            f"  static: p50 {static['search_p50_ms']:7.2f} ms   "
            f"p99 {static['search_p99_ms']:7.2f} ms   "
            f"({len(static_lat)} searches)",
            flush=True,
        )

        # -- churn lane ----------------------------------------------------
        # The writer drives its own connection; a threading.Lock guards
        # only the oracle dict (client-side bookkeeping, not the wire).
        writer_store = NetRangeStore.connect(
            server.host,
            server.port,
            domain_size=args.domain,
            scheme=args.scheme,
            index_id=store.index_id,
            consolidation_step=args.step,
        )
        oracle_lock = threading.Lock()
        ops_done = [0]
        stop = threading.Event()
        writer_rng = random.Random(args.seed + 2)
        next_id = [args.records]

        def writer() -> None:
            # Paced, not saturating: the gate asks what a *sustained*
            # ingest rate costs the reader.  An unpaced writer is a
            # single-core saturation test — it measures GIL contention,
            # not the wire path.
            started = time.perf_counter()
            while not stop.is_set():
                with oracle_lock:
                    batch = []
                    for _ in range(args.batch):
                        if oracle and writer_rng.random() < args.delete_frac:
                            rid = writer_rng.choice(list(oracle))
                            writer_store.delete(rid, oracle.pop(rid))
                        else:
                            rid = next_id[0]
                            next_id[0] += 1
                            value = writer_rng.randrange(args.domain)
                            oracle[rid] = value
                            writer_store.insert(rid, value)
                        batch.append(rid)
                writer_store.flush()
                ops_done[0] += len(batch)
                if args.ingest_rate > 0:
                    ahead = (
                        ops_done[0] / args.ingest_rate
                        - (time.perf_counter() - started)
                    )
                    if ahead > 0 and not stop.is_set():
                        stop.wait(ahead)

        thread = threading.Thread(target=writer, daemon=True)
        t0 = time.perf_counter()
        thread.start()
        churn_lat = _measure_searches(
            store, ranges, deadline=t0 + args.duration
        )
        # Keep churning until the full window elapsed even if searches
        # finished early — ingest throughput needs the whole window.
        remaining = args.duration - (time.perf_counter() - t0)
        if remaining > 0:
            time.sleep(remaining)
        stop.set()
        thread.join(timeout=60)
        elapsed = time.perf_counter() - t0
        ingest_ops_per_s = ops_done[0] / elapsed

        churn = {
            "search_p50_ms": _percentile(churn_lat, 0.50) * 1e3,
            "search_p99_ms": _percentile(churn_lat, 0.99) * 1e3,
            "searches": float(len(churn_lat)),
            "ingest_ops_per_s": ingest_ops_per_s,
            "ingest_ops": float(ops_done[0]),
        }
        print(
            f"  churn:  p50 {churn['search_p50_ms']:7.2f} ms   "
            f"p99 {churn['search_p99_ms']:7.2f} ms   "
            f"({len(churn_lat)} searches, "
            f"{ingest_ops_per_s:7.1f} ingest ops/s)",
            flush=True,
        )

        # -- correctness: drained stream must match the oracle exactly ----
        outcome = store.search(0, args.domain - 1)
        expected = frozenset(oracle)
        if outcome.ids != expected:
            raise SystemExit(
                f"CORRECTNESS FAIL: churned store diverged from oracle "
                f"(missing {sorted(expected - outcome.ids)[:5]}, "
                f"extra {sorted(outcome.ids - expected)[:5]})"
            )
        stores = core.stats_dict().get("stores", {})
        store_stats = stores.get(str(store.index_id), {})
        writer_store.close()
        store.close()
        return static, churn, store_stats


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--records", type=int, default=2_000)
    parser.add_argument("--domain", type=int, default=1 << 12)
    parser.add_argument("--scheme", default="logarithmic-brc")
    parser.add_argument("--step", type=int, default=4,
                        help="consolidation step s")
    parser.add_argument("--batch", type=int, default=32,
                        help="update ops per ingest batch")
    parser.add_argument("--delete-frac", type=float, default=0.5,
                        help="fraction of churn ops that are deletes "
                        "(0.5 = steady-state record count)")
    parser.add_argument("--ingest-rate", type=float, default=60.0,
                        help="sustained ingest ops/s the writer paces "
                        "to (0 = unpaced saturation)")
    parser.add_argument("--searches", type=int, default=400,
                        help="search count per lane")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="churn window seconds")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--degradation-factor", type=float, default=None,
                        help="gate: churn p99 <= factor * static p99 "
                        "(default 1.5, or 2.5 on a single-core box "
                        "where GIL fair-share makes ~2x the floor for "
                        "searches overlapping a build)")
    parser.add_argument("--p99-floor-ms", type=float, default=20.0,
                        help="absolute p99 allowance (noise guard on "
                        "sub-ms static baselines)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: tiny workload, relaxed factor "
                        "(mechanics check, not a perf claim)")
    parser.add_argument("--json", default="BENCH_PR9.json", metavar="PATH")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json")
    args = parser.parse_args(argv)
    if args.degradation_factor is None:
        args.degradation_factor = 1.5 if (os.cpu_count() or 1) >= 2 else 2.5
    if args.smoke:
        args.records = min(args.records, 300)
        args.searches = min(args.searches, 60)
        args.duration = min(args.duration, 3.0)
        args.degradation_factor = max(args.degradation_factor, 3.0)
    jsonout.check_baseline_path(args.json, args.force)

    print(
        f"churn bench: {args.records} records, domain {args.domain}, "
        f"{args.scheme}, s={args.step}, batch {args.batch}, "
        f"{args.duration:g}s churn window"
    )
    static, churn, store_stats = run_lanes(args)

    allowance = max(
        args.degradation_factor * static["search_p99_ms"], args.p99_floor_ms
    )
    degradation = (
        churn["search_p99_ms"] / static["search_p99_ms"]
        if static["search_p99_ms"]
        else 0.0
    )

    params = {
        "records": args.records,
        "domain": args.domain,
        "scheme": args.scheme,
        "step": args.step,
        "batch": args.batch,
        "delete_frac": args.delete_frac,
        "ingest_rate": args.ingest_rate,
    }
    results = [
        jsonout.result("churn/static", "churn", params, **static),
        jsonout.result(
            "churn/under-ingest", "churn", params,
            **churn,
            p99_vs_static_x=degradation,
        ),
        jsonout.result(
            "acceptance", "churn",
            {"degradation_factor": args.degradation_factor,
             "p99_floor_ms": args.p99_floor_ms},
            churn_p99_ms=churn["search_p99_ms"],
            allowance_ms=allowance,
            ingest_ops_per_s=churn["ingest_ops_per_s"],
            consolidations=float(store_stats.get("consolidations", 0)),
            active_indexes=float(store_stats.get("active_indexes", 0)),
        ),
    ]
    jsonout.emit_json(
        args.json,
        "churn",
        results,
        meta={
            **params,
            "searches": args.searches,
            "duration_s": args.duration,
            "cpus": os.cpu_count(),
            "smoke": args.smoke,
        },
        force=args.force,
    )
    print(f"wrote {args.json}")

    if churn["search_p99_ms"] > allowance:
        print(
            f"GATE FAIL: churn p99 {churn['search_p99_ms']:.2f} ms > "
            f"allowance {allowance:.2f} ms "
            f"(static p99 {static['search_p99_ms']:.2f} ms × "
            f"{args.degradation_factor:g}, floor {args.p99_floor_ms:g} ms)"
        )
        return 1
    print(
        f"gate passes: churn p99 {churn['search_p99_ms']:.2f} ms <= "
        f"allowance {allowance:.2f} ms "
        f"({degradation:.2f}x static, "
        f"{churn['ingest_ops_per_s']:.0f} ingest ops/s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
