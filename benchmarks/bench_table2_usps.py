"""Table 2 — index size and construction time on the skewed USPS stand-in.

Paper's headline for this table: under heavy skew (5% distinct values)
Logarithmic-SRC-i's auxiliary index is nearly free — its cost approaches
Logarithmic-SRC instead of doubling it as on uniform data.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import USPS_DOMAIN, fresh_scheme
from repro.baselines.pb import PbScheme
from repro.harness.metrics import mib

SCHEMES = (
    "constant-brc",
    "logarithmic-brc",
    "logarithmic-src",
    "logarithmic-src-i",
)


@pytest.mark.parametrize("name", SCHEMES)
def test_table2_build(benchmark, name, usps_records):
    def build():
        scheme = fresh_scheme(name, domain=USPS_DOMAIN)
        scheme.build_index(usps_records)
        return scheme

    scheme = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index_mib"] = round(mib(scheme.index_size_bytes()), 4)


def test_table2_build_pb(benchmark, usps_records):
    def build():
        scheme = PbScheme(USPS_DOMAIN, rng=random.Random(7))
        scheme.build_index(usps_records)
        return scheme

    scheme = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index_mib"] = round(mib(scheme.index_size_bytes()), 4)


def test_table2_src_i_overhead_small_under_skew(usps_records):
    """SRC-i adds 'minimal overheads' over SRC on skewed data (paper)."""
    src = fresh_scheme("logarithmic-src", domain=USPS_DOMAIN)
    srci = fresh_scheme("logarithmic-src-i", domain=USPS_DOMAIN)
    src.build_index(usps_records)
    srci.build_index(usps_records)
    ratio = srci.index_size_bytes() / src.index_size_bytes()
    assert ratio < 1.6, f"SRC-i/SRC size ratio {ratio:.2f} too large for skewed data"
