"""SSE backend comparison: Π_bas vs Π_pack vs Π_2lev.

The paper's S=6000/K=1.1 configuration is a storage/lookup trade inside
the SSE black box; this bench quantifies our three backends on the same
multimap so the trade is visible: build time, search time per result,
and serialized bytes (in ``extra_info``).
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.prf import generate_key
from repro.sse.base import PrfKeyDeriver
from repro.sse.encoding import encode_id
from repro.sse.pi2lev import Pi2Lev
from repro.sse.pibas import PiBas
from repro.sse.pipack import PiPack

KEY = generate_key(random.Random(1))

#: A realistic RSSE-shaped multimap: a few heavy keywords (high tree
#: nodes), many light ones (leaves).
def _multimap():
    mm = {}
    next_id = 0
    for k in range(4):  # heavy lists
        mm[b"heavy-%d" % k] = [encode_id(next_id + i) for i in range(256)]
        next_id += 256
    for k in range(256):  # light lists
        mm[b"light-%d" % k] = [encode_id(next_id + k)]
    return mm


BACKENDS = {
    "pibas": lambda: PiBas(PrfKeyDeriver(KEY), shuffle_rng=random.Random(0)),
    "pipack": lambda: PiPack(
        PrfKeyDeriver(KEY), block_size=8, shuffle_rng=random.Random(0)
    ),
    "pi2lev": lambda: Pi2Lev(
        PrfKeyDeriver(KEY), block_factor=8, inline_limit=2, shuffle_rng=random.Random(0)
    ),
}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_sse_build(benchmark, backend):
    multimap = _multimap()
    sse = BACKENDS[backend]()
    index = benchmark.pedantic(sse.build_index, args=(multimap,), rounds=2, iterations=1)
    benchmark.extra_info["edb_bytes"] = index.serialized_size()
    benchmark.extra_info["edb_entries"] = len(index)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_sse_search_heavy_keyword(benchmark, backend):
    multimap = _multimap()
    sse = BACKENDS[backend]()
    index = sse.build_index(multimap)
    token = sse.trapdoor(b"heavy-0")
    results = benchmark(sse.search, index, token)
    assert len(results) == 256


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_sse_search_light_keyword(benchmark, backend):
    multimap = _multimap()
    sse = BACKENDS[backend]()
    index = sse.build_index(multimap)
    token = sse.trapdoor(b"light-7")
    results = benchmark(sse.search, index, token)
    assert len(results) == 1


def test_backend_storage_ordering():
    """Packed backends must beat flat Π_bas on this heavy-tailed shape."""
    multimap = _multimap()
    sizes = {
        name: factory().build_index(multimap).serialized_size()
        for name, factory in BACKENDS.items()
    }
    assert sizes["pipack"] < sizes["pibas"]
    assert sizes["pi2lev"] < sizes["pibas"]
