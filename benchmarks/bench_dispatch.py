"""Cost-based dispatch benchmark (``BENCH_PR4.json``).

The paper's Table 1 says no single scheme dominates; this benchmark
makes that operational and gates on it.  A mixed workload — point-heavy
with a wide-range tail, over a skewed dataset (one hot value holds a
third of the mass) — runs through three lanes:

``fixed``
    One :class:`~repro.rangestore.RangeStore` per hybrid scheme
    (``logarithmic-brc``, ``logarithmic-src``), every query pinned to
    that scheme.  BRC pays ``O(log R)`` tokens everywhere but never a
    false positive; SRC pays one token but its single-cover slack drags
    the hot cluster into wide queries as false positives.

``hybrid``
    One :class:`~repro.rangestore.HybridRangeStore` maintaining both
    lanes side by side, cost model calibrated against the backend
    (:func:`~repro.exec.dispatch.calibrate_cost_model`), every query
    routed by the :class:`~repro.exec.dispatch.CostDispatcher`.

``dispatch_overhead``
    The planner/scoring cost per decision, measured separately — the
    price of adaptivity on the read path.

Lanes are measured over ``--passes`` interleaved passes of the whole
workload (pass k of every lane before pass k+1 of any); each query is
scored by its minimum latency across passes — the ``timeit`` rule —
and a lane's score is the mean of its per-query minimums.

Acceptance gate (exit 1 on failure): the hybrid lane's mean query
latency must be **<= the best fixed lane** (within a 2% timer-noise
allowance — the committed baseline records the exact ratio) and
**>= 1.3x faster than the worst fixed lane it replaces**.

Run it::

    PYTHONPATH=src python benchmarks/bench_dispatch.py --json BENCH_PR4.json

Smoke scale (CI)::

    PYTHONPATH=src python benchmarks/bench_dispatch.py \
        --records 1000 --queries 24 --json bench-dispatch-smoke.json
"""

from __future__ import annotations

import argparse
import gc
import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks import jsonout  # noqa: E402
from repro.exec.dispatch import DEFAULT_HYBRID_SCHEMES  # noqa: E402
from repro.rangestore import HybridRangeStore, RangeStore  # noqa: E402
from repro.storage.backend import SqliteBackend  # noqa: E402

DOMAIN = 1 << 16

#: The acceptance floor vs the worst fixed lane the hybrid replaces.
WORST_FLOOR_X = 1.3

#: Measurement-noise allowance on the <=-best-fixed check: the two
#: lanes run identical code on dispatched queries, so the true margin
#: is structural, but per-query minimums on a shared CI runner still
#: carry ~1% timer jitter.  The committed baseline records the exact
#: ratio; the gate only refuses a *real* regression.
BEST_NOISE_TOLERANCE = 1.02


def _workload(records: int, queries: int, seed: int = 7):
    """Skewed dataset + mixed query list (deterministic).

    Data: a third of the mass on one hot value, the rest uniform.
    Queries per 10: 2 points, 6 narrow ranges (width 4..24) and 2 wide
    ranges (domain/32 .. domain/8), one of which starts just above the
    hot value — excluded from the query, but inside the SRC cover's
    slack, which is the false-positive stampede BRC never pays.
    """
    rng = random.Random(seed)
    hot = DOMAIN // 3
    data = []
    for rid in range(records):
        value = hot if rid % 3 == 0 else rng.randrange(DOMAIN)
        data.append((rid, value))
    ranges = []
    # Mix per 10 queries: 2 wide — one of them starting just *above*
    # the hot value, so the query excludes it but SRC's single-cover
    # slack spans it (the false-positive stampede BRC never pays) —
    # 6 narrow (SRC's one-token win), 2 points.
    for q in range(queries):
        slot = q % 10
        if slot < 2:
            width = rng.randrange(DOMAIN // 32, DOMAIN // 8)
            if slot:
                lo = hot + rng.randrange(1, max(2, width // 4))
            else:
                lo = rng.randrange(DOMAIN - width)
            ranges.append((lo, min(DOMAIN - 1, lo + width)))
        elif slot < 8:
            lo = rng.randrange(DOMAIN - 32)
            ranges.append((lo, lo + rng.randrange(4, 25)))
        else:
            point = rng.randrange(DOMAIN)
            ranges.append((point, point))
    return data, ranges


def _measure_lanes(stores: dict, ranges, passes: int) -> dict:
    """Score every lane: mean over queries of the per-query minimum.

    Passes are *interleaved across lanes* (pass 1 of every lane, then
    pass 2 of every lane, ...) so slow host periods and allocator/GC
    drift hit each lane equally instead of whichever lane happened to
    be measured last.  Each query's latency is its minimum across
    passes (``timeit`` rule — the run least perturbed by other load)
    and the lane score averages those minimums; per-pass means are
    reported too so the JSON shows the raw spread.  For the hybrid
    lane the repeat passes also exercise the dispatcher's decision
    cache — the steady state a repeating workload actually runs in.
    Garbage collection is paused around each timed pass.
    """
    per_query = {name: [[] for _ in ranges] for name in stores}
    pass_means = {name: [] for name in stores}
    pass_maxes = {name: [] for name in stores}
    for _ in range(max(1, passes)):
        for name, store in stores.items():
            gc.collect()
            gc.disable()
            try:
                latencies = []
                for samples, (lo, hi) in zip(per_query[name], ranges):
                    t0 = time.perf_counter()
                    store.search(lo, hi)
                    elapsed = time.perf_counter() - t0
                    samples.append(elapsed)
                    latencies.append(elapsed)
            finally:
                gc.enable()
            pass_means[name].append(sum(latencies) / len(latencies))
            pass_maxes[name].append(max(latencies))
    scores = {}
    for name in stores:
        mins = [min(samples) for samples in per_query[name]]
        scores[name] = (
            sum(mins) / len(mins),
            pass_means[name],
            pass_maxes[name],
        )
    return scores


def _open_backend(kind: str, tmpdir: str, tag: str):
    if kind == "sqlite":
        return SqliteBackend(os.path.join(tmpdir, f"dispatch-{tag}.sqlite"))
    return None


def run(args) -> int:
    data, ranges = _workload(args.records, args.queries)
    schemes = DEFAULT_HYBRID_SCHEMES
    results: "list[dict]" = []
    fixed_scores: "dict[str, float]" = {}

    with tempfile.TemporaryDirectory(prefix="bench-dispatch-") as tmpdir:
        # -- build every lane up front (measurement is interleaved) ---------
        stores: "dict[str, object]" = {}
        backends = []
        build_seconds: "dict[str, float]" = {}
        for scheme in schemes:
            backend = _open_backend(args.backend, tmpdir, scheme)
            backends.append(backend)
            store = RangeStore.open(
                scheme,
                domain_size=DOMAIN,
                backend=backend,
                rng=random.Random(11),
            )
            t0 = time.perf_counter()
            store.insert_many(data)
            store.flush()
            build_seconds[scheme] = time.perf_counter() - t0
            stores[scheme] = store

        backend = _open_backend(args.backend, tmpdir, "hybrid")
        backends.append(backend)
        hybrid = HybridRangeStore(
            domain_size=DOMAIN,
            schemes=schemes,
            backend=backend,
            rng=random.Random(11),
        )
        t0 = time.perf_counter()
        hybrid.insert_many(data)
        hybrid.flush()
        hybrid_name = "hybrid"
        build_seconds[hybrid_name] = time.perf_counter() - t0
        model = hybrid.calibrate()
        stores[hybrid_name] = hybrid

        scored = _measure_lanes(stores, ranges, args.passes)

        for scheme in schemes:
            best, means, maxes = scored[scheme]
            fixed_scores[scheme] = best
            results.append(
                jsonout.result(
                    f"fixed/{scheme}",
                    "dispatch",
                    {
                        "records": args.records,
                        "queries": args.queries,
                        "backend": args.backend,
                        "domain": DOMAIN,
                    },
                    query_mean_seconds=best,
                    query_max_seconds=max(maxes),
                    build_seconds=build_seconds[scheme],
                    index_bytes=stores[scheme].index_bytes(),
                    **{f"pass{i}_mean_seconds": m for i, m in enumerate(means)},
                )
            )

        hybrid_best, means, maxes = scored[hybrid_name]

        # Lane tally + decision overhead (scored separately so the
        # measured query latency above stays the end-to-end number).
        chosen: "dict[str, int]" = {}
        t0 = time.perf_counter()
        for lo, hi in ranges:
            decision = hybrid.dispatcher.choose(lo, hi)
            chosen[decision.scheme] = chosen.get(decision.scheme, 0) + 1
        overhead_s = (time.perf_counter() - t0) / len(ranges)

        results.append(
            jsonout.result(
                "hybrid/" + "+".join(schemes),
                "dispatch",
                {
                    "records": args.records,
                    "queries": args.queries,
                    "backend": args.backend,
                    "domain": DOMAIN,
                    "calibrated": model.calibrated,
                },
                query_mean_seconds=hybrid_best,
                query_max_seconds=max(maxes),
                build_seconds=build_seconds[hybrid_name],
                index_bytes=sum(hybrid.index_bytes().values()),
                dispatch_overhead_seconds=overhead_s,
                **{f"pass{i}_mean_seconds": m for i, m in enumerate(means)},
                **{f"chose_{s.replace('-', '_')}": n for s, n in chosen.items()},
            )
        )
        for backend in backends:
            if backend is not None:
                backend.close()

    best_fixed = min(fixed_scores, key=fixed_scores.get)
    worst_fixed = max(fixed_scores, key=fixed_scores.get)
    vs_best = fixed_scores[best_fixed] / hybrid_best if hybrid_best else 0.0
    vs_worst = fixed_scores[worst_fixed] / hybrid_best if hybrid_best else 0.0
    results.append(
        jsonout.result(
            "hybrid/acceptance",
            "dispatch",
            {
                "best_fixed": best_fixed,
                "worst_fixed": worst_fixed,
                "worst_floor_x": WORST_FLOOR_X,
                "policy": f"best mean of {args.passes} passes per lane",
            },
            hybrid_mean_seconds=hybrid_best,
            best_fixed_mean_seconds=fixed_scores[best_fixed],
            worst_fixed_mean_seconds=fixed_scores[worst_fixed],
            speedup_vs_best_x=vs_best,
            speedup_vs_worst_x=vs_worst,
        )
    )
    jsonout.emit_json(
        args.json,
        "dispatch",
        results,
        meta={
            "records": args.records,
            "queries": args.queries,
            "passes": args.passes,
            "backend": args.backend,
            "schemes": "+".join(schemes),
        },
        force=args.force,
    )
    jsonout.print_table(results)
    print(
        f"\nhybrid {hybrid_best * 1e3:.3f} ms vs best fixed ({best_fixed}) "
        f"{fixed_scores[best_fixed] * 1e3:.3f} ms ({vs_best:.2f}x) and worst "
        f"fixed ({worst_fixed}) {fixed_scores[worst_fixed] * 1e3:.3f} ms "
        f"({vs_worst:.2f}x, floor {WORST_FLOOR_X}x)"
    )
    print(f"wrote {args.json}")
    failed = False
    if hybrid_best > fixed_scores[best_fixed] * BEST_NOISE_TOLERANCE:
        print(
            "FAIL: hybrid mean exceeds the best fixed lane beyond the "
            f"{BEST_NOISE_TOLERANCE:.2f}x noise allowance",
            file=sys.stderr,
        )
        failed = True
    if vs_worst < WORST_FLOOR_X:
        print(
            f"FAIL: hybrid only {vs_worst:.2f}x over the worst fixed lane "
            f"(floor {WORST_FLOOR_X}x)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=4_000,
                        help="records in the skewed dataset (default 4000)")
    parser.add_argument("--queries", type=int, default=50,
                        help="mixed queries per pass (default 50)")
    parser.add_argument("--passes", type=int, default=8,
                        help="interleaved passes per lane; each query is "
                        "scored by its minimum across passes (default 8)")
    parser.add_argument("--backend", choices=("memory", "sqlite"),
                        default="memory",
                        help="storage backend for every lane (default memory)")
    parser.add_argument("--json", default="BENCH_PR4.json", metavar="PATH",
                        help="output file (default BENCH_PR4.json)")
    parser.add_argument("--force", action="store_true",
                        help="allow overwriting a committed BENCH_*.json "
                        "baseline")
    args = parser.parse_args(argv)
    jsonout.check_baseline_path(args.json, args.force)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
