"""Caching-client benchmark: what the paper's mitigation buys.

Measures an overlapping query workload against Constant-BRC through the
owner-side cache: wall-clock per query and (in ``extra_info``) the
fraction of queries answered without touching the server.
"""

from __future__ import annotations

import random

import pytest

from repro.core.caching import CachingConstantClient
from repro.core.constant import ConstantBrc

DOMAIN = 1 << 12
N = 400


def _workload(count=20, seed=4):
    """Overlapping ranges drifting across the domain (dashboard-like)."""
    rng = random.Random(seed)
    queries = []
    cursor = 0
    for _ in range(count):
        lo = max(0, min(DOMAIN - 2, cursor + rng.randrange(-100, 200)))
        hi = min(DOMAIN - 1, lo + rng.randrange(50, 400))
        queries.append((lo, hi))
        cursor = lo
    return queries


def _records(seed=2):
    rng = random.Random(seed)
    return [(i, rng.randrange(DOMAIN)) for i in range(N)]


def test_cached_overlapping_workload(benchmark):
    records = _records()
    queries = _workload()

    def run():
        scheme = ConstantBrc(DOMAIN, rng=random.Random(1))
        scheme.build_index(records)
        client = CachingConstantClient(scheme)
        for lo, hi in queries:
            client.query(lo, hi)
        return client

    client = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["full_cache_hits"] = client.stats.served_fully_from_cache
    benchmark.extra_info["server_subqueries"] = client.stats.server_subqueries


def test_uncached_disjoint_equivalent(benchmark):
    """Cost floor: the same volume of work as non-overlapping queries
    against a guard-free scheme (what the cache converges to)."""
    records = _records()
    queries = _workload()

    def run():
        scheme = ConstantBrc(DOMAIN, rng=random.Random(1), intersection_policy="allow")
        scheme.build_index(records)
        for lo, hi in queries:
            scheme.query(lo, hi)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_cache_reduces_server_work():
    records = _records()
    queries = _workload()
    scheme = ConstantBrc(DOMAIN, rng=random.Random(1))
    scheme.build_index(records)
    client = CachingConstantClient(scheme)
    for lo, hi in queries:
        client.query(lo, hi)
    # Overlap-heavy workload: strictly fewer server trips than queries.
    assert client.stats.server_subqueries < client.stats.queries * 2
    assert client.stats.values_served_from_cache > 0
