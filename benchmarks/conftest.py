"""Shared fixtures for the benchmark suite.

Benchmarks run at laptop scale (hundreds to thousands of tuples); the
scale mapping to the paper's setup is recorded in DESIGN.md §3 and the
measured outputs in EXPERIMENTS.md.  Every fixture is deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import make_scheme
from repro.workloads.datasets import usps_like, with_distinct_fraction

try:  # absolute when benchmarks/ is on the path, relative under pytest
    from benchmarks import jsonout
except ImportError:  # pragma: no cover - layout fallback
    import jsonout  # type: ignore[no-redef]


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="export pytest-benchmark results through the shared "
        "BENCH_*.json emitter (benchmarks/jsonout.py)",
    )
    parser.addoption(
        "--bench-json-force",
        action="store_true",
        help="allow --bench-json to overwrite a committed BENCH_*.json "
        "baseline",
    )


def pytest_configure(config):
    """Refuse a committed-baseline target *before* the session runs —
    failing in sessionfinish would discard a whole measured run."""
    path = config.getoption("--bench-json")
    if path:
        jsonout.check_baseline_path(path, config.getoption("--bench-json-force"))


def pytest_sessionfinish(session, exitstatus):
    """Funnel pytest-benchmark stats through the shared JSON emitter."""
    path = session.config.getoption("--bench-json")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:  # pytest-benchmark not active
        return
    results = []
    for bench in bench_session.benchmarks:
        stats = bench.stats
        results.append(
            jsonout.result(
                bench.name,
                bench.group or "pytest-benchmark",
                params=dict(bench.params or {}),
                mean_seconds=stats.mean,
                stddev_seconds=stats.stddev,
                min_seconds=stats.min,
                rounds=stats.rounds,
                **{
                    f"extra_{k}": v
                    for k, v in bench.extra_info.items()
                    if isinstance(v, (int, float))
                },
            )
        )
    jsonout.emit_json(
        path,
        "pytest-benchmark",
        results,
        force=session.config.getoption("--bench-json-force"),
    )

BENCH_DOMAIN = 1 << 16
BENCH_N = 600
USPS_DOMAIN = 276_841


def fresh_scheme(name, domain=BENCH_DOMAIN, seed=7, **kwargs):
    extra = {"intersection_policy": "allow"} if name.startswith("constant") else {}
    extra.update(kwargs)
    return make_scheme(name, domain, rng=random.Random(seed), **extra)


@pytest.fixture(scope="session")
def gowalla_records():
    """Near-uniform dataset (95% distinct), the Gowalla stand-in."""
    return with_distinct_fraction(BENCH_N, BENCH_DOMAIN, 0.95, seed=42)


@pytest.fixture(scope="session")
def usps_records():
    """Skewed dataset (5% distinct, Zipf masses), the USPS stand-in."""
    return usps_like(BENCH_N, seed=42)


@pytest.fixture(scope="session")
def gowalla_oracle(gowalla_records):
    return PlaintextRangeIndex(gowalla_records)


def built(name, records, domain=BENCH_DOMAIN, seed=7, **kwargs):
    scheme = fresh_scheme(name, domain, seed, **kwargs)
    scheme.build_index(records)
    return scheme
