"""Update-framework throughput benchmarks (Section 7).

Measures batch ingestion (index build per batch), the amortized cost of
hierarchical consolidation, and query fan-out across active indexes —
the quantities the consolidation step ``s`` trades against each other.
"""

from __future__ import annotations

import random

import pytest

from repro.core.registry import make_scheme
from repro.updates import BatchUpdateManager, insert

DOMAIN = 1 << 12
BATCH = 32


def _manager(s, seed=1):
    seeder = random.Random(seed)
    return BatchUpdateManager(
        lambda: make_scheme(
            "logarithmic-brc", DOMAIN, rng=random.Random(seeder.randrange(2**62))
        ),
        consolidation_step=s,
        rng=random.Random(seed),
    )


def test_batch_ingest(benchmark):
    counter = {"next": 0}

    def ingest_one():
        mgr = _manager(s=64)  # no merges: isolates per-batch build cost
        base = counter["next"]
        counter["next"] += BATCH
        mgr.apply_batch(
            [insert(base + i, (base + i) % DOMAIN) for i in range(BATCH)]
        )
        return mgr

    benchmark.pedantic(ingest_one, rounds=5, iterations=1)


@pytest.mark.parametrize("s", (2, 4))
def test_ingest_with_consolidation(benchmark, s):
    def ingest_eight_batches():
        mgr = _manager(s=s)
        next_id = 0
        for _ in range(8):
            mgr.apply_batch(
                [insert(next_id + i, (next_id + i) % DOMAIN) for i in range(BATCH)]
            )
            next_id += BATCH
        return mgr

    mgr = benchmark.pedantic(ingest_eight_batches, rounds=2, iterations=1)
    benchmark.extra_info["active_indexes"] = mgr.active_indexes
    benchmark.extra_info["merges"] = mgr.stats.consolidations


@pytest.mark.parametrize("s", (2, 16))
def test_query_fanout(benchmark, s):
    mgr = _manager(s=s)
    next_id = 0
    for _ in range(8):
        mgr.apply_batch(
            [insert(next_id + i, (next_id + i) % DOMAIN) for i in range(BATCH)]
        )
        next_id += BATCH
    outcome = benchmark(mgr.query, 100, 3000)
    benchmark.extra_info["indexes_queried"] = outcome.rounds
