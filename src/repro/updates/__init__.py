"""Batch updates with forward privacy over static RSSE indexes."""

from repro.updates.batch import OP_LEN, OpKind, UpdateOp, delete, insert, modify
from repro.updates.manager import (
    BatchUpdateManager,
    UpdateStats,
    dump_manager,
    restore_manager,
)

__all__ = [
    "BatchUpdateManager",
    "OP_LEN",
    "OpKind",
    "UpdateOp",
    "UpdateStats",
    "delete",
    "dump_manager",
    "insert",
    "modify",
    "restore_manager",
]
