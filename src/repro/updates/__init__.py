"""Batch updates with forward privacy over static RSSE indexes."""

from repro.updates.batch import OP_LEN, OpKind, UpdateOp, delete, insert, modify
from repro.updates.manager import BatchUpdateManager, UpdateStats

__all__ = [
    "BatchUpdateManager",
    "OP_LEN",
    "OpKind",
    "UpdateOp",
    "UpdateStats",
    "delete",
    "insert",
    "modify",
]
