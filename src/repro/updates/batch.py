"""Update operations for the batch framework (paper Section 7).

Updates arrive in batches.  Every operation — insertion, deletion,
modification — is materialized as an *insertion* into the batch's fresh
index; deletions carry a flag and modifications decompose into a
tombstone for the old value plus an insertion of the new one, exactly as
the paper (and Vertica-style LSM systems) prescribe.

The operation payloads are encrypted server-side; only after client-side
decryption does the owner learn which returned entries are tombstones
and filter accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import UpdateError

#: Serialized operation payload length: kind(1) ‖ id(8) ‖ value(8).
OP_LEN = 17


class OpKind(Enum):
    """The update flavours supported by the batch framework."""

    INSERT = 0
    DELETE = 1


@dataclass(frozen=True)
class UpdateOp:
    """One logical operation on tuple ``record_id`` at attribute ``value``.

    For a deletion, ``value`` must be the value the tuple was inserted
    with — the tombstone must land in the same query ranges as the
    original insertion to be able to cancel it at refinement time.
    """

    kind: OpKind
    record_id: int
    value: int

    def __post_init__(self) -> None:
        # Validate here rather than letting encode() leak a raw
        # OverflowError from int.to_bytes at flush time, far from the
        # call that constructed the bad op.
        for field_name in ("record_id", "value"):
            field_value = getattr(self, field_name)
            if not isinstance(field_value, int) or isinstance(field_value, bool):
                raise UpdateError(
                    f"update op {field_name} must be int, "
                    f"got {type(field_value).__name__}"
                )
            if not 0 <= field_value < 1 << 64:
                raise UpdateError(
                    f"update op {field_name} {field_value} outside "
                    "unsigned 64-bit range"
                )

    def encode(self) -> bytes:
        """Fixed-size serialization for semantic encryption at rest."""
        return (
            bytes([self.kind.value])
            + self.record_id.to_bytes(8, "big")
            + self.value.to_bytes(8, "big")
        )

    @classmethod
    def decode(cls, payload: bytes) -> "UpdateOp":
        """Inverse of :meth:`encode`.

        Raises :class:`~repro.errors.UpdateError` for any malformed
        payload — including an unknown kind byte, which would otherwise
        surface as a bare :class:`ValueError` from the enum.  Decode is
        a wire-facing parser (the update frames carry these payloads),
        so hostile bytes must map to the library's typed errors.
        """
        if len(payload) != OP_LEN:
            raise UpdateError(f"op payload must be {OP_LEN} bytes, got {len(payload)}")
        try:
            kind = OpKind(payload[0])
        except ValueError:
            raise UpdateError(f"unknown update op kind {payload[0]}") from None
        return cls(
            kind,
            int.from_bytes(payload[1:9], "big"),
            int.from_bytes(payload[9:17], "big"),
        )


def insert(record_id: int, value: int) -> UpdateOp:
    """Insertion of a new tuple."""
    return UpdateOp(OpKind.INSERT, record_id, value)


def delete(record_id: int, value: int) -> UpdateOp:
    """Deletion tombstone; ``value`` is the tuple's indexed value."""
    return UpdateOp(OpKind.DELETE, record_id, value)


def modify(record_id: int, old_value: int, new_value: int) -> "list[UpdateOp]":
    """Modification = tombstone(old value) + insertion(new value)."""
    return [delete(record_id, old_value), insert(record_id, new_value)]
