"""LSM-style batch update manager with forward privacy (Section 7).

The paper's update strategy deliberately avoids dynamic SSE: every batch
becomes an independent *static* RSSE instance under a **fresh key**, and
indexes are periodically consolidated hierarchically — after ``s``
indexes accumulate at a level, the owner downloads them, merges the
surviving tuples (applying tombstones), re-encrypts under a new key, and
uploads a single index one level up, exactly like a log-structured merge
tree (the Vertica citation).  This keeps ``O(s·log_s b)`` active indexes
after ``b`` batches and gives forward privacy for free: a trapdoor
issued against yesterday's keys is useless against tomorrow's index.

A range query fans out to every active index; the owner merges the
per-index answers newest-first so that a tombstone in a newer batch
suppresses the insertion it targets in an older one.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, MutableMapping, Sequence

from repro.core.scheme import QueryOutcome, RangeScheme
from repro.crypto.prf import generate_key
from repro.crypto.symmetric import SemanticCipher
from repro.errors import UpdateError
from repro.storage.backend import NamespaceMap, StorageBackend
from repro.updates.batch import OpKind, UpdateOp

#: Factory producing a fresh scheme instance (fresh keys) per batch.
SchemeFactory = Callable[[], RangeScheme]


def _bulk_get_ops(
    store: "MutableMapping[int, bytes]", synthetics: "Sequence[int]"
) -> "list[bytes]":
    """Fetch many encrypted ops in one round where the store supports it.

    Backend-resident op logs (:class:`~repro.storage.NamespaceMap`)
    answer via ``get_many``; plain dicts index directly.  A missing
    synthetic id raises :class:`KeyError` either way — it means the op
    log and the index disagree, which is a corruption, not a miss.
    """
    get_many = getattr(store, "get_many", None)
    if get_many is None:
        return [store[s] for s in synthetics]
    blobs = get_many(synthetics)
    for synthetic, blob in zip(synthetics, blobs):
        if blob is None:
            raise KeyError(synthetic)
    return blobs


class _RWLock:
    """Many concurrent readers XOR one writer, writer-preferring.

    Queries fan over every active index and decrypt op logs as they go;
    consolidation retires indexes and *clears their storage*.  Without
    mutual exclusion a search that snapshotted the index list can walk
    an index whose EDB a concurrent merge just wiped — serving stale
    (or empty) GGM expansions for ranges that still have matches.  The
    gate makes retirement atomic from a reader's point of view: readers
    share freely, a writer waits for in-flight readers, and new readers
    queue behind a waiting writer so sustained search traffic cannot
    starve ingest.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class _ActiveIndex:
    """One static RSSE instance plus its encrypted operation log."""

    scheme: RangeScheme
    cipher: SemanticCipher
    op_store: "MutableMapping[int, bytes]"  # synthetic id -> Enc(op)
    level: int
    newest_seq: int  # recency: higher = contains newer operations
    cipher_key: bytes = b""  # retained for persistence (dump_manager)
    ops_ns: "str | None" = None  # backend namespace of op_store, if any


@dataclass
class UpdateStats:
    """Bookkeeping the ablation experiments report."""

    batches_ingested: int = 0
    consolidations: int = 0
    tuples_reencrypted: int = 0
    tombstones_purged: int = 0


class BatchUpdateManager:
    """Owns the batch lifecycle: ingest → consolidate → query.

    Parameters
    ----------
    scheme_factory:
        Zero-argument callable returning a fresh (un-built) scheme; a new
        instance — hence new keys — is created per batch and per merge.
        The factory MUST produce schemes with independent keys on every
        call (the default CSPRNG-backed constructors do).  Passing a
        fixed-seed ``rng`` into every instance silently voids forward
        privacy: old trapdoors would decrypt new batches.
    consolidation_step:
        The paper's ``s``: how many sibling indexes trigger a merge.
    rng:
        Randomness for synthetic-id free list and ciphers (testing hook).
    backend:
        Optional :class:`~repro.storage.StorageBackend` the encrypted
        operation logs persist through (one namespace per batch index).
        In-memory dicts when omitted.  Scheme-side persistence is the
        factory's concern: have it construct schemes with (prefixed)
        backends of their own, as :class:`repro.rangestore.RangeStore`
        does.
    """

    def __init__(
        self,
        scheme_factory: SchemeFactory,
        *,
        consolidation_step: int = 4,
        rng: "random.Random | None" = None,
        backend: "StorageBackend | None" = None,
    ) -> None:
        if consolidation_step < 2:
            raise UpdateError(
                f"consolidation step must be >= 2, got {consolidation_step}"
            )
        self._factory = scheme_factory
        self.s = consolidation_step
        self._rng = rng if rng is not None else random.SystemRandom()
        self._backend = backend
        self._indexes: list[_ActiveIndex] = []
        self._next_synthetic = 0
        self._seq = 0
        self._op_builds = 0  # monotone namespace counter for op logs
        #: Readers-vs-retirement gate: queries read-share the index
        #: list; ingest/consolidation take the write side only for the
        #: instants that mutate it (publish, retire).
        self._gate = _RWLock()
        #: Serializes whole batches against each other, so two threads
        #: ingesting concurrently cannot interleave synthetic-id
        #: allocation or trigger the same consolidation twice.
        self._ingest_lock = threading.Lock()
        self.stats = UpdateStats()

    # -- ingest ------------------------------------------------------------

    def apply_batch(self, ops: "Iterable[UpdateOp]") -> None:
        """Ingest one batch as a fresh static index, then consolidate.

        Thread-safe against concurrent :meth:`query` calls: the
        expensive work (index builds, merges) happens outside the read
        gate; only the list mutations exclude readers.
        """
        ops = list(ops)
        if not ops:
            raise UpdateError("empty update batch")
        with self._ingest_lock:
            self._seq += 1
            built = self._build_index(ops, level=0, seq=self._seq)
            with self._gate.write():
                self._indexes.append(built)
            self.stats.batches_ingested += 1
            self._maybe_consolidate()

    def _new_op_store(self) -> "tuple[MutableMapping[int, bytes], str | None]":
        """A fresh op log: backend-resident when a backend is attached."""
        self._op_builds += 1
        if self._backend is None:
            return {}, None
        ns = f"ops/{self._op_builds}"
        self._backend.drop(ns)
        return NamespaceMap(self._backend, ns), ns

    def _build_index(
        self, ops: "Sequence[UpdateOp]", *, level: int, seq: int
    ) -> _ActiveIndex:
        scheme = self._factory()
        cipher_key = generate_key(self._rng)
        cipher = SemanticCipher(cipher_key, rng=self._rng)
        op_store, ops_ns = self._new_op_store()
        records = []
        encrypted_ops = []
        for op in ops:
            synthetic = self._next_synthetic
            self._next_synthetic += 1
            encrypted_ops.append((synthetic, cipher.encrypt(op.encode())))
            records.append((synthetic, op.value))
        # One bulk write for the whole op log (NamespaceMap.update goes
        # through the backend's put_many).
        op_store.update(encrypted_ops)
        scheme.build_index(records)
        return _ActiveIndex(
            scheme, cipher, op_store, level, seq, cipher_key=cipher_key, ops_ns=ops_ns
        )

    # -- consolidation -------------------------------------------------------

    def _maybe_consolidate(self) -> None:
        while True:
            by_level: dict[int, list[_ActiveIndex]] = {}
            for idx in self._indexes:
                by_level.setdefault(idx.level, []).append(idx)
            full = [lvl for lvl, group in by_level.items() if len(group) >= self.s]
            if not full:
                return
            self._consolidate_level(min(full), by_level[min(full)])

    def _consolidate_level(self, level: int, group: "list[_ActiveIndex]") -> None:
        """Merge ``s`` sibling indexes into one re-encrypted parent."""
        group = sorted(group, key=lambda idx: idx.newest_seq)[: self.s]
        # The owner downloads and decrypts the involved op logs, strictly
        # newest operation first (synthetic ids grow with recency).
        ops_newest_first: list[UpdateOp] = []
        for idx in sorted(group, key=lambda i: i.newest_seq, reverse=True):
            # items() is one backend scan; the per-synthetic-id loop was
            # N+1 round-trips on persistent op logs.
            for _, blob in sorted(idx.op_store.items(), reverse=True):
                ops_newest_first.append(UpdateOp.decode(idx.cipher.decrypt(blob)))
        # Newest-wins cancellation: a tombstone consumes every *older*
        # insert of the same tuple inside this merge; a newer insert
        # (modification) is untouched by an older tombstone.
        tombstoned: set[int] = set()
        survivors: list[UpdateOp] = []
        for op in ops_newest_first:
            if op.kind is OpKind.DELETE:
                tombstoned.add(op.record_id)
                survivors.append(op)  # may still cancel inserts in older levels
            elif op.record_id not in tombstoned:
                survivors.append(op)
            else:
                self.stats.tombstones_purged += 1
        # When no older level can hold a matching insert, every tombstone
        # has done its job inside this merge and can be dropped.
        older_levels_exist = any(
            i.level > level for i in self._indexes if i not in group
        )
        if not older_levels_exist:
            before = len(survivors)
            survivors = [op for op in survivors if op.kind is OpKind.INSERT]
            self.stats.tombstones_purged += before - len(survivors)
        merged: "_ActiveIndex | None" = None
        if survivors:
            # Re-reverse so synthetic ids keep growing with recency in the
            # merged index (oldest op gets the smallest id).  Built while
            # the group is still live and visible — concurrent queries
            # keep answering from the old forest until the atomic swap
            # below publishes the merged index.
            merged = self._build_index(
                list(reversed(survivors)),
                level=level + 1,
                seq=max(i.newest_seq for i in group),
            )
            self.stats.tuples_reencrypted += len(survivors)
        # Atomic retirement: invalidate-before-publish under the write
        # gate.  The gate waits out in-flight queries (which may hold
        # references into the retiring indexes), then — with no readers
        # — drops the retirees' memoized expansions *before* the merged
        # index becomes visible, so no query can ever pair the new
        # forest with a stale cached expansion of the old one.  Only
        # after the swap, with the retirees unreachable, is their
        # storage actually freed (outside the gate — readers admitted
        # again never see the dead indexes).
        with self._gate.write():
            for idx in group:
                self._indexes.remove(idx)
                idx.scheme.invalidate_exec_cache()
            if merged is not None:
                self._indexes.append(merged)
        for idx in group:
            self._discard_index(idx)
        self.stats.consolidations += 1

    def _discard_index(self, idx: _ActiveIndex) -> None:
        """Free a retired (already unpublished) index's storage.

        Called only after the index left :attr:`_indexes` under the
        write gate, so no query can still be walking it.  The exec
        cache was already invalidated inside that critical section —
        atomically with retirement — because dropping memoized
        expansions *after* the new forest is visible would leave a
        window where dead entries squat in the LRU (stale hits are
        impossible — expansion is a pure function of cryptographically
        fresh seeds — but the cache must not carry retired indexes'
        weight).  The invalidation is deliberately blunt: entries are
        keyed by opaque seeds, so the dead index's cannot be singled
        out, and a whole-cache flush costs one re-expansion per live
        range.  Deployments hosting many tenants on one process should
        give each manager's scheme factory its own ``executor=``
        (hence its own cache) to scope this.
        """
        idx.scheme.server.clear()
        if self._backend is not None and idx.ops_ns is not None:
            self._backend.drop(idx.ops_ns)

    # -- query ---------------------------------------------------------------

    def query(self, lo: int, hi: int) -> QueryOutcome:
        """Fan a range query over all active indexes and merge the answers.

        The owner issues one trapdoor per active index (with that index's
        keys), collects per-index results, decrypts the operation flags,
        and applies newest-wins resolution: a DELETE suppresses any
        INSERT of the same tuple id coming from an older index (or from
        the same index, where recency is already resolved).
        """
        trapdoor_seconds = server_seconds = refine_seconds = 0.0
        token_bytes = response_bytes = 0
        raw_total = 0
        tokens_expanded = probes_issued = probes_coalesced = cache_hits = 0
        live: dict[int, UpdateOp] = {}
        decided: set[int] = set()
        # The read gate covers the whole fan-out: every index walked
        # here stays published (and its storage un-cleared) until the
        # query finishes, no matter what a concurrent consolidation is
        # preparing.  Reads share the gate freely.
        with self._gate.read():
            active = len(self._indexes)
            for idx in sorted(
                self._indexes, key=lambda i: i.newest_seq, reverse=True
            ):
                outcome = idx.scheme.query(lo, hi)
                trapdoor_seconds += outcome.trapdoor_seconds
                server_seconds += outcome.server_seconds
                refine_seconds += outcome.refine_seconds
                token_bytes += outcome.token_bytes
                response_bytes += outcome.response_bytes
                raw_total += len(outcome.raw_ids)
                tokens_expanded += outcome.tokens_expanded
                probes_issued += outcome.probes_issued
                probes_coalesced += outcome.probes_coalesced
                cache_hits += outcome.cache_hits
                # Within an index, higher synthetic id = more recent
                # operation; the first (newest) op seen for a tuple
                # decides its fate.
                t0 = time.perf_counter()
                synthetics = sorted(outcome.ids, reverse=True)
                for synthetic, blob in zip(
                    synthetics, _bulk_get_ops(idx.op_store, synthetics)
                ):
                    op = UpdateOp.decode(idx.cipher.decrypt(blob))
                    if op.record_id in decided:
                        continue
                    decided.add(op.record_id)
                    if op.kind is OpKind.INSERT:
                        live[op.record_id] = op
                refine_seconds += time.perf_counter() - t0
        matched = frozenset(live)
        return QueryOutcome(
            ids=matched,
            raw_ids=tuple(live),
            false_positives=raw_total - len(matched),
            token_bytes=token_bytes,
            rounds=active,
            trapdoor_seconds=trapdoor_seconds,
            server_seconds=server_seconds,
            refine_seconds=refine_seconds,
            response_bytes=response_bytes,
            tokens_expanded=tokens_expanded,
            probes_issued=probes_issued,
            probes_coalesced=probes_coalesced,
            cache_hits=cache_hits,
        )

    def invalidate_exec_caches(self) -> None:
        """Drop memoized expansions for every active index.

        The restore path calls this: a rehydrated forest starts from a
        clean cache so pre-snapshot memory pressure cannot carry over.
        """
        with self._gate.read():
            for idx in self._indexes:
                idx.scheme.invalidate_exec_cache()

    # -- introspection ---------------------------------------------------------

    @property
    def active_indexes(self) -> int:
        """Number of live static indexes (``O(s·log_s b)`` bound)."""
        return len(self._indexes)

    def total_index_bytes(self) -> int:
        """Combined EDB footprint across active indexes."""
        return sum(idx.scheme.index_size_bytes() for idx in self._indexes)

    def levels(self) -> "dict[int, int]":
        """Histogram level → index count (LSM shape introspection)."""
        hist: dict[int, int] = {}
        for idx in self._indexes:
            hist[idx.level] = hist.get(idx.level, 0) + 1
        return dict(sorted(hist.items()))


# ---------------------------------------------------------------------------
# Persistence: the whole LSM forest as one explicit binary blob
# ---------------------------------------------------------------------------

_MGR_MAGIC = b"RSSEMGR1"


def dump_manager(manager: BatchUpdateManager) -> bytes:
    """Serialize a manager's full state (every active index, keys and all).

    Each per-batch scheme snapshots through
    :func:`repro.io.snapshot.dump_scheme`, so only schemes with snapshot
    support can be persisted.
    """
    from repro.io.snapshot import _chunk, _serialize_store, dump_scheme

    parts = [
        _MGR_MAGIC,
        _chunk(manager.s.to_bytes(8, "big")),
        _chunk(manager._next_synthetic.to_bytes(8, "big")),
        _chunk(manager._seq.to_bytes(8, "big")),
        _chunk(len(manager._indexes).to_bytes(8, "big")),
    ]
    for idx in manager._indexes:
        parts.append(_chunk(idx.level.to_bytes(8, "big")))
        parts.append(_chunk(idx.newest_seq.to_bytes(8, "big")))
        parts.append(_chunk(idx.cipher_key))
        parts.append(_chunk(_serialize_store(sorted(idx.op_store.items()))))
        parts.append(_chunk(dump_scheme(idx.scheme)))
    return b"".join(parts)


def restore_manager(
    blob: bytes,
    scheme_factory: SchemeFactory,
    *,
    rng: "random.Random | None" = None,
    backend: "StorageBackend | None" = None,
    scheme_backend_factory: "Callable[[], StorageBackend | None] | None" = None,
    executor=None,
) -> BatchUpdateManager:
    """Inverse of :func:`dump_manager`.

    ``scheme_factory`` serves *future* batches; restored indexes come
    from their embedded snapshots.  ``scheme_backend_factory`` supplies
    one storage backend per restored scheme (return ``None`` for
    in-memory), matching however the factory provisions new ones;
    ``executor`` likewise wires restored schemes to the same query
    engine the factory would use.
    """
    import contextlib

    from repro.errors import IntegrityError
    from repro.io.snapshot import _Reader, _parse_store, restore_scheme

    blob = bytes(blob)
    if not blob.startswith(_MGR_MAGIC):
        raise IntegrityError("not an RSSE update-manager snapshot")
    reader = _Reader(blob[len(_MGR_MAGIC) :])
    step = int.from_bytes(reader.chunk(), "big")
    manager = BatchUpdateManager(
        scheme_factory, consolidation_step=step, rng=rng, backend=backend
    )
    manager._next_synthetic = int.from_bytes(reader.chunk(), "big")
    manager._seq = int.from_bytes(reader.chunk(), "big")
    count = int.from_bytes(reader.chunk(), "big")
    # All op logs land in one transaction on the manager's backend
    # (scheme stores commit through their own backends' transactions).
    txn = backend.transaction() if backend is not None else contextlib.nullcontext()
    with txn:
        for _ in range(count):
            level = int.from_bytes(reader.chunk(), "big")
            newest_seq = int.from_bytes(reader.chunk(), "big")
            cipher_key = reader.chunk()
            ops = _parse_store(reader.chunk())
            scheme_backend = (
                scheme_backend_factory() if scheme_backend_factory is not None else None
            )
            scheme = restore_scheme(
                reader.chunk(), rng=rng, backend=scheme_backend, executor=executor
            )
            op_store, ops_ns = manager._new_op_store()
            op_store.update(ops)
            manager._indexes.append(
                _ActiveIndex(
                    scheme,
                    SemanticCipher(cipher_key, rng=manager._rng),
                    op_store,
                    level,
                    newest_seq,
                    cipher_key=cipher_key,
                    ops_ns=ops_ns,
                )
            )
    if not reader.done():
        raise IntegrityError("trailing bytes after manager snapshot")
    manager.invalidate_exec_caches()
    return manager
