"""LSM-style batch update manager with forward privacy (Section 7).

The paper's update strategy deliberately avoids dynamic SSE: every batch
becomes an independent *static* RSSE instance under a **fresh key**, and
indexes are periodically consolidated hierarchically — after ``s``
indexes accumulate at a level, the owner downloads them, merges the
surviving tuples (applying tombstones), re-encrypts under a new key, and
uploads a single index one level up, exactly like a log-structured merge
tree (the Vertica citation).  This keeps ``O(s·log_s b)`` active indexes
after ``b`` batches and gives forward privacy for free: a trapdoor
issued against yesterday's keys is useless against tomorrow's index.

A range query fans out to every active index; the owner merges the
per-index answers newest-first so that a tombstone in a newer batch
suppresses the insertion it targets in an older one.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.scheme import QueryOutcome, RangeScheme
from repro.crypto.prf import generate_key
from repro.crypto.symmetric import SemanticCipher
from repro.errors import UpdateError
from repro.updates.batch import OpKind, UpdateOp

#: Factory producing a fresh scheme instance (fresh keys) per batch.
SchemeFactory = Callable[[], RangeScheme]


@dataclass
class _ActiveIndex:
    """One static RSSE instance plus its encrypted operation log."""

    scheme: RangeScheme
    cipher: SemanticCipher
    op_store: "dict[int, bytes]"  # synthetic id -> Enc(op)
    level: int
    newest_seq: int  # recency: higher = contains newer operations


@dataclass
class UpdateStats:
    """Bookkeeping the ablation experiments report."""

    batches_ingested: int = 0
    consolidations: int = 0
    tuples_reencrypted: int = 0
    tombstones_purged: int = 0


class BatchUpdateManager:
    """Owns the batch lifecycle: ingest → consolidate → query.

    Parameters
    ----------
    scheme_factory:
        Zero-argument callable returning a fresh (un-built) scheme; a new
        instance — hence new keys — is created per batch and per merge.
        The factory MUST produce schemes with independent keys on every
        call (the default CSPRNG-backed constructors do).  Passing a
        fixed-seed ``rng`` into every instance silently voids forward
        privacy: old trapdoors would decrypt new batches.
    consolidation_step:
        The paper's ``s``: how many sibling indexes trigger a merge.
    rng:
        Randomness for synthetic-id free list and ciphers (testing hook).
    """

    def __init__(
        self,
        scheme_factory: SchemeFactory,
        *,
        consolidation_step: int = 4,
        rng: "random.Random | None" = None,
    ) -> None:
        if consolidation_step < 2:
            raise UpdateError(
                f"consolidation step must be >= 2, got {consolidation_step}"
            )
        self._factory = scheme_factory
        self.s = consolidation_step
        self._rng = rng if rng is not None else random.SystemRandom()
        self._indexes: list[_ActiveIndex] = []
        self._next_synthetic = 0
        self._seq = 0
        self.stats = UpdateStats()

    # -- ingest ------------------------------------------------------------

    def apply_batch(self, ops: "Iterable[UpdateOp]") -> None:
        """Ingest one batch as a fresh static index, then consolidate."""
        ops = list(ops)
        if not ops:
            raise UpdateError("empty update batch")
        self._seq += 1
        self._indexes.append(self._build_index(ops, level=0, seq=self._seq))
        self.stats.batches_ingested += 1
        self._maybe_consolidate()

    def _build_index(
        self, ops: "Sequence[UpdateOp]", *, level: int, seq: int
    ) -> _ActiveIndex:
        scheme = self._factory()
        cipher = SemanticCipher(generate_key(self._rng), rng=self._rng)
        op_store: dict[int, bytes] = {}
        records = []
        for op in ops:
            synthetic = self._next_synthetic
            self._next_synthetic += 1
            op_store[synthetic] = cipher.encrypt(op.encode())
            records.append((synthetic, op.value))
        scheme.build_index(records)
        return _ActiveIndex(scheme, cipher, op_store, level, seq)

    # -- consolidation -------------------------------------------------------

    def _maybe_consolidate(self) -> None:
        while True:
            by_level: dict[int, list[_ActiveIndex]] = {}
            for idx in self._indexes:
                by_level.setdefault(idx.level, []).append(idx)
            full = [lvl for lvl, group in by_level.items() if len(group) >= self.s]
            if not full:
                return
            self._consolidate_level(min(full), by_level[min(full)])

    def _consolidate_level(self, level: int, group: "list[_ActiveIndex]") -> None:
        """Merge ``s`` sibling indexes into one re-encrypted parent."""
        group = sorted(group, key=lambda idx: idx.newest_seq)[: self.s]
        # The owner downloads and decrypts the involved op logs, strictly
        # newest operation first (synthetic ids grow with recency).
        ops_newest_first: list[UpdateOp] = []
        for idx in sorted(group, key=lambda i: i.newest_seq, reverse=True):
            for synthetic in sorted(idx.op_store, reverse=True):
                ops_newest_first.append(
                    UpdateOp.decode(idx.cipher.decrypt(idx.op_store[synthetic]))
                )
        # Newest-wins cancellation: a tombstone consumes every *older*
        # insert of the same tuple inside this merge; a newer insert
        # (modification) is untouched by an older tombstone.
        tombstoned: set[int] = set()
        survivors: list[UpdateOp] = []
        for op in ops_newest_first:
            if op.kind is OpKind.DELETE:
                tombstoned.add(op.record_id)
                survivors.append(op)  # may still cancel inserts in older levels
            elif op.record_id not in tombstoned:
                survivors.append(op)
            else:
                self.stats.tombstones_purged += 1
        # When no older level can hold a matching insert, every tombstone
        # has done its job inside this merge and can be dropped.
        older_levels_exist = any(
            i.level > level for i in self._indexes if i not in group
        )
        if not older_levels_exist:
            before = len(survivors)
            survivors = [op for op in survivors if op.kind is OpKind.INSERT]
            self.stats.tombstones_purged += before - len(survivors)
        for idx in group:
            self._indexes.remove(idx)
        if survivors:
            # Re-reverse so synthetic ids keep growing with recency in the
            # merged index (oldest op gets the smallest id).
            merged = self._build_index(
                list(reversed(survivors)),
                level=level + 1,
                seq=max(i.newest_seq for i in group),
            )
            self._indexes.append(merged)
            self.stats.tuples_reencrypted += len(survivors)
        self.stats.consolidations += 1

    # -- query ---------------------------------------------------------------

    def query(self, lo: int, hi: int) -> QueryOutcome:
        """Fan a range query over all active indexes and merge the answers.

        The owner issues one trapdoor per active index (with that index's
        keys), collects per-index results, decrypts the operation flags,
        and applies newest-wins resolution: a DELETE suppresses any
        INSERT of the same tuple id coming from an older index (or from
        the same index, where recency is already resolved).
        """
        trapdoor_seconds = server_seconds = 0.0
        token_bytes = 0
        raw_total = 0
        live: dict[int, UpdateOp] = {}
        decided: set[int] = set()
        for idx in sorted(self._indexes, key=lambda i: i.newest_seq, reverse=True):
            outcome = idx.scheme.query(lo, hi)
            trapdoor_seconds += outcome.trapdoor_seconds
            server_seconds += outcome.server_seconds
            token_bytes += outcome.token_bytes
            raw_total += len(outcome.raw_ids)
            # Within an index, higher synthetic id = more recent operation;
            # the first (newest) op seen for a tuple decides its fate.
            for synthetic in sorted(outcome.ids, reverse=True):
                op = UpdateOp.decode(idx.cipher.decrypt(idx.op_store[synthetic]))
                if op.record_id in decided:
                    continue
                decided.add(op.record_id)
                if op.kind is OpKind.INSERT:
                    live[op.record_id] = op
        matched = frozenset(live)
        return QueryOutcome(
            ids=matched,
            raw_ids=tuple(live),
            false_positives=raw_total - len(matched),
            token_bytes=token_bytes,
            rounds=len(self._indexes),
            trapdoor_seconds=trapdoor_seconds,
            server_seconds=server_seconds,
        )

    # -- introspection ---------------------------------------------------------

    @property
    def active_indexes(self) -> int:
        """Number of live static indexes (``O(s·log_s b)`` bound)."""
        return len(self._indexes)

    def total_index_bytes(self) -> int:
        """Combined EDB footprint across active indexes."""
        return sum(idx.scheme.index_size_bytes() for idx in self._indexes)

    def levels(self) -> "dict[int, int]":
        """Histogram level → index count (LSM shape introspection)."""
        hist: dict[int, int] = {}
        for idx in self._indexes:
            hist[idx.level] = hist.get(idx.level, 0) + 1
        return dict(sorted(hist.items()))
