"""Pluggable server-side storage backends (the persistence seam)."""

from repro.storage.backend import (
    FileBackend,
    InMemoryBackend,
    NamespaceMap,
    PrefixedBackend,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
    copy_backend,
)

__all__ = [
    "FileBackend",
    "InMemoryBackend",
    "NamespaceMap",
    "PrefixedBackend",
    "ShardedBackend",
    "SqliteBackend",
    "StorageBackend",
    "copy_backend",
]
