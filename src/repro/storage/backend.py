"""Pluggable storage backends for the untrusted server side.

Everything the server persists — EDB label→ciphertext entries, the
encrypted tuple store, encrypted payloads, operation logs — is opaque
binary data.  This module pins that observation down as an interface: a
:class:`StorageBackend` is a namespaced binary key-value store, and the
server-side roles (:class:`~repro.core.split.EncryptedDatabase`,
:class:`~repro.protocol.server.RsseServer`,
:class:`~repro.updates.manager.BatchUpdateManager`) all persist through
it instead of raw dicts.

Implementations:

``InMemoryBackend``
    Plain nested dicts; the default everywhere, zero overhead.
``SqliteBackend`` (alias ``FileBackend``)
    One SQLite file via the stdlib ``sqlite3`` module; survives process
    restarts, suitable for file-backed deployments and snapshots.
``ShardedBackend``
    Hash-stripes keys across N sub-backends, modelling a server that
    spreads EDB labels over multiple storage nodes.  Labels are PRF
    outputs, so striping by key hash is load-balanced by construction.
``PrefixedBackend``
    Namespace-prefix view of another backend, letting many logical
    stores (e.g. per-batch indexes) share one physical backend without
    colliding.

Nothing in a backend ever sees a key, a plaintext, or a query range —
the trust boundary is upheld by the data that reaches this layer, not
by this layer's discretion.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
import zlib
from abc import ABC, abstractmethod
from collections.abc import MutableMapping
from typing import Callable, Iterable, Iterator, Mapping, Sequence

#: Keys per ``SELECT … IN``/``DELETE … IN`` statement; comfortably under
#: SQLite's 999-host-parameter floor (one slot is taken by the namespace).
_SQL_CHUNK = 400


class StorageBackend(ABC):
    """Namespaced binary key-value store (the server's persistence seam).

    Namespaces are short strings (``"edb/main"``, ``"tuples"``); keys
    and values are bytes.  A missing namespace behaves like an empty
    one.
    """

    @abstractmethod
    def get(self, ns: str, key: bytes) -> "bytes | None":
        """Fetch one value (``None`` when absent)."""

    @abstractmethod
    def put(self, ns: str, key: bytes, value: bytes) -> None:
        """Insert or replace one entry."""

    @abstractmethod
    def delete(self, ns: str, key: bytes) -> bool:
        """Remove one entry, returning whether it existed."""

    @abstractmethod
    def keys(self, ns: str) -> "Iterator[bytes]":
        """Iterate the keys of a namespace (order unspecified)."""

    @abstractmethod
    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        """Iterate ``(key, value)`` pairs of a namespace."""

    @abstractmethod
    def count(self, ns: str) -> int:
        """Number of entries in a namespace."""

    @abstractmethod
    def drop(self, ns: str) -> None:
        """Remove a whole namespace (no-op when absent)."""

    @abstractmethod
    def namespaces(self) -> "list[str]":
        """All non-empty namespaces."""

    # -- bulk contract -------------------------------------------------------
    #
    # Every operation that moves many keys at once goes through these
    # three methods plus ``transaction()``.  The defaults fall back to
    # the per-op loop, so the contract is observationally identical to
    # N single calls — concrete backends override them with genuinely
    # batched implementations (one SQL statement, one dict sweep, one
    # delegation per shard).

    #: How many speculative keys a counter-walk search should probe per
    #: :meth:`get_many` round.  1 means "a single get costs nothing
    #: here, probe one at a time" (dicts); backends whose per-call
    #: round-trip dominates (SQLite) raise it so readers can trade a few
    #: wasted key derivations for a batched round-trip.
    probe_batch = 1

    #: Whether concurrent reads from arbitrary threads are safe.  The
    #: exec engine only fans read work out over its pool when this is
    #: true; SQLite connections are bound to their creating thread and
    #: set it to False (the engine then keeps storage calls on the
    #: calling thread — coalesced ``get_many`` rounds already are).
    thread_safe_reads = True

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        """Bulk insert/replace; later duplicates of a key win."""
        for key, value in entries:
            self.put(ns, key, value)

    def get_many(self, ns: str, keys: "Sequence[bytes]") -> "list[bytes | None]":
        """Fetch many values in request order (``None`` where absent).

        Duplicate keys are answered per position, exactly like the
        equivalent :meth:`get` loop.
        """
        return [self.get(ns, key) for key in keys]

    def delete_many(self, ns: str, keys: "Iterable[bytes]") -> int:
        """Remove many entries, returning how many existed."""
        return sum(1 for key in keys if self.delete(ns, key))

    @contextlib.contextmanager
    def transaction(self):
        """Group writes into one atomic unit where the backend can.

        Durable backends (SQLite) turn this into a real transaction —
        one fsync for any number of writes, rolled back on exception;
        sharded backends open one per shard.  In-memory backends treat
        it as a no-op grouping (writes apply immediately and are not
        undone on exception).  Reentrant: nested blocks join the
        outermost transaction.
        """
        yield self

    def close(self) -> None:
        """Release resources (files, connections); idempotent."""


class InMemoryBackend(StorageBackend):
    """Nested-dict backend — the default, and the fastest."""

    def __init__(self) -> None:
        self._data: "dict[str, dict[bytes, bytes]]" = {}

    def get(self, ns: str, key: bytes) -> "bytes | None":
        store = self._data.get(ns)
        return store.get(key) if store is not None else None

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        self._data.setdefault(ns, {})[bytes(key)] = bytes(value)

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        store = self._data.setdefault(ns, {})
        store.update((bytes(k), bytes(v)) for k, v in entries)
        if not store:  # empty batch must not materialize the namespace
            del self._data[ns]

    def get_many(self, ns: str, keys: "Sequence[bytes]") -> "list[bytes | None]":
        store = self._data.get(ns)
        if store is None:
            return [None] * len(keys)
        return [store.get(key) for key in keys]

    def delete_many(self, ns: str, keys: "Iterable[bytes]") -> int:
        store = self._data.get(ns)
        if store is None:
            return 0
        removed = 0
        for key in keys:
            if store.pop(key, None) is not None:
                removed += 1
        if not store:
            del self._data[ns]
        return removed

    def delete(self, ns: str, key: bytes) -> bool:
        store = self._data.get(ns)
        if store is None or key not in store:
            return False
        del store[key]
        if not store:
            del self._data[ns]
        return True

    def keys(self, ns: str) -> "Iterator[bytes]":
        return iter(list(self._data.get(ns, {})))

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        return iter(list(self._data.get(ns, {}).items()))

    def count(self, ns: str) -> int:
        return len(self._data.get(ns, {}))

    def drop(self, ns: str) -> None:
        self._data.pop(ns, None)

    def namespaces(self) -> "list[str]":
        return [ns for ns, store in self._data.items() if store]


class SqliteBackend(StorageBackend):
    """SQLite-file backend (stdlib only) — survives process restarts.

    One table maps ``(namespace, key) -> value``.  The connection runs
    in autocommit mode (a single :meth:`put` commits on return), while
    every bulk operation (:meth:`put_many`, :meth:`delete_many`, any
    :meth:`transaction` block) executes inside one explicit transaction
    — one commit for the whole batch instead of one per key.  The
    database runs in WAL mode with ``synchronous=NORMAL``: committed
    writes survive a process crash, but the very last commits may be
    lost on power/OS failure (they are fsynced at the next WAL
    checkpoint) — the standard throughput trade for write-heavy
    workloads.

    Threading: the single connection is opened with
    ``check_same_thread=False`` and every operation serializes through
    one reentrant lock, so the backend may be *used* from any thread
    (the network server hands requests to an executor pool) but is
    never *concurrent* — cross-thread callers queue.  Holding the lock
    for a whole :meth:`transaction` block also keeps another thread's
    statements from ever joining (or observing) a half-applied
    transaction on the shared connection.  ``thread_safe_reads`` stays
    False: parallel reads would just convoy on the lock.
    """

    probe_batch = 16
    thread_safe_reads = False

    def __init__(self, path) -> None:
        self._conn = sqlite3.connect(
            str(path), isolation_level=None, check_same_thread=False
        )
        self._lock = threading.RLock()
        self._txn_depth = 0
        # WAL + NORMAL: group-commit friendly, readers never block the
        # writer.  In-memory databases silently keep their own journal
        # mode; the PRAGMA reports rather than raises, so this is safe
        # on every target filesystem.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " ns TEXT NOT NULL, k BLOB NOT NULL, v BLOB NOT NULL,"
            " PRIMARY KEY (ns, k)) WITHOUT ROWID"
        )
        self.path = str(path)

    def get(self, ns: str, key: bytes) -> "bytes | None":
        with self._lock:
            row = self._conn.execute(
                "SELECT v FROM kv WHERE ns = ? AND k = ?", (ns, bytes(key))
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO kv (ns, k, v) VALUES (?, ?, ?)",
                (ns, bytes(key), bytes(value)),
            )

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        with self.transaction():
            self._conn.executemany(
                "INSERT OR REPLACE INTO kv (ns, k, v) VALUES (?, ?, ?)",
                ((ns, bytes(k), bytes(v)) for k, v in entries),
            )

    def get_many(self, ns: str, keys: "Sequence[bytes]") -> "list[bytes | None]":
        keys = [bytes(k) for k in keys]
        found: dict[bytes, bytes] = {}
        with self._lock:
            for start in range(0, len(keys), _SQL_CHUNK):
                chunk = list(dict.fromkeys(keys[start : start + _SQL_CHUNK]))
                placeholders = ",".join("?" * len(chunk))
                for k, v in self._conn.execute(
                    f"SELECT k, v FROM kv WHERE ns = ? AND k IN ({placeholders})",
                    [ns, *chunk],
                ):
                    found[bytes(k)] = bytes(v)
        return [found.get(key) for key in keys]

    def delete_many(self, ns: str, keys: "Iterable[bytes]") -> int:
        keys = list(dict.fromkeys(bytes(k) for k in keys))
        removed = 0
        with self.transaction():
            for start in range(0, len(keys), _SQL_CHUNK):
                chunk = keys[start : start + _SQL_CHUNK]
                placeholders = ",".join("?" * len(chunk))
                cur = self._conn.execute(
                    f"DELETE FROM kv WHERE ns = ? AND k IN ({placeholders})",
                    [ns, *chunk],
                )
                removed += cur.rowcount
        return removed

    @contextlib.contextmanager
    def transaction(self):
        # The lock spans the whole block (reentrantly), so a concurrent
        # thread can neither interleave statements into this
        # transaction nor read its uncommitted state off the shared
        # connection.
        with self._lock:
            if self._txn_depth == 0:
                self._conn.execute("BEGIN IMMEDIATE")
            self._txn_depth += 1
            try:
                yield self
            except BaseException:
                self._txn_depth -= 1
                if self._txn_depth == 0:
                    self._conn.execute("ROLLBACK")
                raise
            else:
                self._txn_depth -= 1
                if self._txn_depth == 0:
                    self._conn.execute("COMMIT")

    def delete(self, ns: str, key: bytes) -> bool:
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM kv WHERE ns = ? AND k = ?", (ns, bytes(key))
            )
            return cur.rowcount > 0

    def _paged(self, ns: str, columns: str) -> "Iterator[tuple]":
        """Key-ordered chunked scan: the lock is held per page, never
        across the caller's iteration, and memory stays O(page) even on
        a multi-gigabyte namespace.  ``(ns, k)`` is the table's primary
        key, so ``ORDER BY k`` walks the index — each page is a seek,
        not a scan."""
        last: "bytes | None" = None
        while True:
            with self._lock:
                if last is None:
                    rows = self._conn.execute(
                        f"SELECT {columns} FROM kv WHERE ns = ? "
                        "ORDER BY k LIMIT ?",
                        (ns, _SQL_CHUNK),
                    ).fetchall()
                else:
                    rows = self._conn.execute(
                        f"SELECT {columns} FROM kv WHERE ns = ? AND k > ? "
                        "ORDER BY k LIMIT ?",
                        (ns, last, _SQL_CHUNK),
                    ).fetchall()
            if not rows:
                return
            yield from rows
            last = bytes(rows[-1][0])

    def keys(self, ns: str) -> "Iterator[bytes]":
        return (bytes(k) for (k,) in self._paged(ns, "k"))

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        return (
            (bytes(k), bytes(v)) for k, v in self._paged(ns, "k, v")
        )

    def count(self, ns: str) -> int:
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM kv WHERE ns = ?", (ns,)
            ).fetchone()
        return n

    def drop(self, ns: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM kv WHERE ns = ?", (ns,))

    def namespaces(self) -> "list[str]":
        with self._lock:
            return [
                ns
                for (ns,) in self._conn.execute("SELECT DISTINCT ns FROM kv")
            ]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


#: Conventional name for the file-backed backend.
FileBackend = SqliteBackend


class ShardedBackend(StorageBackend):
    """Stripes keys across N sub-backends by key hash.

    EDB labels are (truncated) PRF outputs, so a cheap stable hash
    (CRC-32) spreads them uniformly; every shard holds ``~1/N`` of each
    namespace.  Namespace-level operations fan out to all shards.
    """

    def __init__(
        self,
        shards: "Sequence[StorageBackend] | None" = None,
        *,
        shard_count: int = 4,
        shard_factory: "Callable[[int], StorageBackend] | None" = None,
    ) -> None:
        if shards is not None:
            self.shards = list(shards)
        else:
            factory = shard_factory or (lambda i: InMemoryBackend())
            self.shards = [factory(i) for i in range(shard_count)]
        if not self.shards:
            raise ValueError("ShardedBackend needs at least one shard")

    def shard_for(self, key: bytes) -> StorageBackend:
        """The shard responsible for ``key``."""
        return self.shards[zlib.crc32(bytes(key)) % len(self.shards)]

    def shard_slice(self, index: int) -> StorageBackend:
        """The ``index``-th stripe as a plain backend (a live view, not
        a copy) — what a migration hands to the node taking over that
        stripe."""
        return self.shards[index]

    def extract_shard(
        self, index: int, dst: "StorageBackend | None" = None
    ) -> StorageBackend:
        """Copy stripe ``index`` out into ``dst`` (fresh in-memory when
        omitted) and return it — a point-in-time export of one stripe,
        for seeding a replacement node without handing it the live
        sub-backend."""
        return copy_backend(self.shards[index], dst)

    def _shard_index(self, key: bytes) -> int:
        return zlib.crc32(bytes(key)) % len(self.shards)

    def get(self, ns: str, key: bytes) -> "bytes | None":
        return self.shard_for(key).get(ns, key)

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        self.shard_for(key).put(ns, key, value)

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        # Group by shard and hand each group to that shard's own bulk
        # path — a SQLite shard then pays one transaction, not one
        # autocommit per key (the inherited per-key fallback did).
        groups: dict[int, list[tuple[bytes, bytes]]] = {}
        for key, value in entries:
            groups.setdefault(self._shard_index(key), []).append((key, value))
        for index, group in groups.items():
            self.shards[index].put_many(ns, group)

    def get_many(self, ns: str, keys: "Sequence[bytes]") -> "list[bytes | None]":
        # One bulk fetch per shard, then scatter answers back into
        # request order.
        groups: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self._shard_index(key), []).append(position)
        out: "list[bytes | None]" = [None] * len(keys)
        for index, positions in groups.items():
            values = self.shards[index].get_many(ns, [keys[p] for p in positions])
            for position, value in zip(positions, values):
                out[position] = value
        return out

    def delete_many(self, ns: str, keys: "Iterable[bytes]") -> int:
        groups: dict[int, list[bytes]] = {}
        for key in keys:
            groups.setdefault(self._shard_index(key), []).append(key)
        return sum(
            self.shards[index].delete_many(ns, group)
            for index, group in groups.items()
        )

    @contextlib.contextmanager
    def transaction(self):
        # Atomicity is per shard: each durable shard commits its own
        # transaction (no cross-shard two-phase commit — same contract
        # as any sharded store without a coordinator).
        with contextlib.ExitStack() as stack:
            for shard in self.shards:
                stack.enter_context(shard.transaction())
            yield self

    @property
    def probe_batch(self) -> int:
        # Speculative probes are worth exactly what they are worth on
        # the slowest shard they might hit.
        return max(shard.probe_batch for shard in self.shards)

    @property
    def thread_safe_reads(self) -> bool:
        # A read may land on any shard, so all of them must tolerate it.
        return all(shard.thread_safe_reads for shard in self.shards)

    def delete(self, ns: str, key: bytes) -> bool:
        return self.shard_for(key).delete(ns, key)

    def keys(self, ns: str) -> "Iterator[bytes]":
        for shard in self.shards:
            yield from shard.keys(ns)

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        for shard in self.shards:
            yield from shard.items(ns)

    def count(self, ns: str) -> int:
        return sum(shard.count(ns) for shard in self.shards)

    def drop(self, ns: str) -> None:
        for shard in self.shards:
            shard.drop(ns)

    def namespaces(self) -> "list[str]":
        # dict dedupe keeps first-seen order without the quadratic
        # ``ns not in list`` scan.
        seen: dict[str, None] = {}
        for shard in self.shards:
            for ns in shard.namespaces():
                seen.setdefault(ns)
        return list(seen)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


def copy_backend(
    src: StorageBackend, dst: "StorageBackend | None" = None
) -> StorageBackend:
    """Copy every namespace of ``src`` into ``dst`` (fresh in-memory
    backend when omitted), returning ``dst``.

    The workhorse of shard bootstrap: state exported from one node is
    replayed onto a replacement's backend through the ordinary bulk
    write path, so the copy costs one transaction per namespace on a
    durable destination.  Values are opaque bytes throughout — copying
    reveals nothing the source backend did not already hold.
    """
    if dst is None:
        dst = InMemoryBackend()
    for ns in src.namespaces():
        dst.put_many(ns, src.items(ns))
    return dst


class PrefixedBackend(StorageBackend):
    """View of another backend with every namespace prefixed.

    Lets many logical stores share one physical backend (one SQLite
    file, one shard set) without namespace collisions — e.g. one prefix
    per batch index in the update manager.
    """

    def __init__(self, inner: StorageBackend, prefix: str) -> None:
        self._inner = inner
        self._prefix = prefix

    def _ns(self, ns: str) -> str:
        return self._prefix + ns

    def get(self, ns: str, key: bytes) -> "bytes | None":
        return self._inner.get(self._ns(ns), key)

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        self._inner.put(self._ns(ns), key, value)

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        self._inner.put_many(self._ns(ns), entries)

    def get_many(self, ns: str, keys: "Sequence[bytes]") -> "list[bytes | None]":
        return self._inner.get_many(self._ns(ns), keys)

    def delete_many(self, ns: str, keys: "Iterable[bytes]") -> int:
        return self._inner.delete_many(self._ns(ns), keys)

    def transaction(self):
        return self._inner.transaction()

    @property
    def probe_batch(self) -> int:
        return self._inner.probe_batch

    @property
    def thread_safe_reads(self) -> bool:
        return self._inner.thread_safe_reads

    def delete(self, ns: str, key: bytes) -> bool:
        return self._inner.delete(self._ns(ns), key)

    def keys(self, ns: str) -> "Iterator[bytes]":
        return self._inner.keys(self._ns(ns))

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        return self._inner.items(self._ns(ns))

    def count(self, ns: str) -> int:
        return self._inner.count(self._ns(ns))

    def drop(self, ns: str) -> None:
        self._inner.drop(self._ns(ns))

    def namespaces(self) -> "list[str]":
        return [
            ns[len(self._prefix) :]
            for ns in self._inner.namespaces()
            if ns.startswith(self._prefix)
        ]

    def close(self) -> None:
        # The inner backend may be shared; closing is the owner's call.
        pass


class NamespaceMap(MutableMapping):
    """``MutableMapping[int, bytes]`` view over one backend namespace.

    Record/operation stores key by 64-bit integer ids; this adapter
    encodes them as 8-byte big-endian backend keys so dict-shaped call
    sites (the tuple store, the update manager's op logs) read and
    write through the backend seam unchanged.
    """

    def __init__(self, backend: StorageBackend, ns: str) -> None:
        self._backend = backend
        self._ns = ns

    @staticmethod
    def _key(item_id: int) -> bytes:
        return int(item_id).to_bytes(8, "big")

    def __getitem__(self, item_id: int) -> bytes:
        value = self._backend.get(self._ns, self._key(item_id))
        if value is None:
            raise KeyError(item_id)
        return value

    def __setitem__(self, item_id: int, value: bytes) -> None:
        self._backend.put(self._ns, self._key(item_id), bytes(value))

    def __delitem__(self, item_id: int) -> None:
        if not self._backend.delete(self._ns, self._key(item_id)):
            raise KeyError(item_id)

    def __iter__(self) -> "Iterator[int]":
        for key in self._backend.keys(self._ns):
            yield int.from_bytes(key, "big")

    def __len__(self) -> int:
        return self._backend.count(self._ns)

    # Bulk reads and writes go through the backend's batched paths
    # instead of the MutableMapping defaults (one get()/put() per key —
    # N+1 on SQLite).
    def get_many(self, item_ids: "Sequence[int]") -> "list[bytes | None]":
        """Fetch many values in request order (``None`` where absent)."""
        return self._backend.get_many(self._ns, [self._key(i) for i in item_ids])

    def update(self, other=(), /):
        entries = other.items() if isinstance(other, Mapping) else other
        self._backend.put_many(
            self._ns, ((self._key(i), bytes(v)) for i, v in entries)
        )

    def items(self):
        return [
            (int.from_bytes(k, "big"), v) for k, v in self._backend.items(self._ns)
        ]

    def values(self):
        return [v for _, v in self._backend.items(self._ns)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NamespaceMap({self._ns!r}, {len(self)} entries)"
