"""Pluggable storage backends for the untrusted server side.

Everything the server persists — EDB label→ciphertext entries, the
encrypted tuple store, encrypted payloads, operation logs — is opaque
binary data.  This module pins that observation down as an interface: a
:class:`StorageBackend` is a namespaced binary key-value store, and the
server-side roles (:class:`~repro.core.split.EncryptedDatabase`,
:class:`~repro.protocol.server.RsseServer`,
:class:`~repro.updates.manager.BatchUpdateManager`) all persist through
it instead of raw dicts.

Implementations:

``InMemoryBackend``
    Plain nested dicts; the default everywhere, zero overhead.
``SqliteBackend`` (alias ``FileBackend``)
    One SQLite file via the stdlib ``sqlite3`` module; survives process
    restarts, suitable for file-backed deployments and snapshots.
``ShardedBackend``
    Hash-stripes keys across N sub-backends, modelling a server that
    spreads EDB labels over multiple storage nodes.  Labels are PRF
    outputs, so striping by key hash is load-balanced by construction.
``PrefixedBackend``
    Namespace-prefix view of another backend, letting many logical
    stores (e.g. per-batch indexes) share one physical backend without
    colliding.

Nothing in a backend ever sees a key, a plaintext, or a query range —
the trust boundary is upheld by the data that reaches this layer, not
by this layer's discretion.
"""

from __future__ import annotations

import sqlite3
import zlib
from abc import ABC, abstractmethod
from collections.abc import MutableMapping
from typing import Callable, Iterable, Iterator, Sequence


class StorageBackend(ABC):
    """Namespaced binary key-value store (the server's persistence seam).

    Namespaces are short strings (``"edb/main"``, ``"tuples"``); keys
    and values are bytes.  A missing namespace behaves like an empty
    one.
    """

    @abstractmethod
    def get(self, ns: str, key: bytes) -> "bytes | None":
        """Fetch one value (``None`` when absent)."""

    @abstractmethod
    def put(self, ns: str, key: bytes, value: bytes) -> None:
        """Insert or replace one entry."""

    @abstractmethod
    def delete(self, ns: str, key: bytes) -> bool:
        """Remove one entry, returning whether it existed."""

    @abstractmethod
    def keys(self, ns: str) -> "Iterator[bytes]":
        """Iterate the keys of a namespace (order unspecified)."""

    @abstractmethod
    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        """Iterate ``(key, value)`` pairs of a namespace."""

    @abstractmethod
    def count(self, ns: str) -> int:
        """Number of entries in a namespace."""

    @abstractmethod
    def drop(self, ns: str) -> None:
        """Remove a whole namespace (no-op when absent)."""

    @abstractmethod
    def namespaces(self) -> "list[str]":
        """All non-empty namespaces."""

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        """Bulk insert; backends may override with a faster path."""
        for key, value in entries:
            self.put(ns, key, value)

    def close(self) -> None:
        """Release resources (files, connections); idempotent."""


class InMemoryBackend(StorageBackend):
    """Nested-dict backend — the default, and the fastest."""

    def __init__(self) -> None:
        self._data: "dict[str, dict[bytes, bytes]]" = {}

    def get(self, ns: str, key: bytes) -> "bytes | None":
        store = self._data.get(ns)
        return store.get(key) if store is not None else None

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        self._data.setdefault(ns, {})[bytes(key)] = bytes(value)

    def delete(self, ns: str, key: bytes) -> bool:
        store = self._data.get(ns)
        if store is None or key not in store:
            return False
        del store[key]
        if not store:
            del self._data[ns]
        return True

    def keys(self, ns: str) -> "Iterator[bytes]":
        return iter(list(self._data.get(ns, {})))

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        return iter(list(self._data.get(ns, {}).items()))

    def count(self, ns: str) -> int:
        return len(self._data.get(ns, {}))

    def drop(self, ns: str) -> None:
        self._data.pop(ns, None)

    def namespaces(self) -> "list[str]":
        return [ns for ns, store in self._data.items() if store]


class SqliteBackend(StorageBackend):
    """SQLite-file backend (stdlib only) — survives process restarts.

    One table maps ``(namespace, key) -> value``; the connection runs in
    autocommit mode so every write is durable without explicit
    transaction management at the call sites.
    """

    def __init__(self, path) -> None:
        self._conn = sqlite3.connect(str(path), isolation_level=None)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " ns TEXT NOT NULL, k BLOB NOT NULL, v BLOB NOT NULL,"
            " PRIMARY KEY (ns, k)) WITHOUT ROWID"
        )
        self.path = str(path)

    def get(self, ns: str, key: bytes) -> "bytes | None":
        row = self._conn.execute(
            "SELECT v FROM kv WHERE ns = ? AND k = ?", (ns, bytes(key))
        ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO kv (ns, k, v) VALUES (?, ?, ?)",
            (ns, bytes(key), bytes(value)),
        )

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO kv (ns, k, v) VALUES (?, ?, ?)",
            ((ns, bytes(k), bytes(v)) for k, v in entries),
        )

    def delete(self, ns: str, key: bytes) -> bool:
        cur = self._conn.execute(
            "DELETE FROM kv WHERE ns = ? AND k = ?", (ns, bytes(key))
        )
        return cur.rowcount > 0

    def keys(self, ns: str) -> "Iterator[bytes]":
        for (k,) in self._conn.execute("SELECT k FROM kv WHERE ns = ?", (ns,)):
            yield bytes(k)

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        for k, v in self._conn.execute(
            "SELECT k, v FROM kv WHERE ns = ?", (ns,)
        ):
            yield bytes(k), bytes(v)

    def count(self, ns: str) -> int:
        (n,) = self._conn.execute(
            "SELECT COUNT(*) FROM kv WHERE ns = ?", (ns,)
        ).fetchone()
        return n

    def drop(self, ns: str) -> None:
        self._conn.execute("DELETE FROM kv WHERE ns = ?", (ns,))

    def namespaces(self) -> "list[str]":
        return [ns for (ns,) in self._conn.execute("SELECT DISTINCT ns FROM kv")]

    def close(self) -> None:
        self._conn.close()


#: Conventional name for the file-backed backend.
FileBackend = SqliteBackend


class ShardedBackend(StorageBackend):
    """Stripes keys across N sub-backends by key hash.

    EDB labels are (truncated) PRF outputs, so a cheap stable hash
    (CRC-32) spreads them uniformly; every shard holds ``~1/N`` of each
    namespace.  Namespace-level operations fan out to all shards.
    """

    def __init__(
        self,
        shards: "Sequence[StorageBackend] | None" = None,
        *,
        shard_count: int = 4,
        shard_factory: "Callable[[int], StorageBackend] | None" = None,
    ) -> None:
        if shards is not None:
            self.shards = list(shards)
        else:
            factory = shard_factory or (lambda i: InMemoryBackend())
            self.shards = [factory(i) for i in range(shard_count)]
        if not self.shards:
            raise ValueError("ShardedBackend needs at least one shard")

    def shard_for(self, key: bytes) -> StorageBackend:
        """The shard responsible for ``key``."""
        return self.shards[zlib.crc32(bytes(key)) % len(self.shards)]

    def get(self, ns: str, key: bytes) -> "bytes | None":
        return self.shard_for(key).get(ns, key)

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        self.shard_for(key).put(ns, key, value)

    def delete(self, ns: str, key: bytes) -> bool:
        return self.shard_for(key).delete(ns, key)

    def keys(self, ns: str) -> "Iterator[bytes]":
        for shard in self.shards:
            yield from shard.keys(ns)

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        for shard in self.shards:
            yield from shard.items(ns)

    def count(self, ns: str) -> int:
        return sum(shard.count(ns) for shard in self.shards)

    def drop(self, ns: str) -> None:
        for shard in self.shards:
            shard.drop(ns)

    def namespaces(self) -> "list[str]":
        seen: list[str] = []
        for shard in self.shards:
            for ns in shard.namespaces():
                if ns not in seen:
                    seen.append(ns)
        return seen

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


class PrefixedBackend(StorageBackend):
    """View of another backend with every namespace prefixed.

    Lets many logical stores share one physical backend (one SQLite
    file, one shard set) without namespace collisions — e.g. one prefix
    per batch index in the update manager.
    """

    def __init__(self, inner: StorageBackend, prefix: str) -> None:
        self._inner = inner
        self._prefix = prefix

    def _ns(self, ns: str) -> str:
        return self._prefix + ns

    def get(self, ns: str, key: bytes) -> "bytes | None":
        return self._inner.get(self._ns(ns), key)

    def put(self, ns: str, key: bytes, value: bytes) -> None:
        self._inner.put(self._ns(ns), key, value)

    def put_many(self, ns: str, entries: "Iterable[tuple[bytes, bytes]]") -> None:
        self._inner.put_many(self._ns(ns), entries)

    def delete(self, ns: str, key: bytes) -> bool:
        return self._inner.delete(self._ns(ns), key)

    def keys(self, ns: str) -> "Iterator[bytes]":
        return self._inner.keys(self._ns(ns))

    def items(self, ns: str) -> "Iterator[tuple[bytes, bytes]]":
        return self._inner.items(self._ns(ns))

    def count(self, ns: str) -> int:
        return self._inner.count(self._ns(ns))

    def drop(self, ns: str) -> None:
        self._inner.drop(self._ns(ns))

    def namespaces(self) -> "list[str]":
        return [
            ns[len(self._prefix) :]
            for ns in self._inner.namespaces()
            if ns.startswith(self._prefix)
        ]

    def close(self) -> None:
        # The inner backend may be shared; closing is the owner's call.
        pass


class NamespaceMap(MutableMapping):
    """``MutableMapping[int, bytes]`` view over one backend namespace.

    Record/operation stores key by 64-bit integer ids; this adapter
    encodes them as 8-byte big-endian backend keys so dict-shaped call
    sites (the tuple store, the update manager's op logs) read and
    write through the backend seam unchanged.
    """

    def __init__(self, backend: StorageBackend, ns: str) -> None:
        self._backend = backend
        self._ns = ns

    @staticmethod
    def _key(item_id: int) -> bytes:
        return int(item_id).to_bytes(8, "big")

    def __getitem__(self, item_id: int) -> bytes:
        value = self._backend.get(self._ns, self._key(item_id))
        if value is None:
            raise KeyError(item_id)
        return value

    def __setitem__(self, item_id: int, value: bytes) -> None:
        self._backend.put(self._ns, self._key(item_id), bytes(value))

    def __delitem__(self, item_id: int) -> None:
        if not self._backend.delete(self._ns, self._key(item_id)):
            raise KeyError(item_id)

    def __iter__(self) -> "Iterator[int]":
        for key in self._backend.keys(self._ns):
            yield int.from_bytes(key, "big")

    def __len__(self) -> int:
        return self._backend.count(self._ns)

    # Bulk reads go through the backend's one-shot scan instead of the
    # MutableMapping default (one get() per key — N+1 on SQLite).
    def items(self):
        return [
            (int.from_bytes(k, "big"), v) for k, v in self._backend.items(self._ns)
        ]

    def values(self):
        return [v for _, v in self._backend.items(self._ns)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NamespaceMap({self._ns!r}, {len(self)} entries)"
