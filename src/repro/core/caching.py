"""Owner-side query cache for the Constant schemes (paper Section 5).

Constant-BRC/URC are secure only for non-intersecting queries.  The
paper offers two application-level outs: abort on intersections, or
"try to answer the query from cached answers of previous queries that
collectively encompass the new query range".  This module implements
the second, stronger option:

- the owner caches every (range, resolved records) pair it has queried;
- a new range is split into the sub-intervals already covered by cache
  (answered locally, *zero* server contact, zero new leakage) and the
  uncovered gaps;
- each gap lies, by construction, outside every previously queried
  range, so issuing it to the server never violates the
  non-intersection constraint — the guard stays in ``"raise"`` mode and
  proves it.

The result: the application sees an unrestricted range-query API while
the server only ever observes pairwise-disjoint ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constant import ConstantScheme
from repro.errors import IndexStateError


@dataclass
class CacheStats:
    """Observability for the cache's effectiveness."""

    queries: int = 0
    served_fully_from_cache: int = 0
    server_subqueries: int = 0
    values_served_from_cache: int = 0


class CachingConstantClient:
    """Unrestricted range queries over a Constant scheme via caching."""

    def __init__(self, scheme: ConstantScheme) -> None:
        if not isinstance(scheme, ConstantScheme):
            raise IndexStateError("CachingConstantClient requires a Constant scheme")
        if scheme.guard.policy != "raise":
            raise IndexStateError(
                "the cache exists to keep the guard in 'raise' mode; "
                "construct the scheme with intersection_policy='raise'"
            )
        self._scheme = scheme
        #: Disjoint cached intervals -> {id: value} of their tuples.
        self._cache: "list[tuple[int, int, dict[int, int]]]" = []
        self.stats = CacheStats()

    # -- interval bookkeeping ---------------------------------------------

    def _uncovered_gaps(self, lo: int, hi: int) -> "list[tuple[int, int]]":
        """Sub-intervals of [lo, hi] not covered by any cached range."""
        gaps: list[tuple[int, int]] = []
        cursor = lo
        for c_lo, c_hi, _ in sorted(self._cache):
            if c_hi < cursor or c_lo > hi:
                continue
            if c_lo > cursor:
                gaps.append((cursor, min(c_lo - 1, hi)))
            cursor = max(cursor, c_hi + 1)
            if cursor > hi:
                break
        if cursor <= hi:
            gaps.append((cursor, hi))
        return gaps

    def _cached_hits(self, lo: int, hi: int) -> "dict[int, int]":
        hits: dict[int, int] = {}
        for c_lo, c_hi, records in self._cache:
            if c_hi < lo or c_lo > hi:
                continue
            for doc_id, value in records.items():
                if lo <= value <= hi:
                    hits[doc_id] = value
        return hits

    # -- the public API -------------------------------------------------------

    def query(self, lo: int, hi: int) -> "frozenset[int]":
        """Answer any range, intersecting or not, leaking only gaps."""
        lo, hi = self._scheme.check_range(lo, hi)
        self.stats.queries += 1
        hits = self._cached_hits(lo, hi)
        self.stats.values_served_from_cache += len(hits)
        gaps = self._uncovered_gaps(lo, hi)
        if not gaps:
            self.stats.served_fully_from_cache += 1
            return frozenset(hits)
        for g_lo, g_hi in gaps:
            # Legal by construction: the gap intersects no earlier query.
            token = self._scheme.trapdoor(g_lo, g_hi)
            raw_ids = self._scheme.search(token)
            resolved = {
                rec.id: rec.value
                for rec in self._scheme.resolve(raw_ids)
                if g_lo <= rec.value <= g_hi
            }
            self._cache.append((g_lo, g_hi, resolved))
            hits.update(resolved)
            self.stats.server_subqueries += 1
        return frozenset(hits)

    @property
    def cached_intervals(self) -> "list[tuple[int, int]]":
        """The disjoint intervals currently held (sorted)."""
        return sorted((lo, hi) for lo, hi, _ in self._cache)
