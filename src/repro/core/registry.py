"""Scheme registry: one place mapping paper names to constructors.

The harness, benchmarks and examples all instantiate schemes through
:func:`make_scheme`, so experiment code reads like the paper
("logarithmic-src-i") and never hard-codes classes.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.pb import PbScheme
from repro.core.constant import ConstantBrc, ConstantUrc
from repro.core.log_src import LogarithmicSrc
from repro.core.log_src_i import LogarithmicSrcI
from repro.core.logarithmic import LogarithmicBrc, LogarithmicUrc
from repro.core.quadratic import Quadratic
from repro.core.scheme import RangeScheme

#: All RSSE constructions of the paper, keyed by their Table 1 names,
#: plus the measured PB baseline of Li et al. (so the CLI and the
#: comparison experiments can select it like any scheme).
SCHEMES: "dict[str, Callable[..., RangeScheme]]" = {
    "quadratic": Quadratic,
    "constant-brc": ConstantBrc,
    "constant-urc": ConstantUrc,
    "logarithmic-brc": LogarithmicBrc,
    "logarithmic-urc": LogarithmicUrc,
    "logarithmic-src": LogarithmicSrc,
    "logarithmic-src-i": LogarithmicSrcI,
    "pb": PbScheme,
}

#: The schemes the paper's experiments run (Quadratic excluded for its
#: prohibitive storage, exactly as in Section 8).
EXPERIMENT_SCHEMES = (
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)

#: Security ranking from Table 1 (higher = stronger guarantees).
SECURITY_LEVELS = {
    "pb": 0,
    "constant-brc": 1,
    "constant-urc": 2,
    "logarithmic-brc": 3,
    "logarithmic-urc": 4,
    "logarithmic-src-i": 5,
    "logarithmic-src": 6,
    "quadratic": 6,
}


def make_scheme(name: str, domain_size: int, **kwargs) -> RangeScheme:
    """Instantiate a scheme by its paper name.

    Extra keyword arguments (``sse_factory``, ``rng``, scheme-specific
    options such as ``intersection_policy``) pass straight through.
    """
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
    return cls(domain_size, **kwargs)
