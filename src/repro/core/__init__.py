"""The paper's primary contribution: the RSSE schemes of Table 1."""

from repro.core.caching import CachingConstantClient, CacheStats
from repro.core.constant import (
    ConstantBrc,
    ConstantScheme,
    ConstantUrc,
    DprfRangeToken,
    IntersectionGuard,
)
from repro.core.log_src import LogarithmicSrc
from repro.core.log_src_i import LogarithmicSrcI
from repro.core.logarithmic import LogarithmicBrc, LogarithmicScheme, LogarithmicUrc
from repro.core.quadratic import Quadratic
from repro.core.registry import (
    EXPERIMENT_SCHEMES,
    SCHEMES,
    SECURITY_LEVELS,
    make_scheme,
)
from repro.core.scheme import (
    MultiKeywordToken,
    QueryOutcome,
    RangeScheme,
    Record,
)
from repro.core.split import EncryptedDatabase, ServerState

__all__ = [
    "CacheStats",
    "CachingConstantClient",
    "ConstantBrc",
    "ConstantScheme",
    "ConstantUrc",
    "DprfRangeToken",
    "EXPERIMENT_SCHEMES",
    "EncryptedDatabase",
    "IntersectionGuard",
    "LogarithmicBrc",
    "LogarithmicScheme",
    "LogarithmicSrc",
    "LogarithmicSrcI",
    "LogarithmicUrc",
    "MultiKeywordToken",
    "QueryOutcome",
    "Quadratic",
    "RangeScheme",
    "Record",
    "SCHEMES",
    "ServerState",
    "SECURITY_LEVELS",
    "make_scheme",
]
