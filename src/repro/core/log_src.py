"""Logarithmic-SRC (paper Section 6.2).

A single-token scheme: tuples are replicated over the TDAG nodes
covering their value (still ``O(log m)`` keywords per tuple thanks to
the injected-node construction), and a query is answered with *one* SSE
token — the smallest TDAG node covering the range (SRC).  This hides
result partitioning and ordering entirely and gives optimal ``O(1)``
query size, at the price of false positives: the SRC subtree spans up to
``4R`` domain values (Lemma 1), and under data skew those extra values
may hold up to ``O(n)`` tuples.  That failure mode is exactly what
Logarithmic-SRC-i repairs.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.scheme import MultiKeywordToken, RangeScheme, Record
from repro.core.split import EdbSlot
from repro.covers.tdag import Tdag
from repro.crypto.prf import generate_key
from repro.sse.base import PrfKeyDeriver
from repro.sse.encoding import decode_id, encode_id


class LogarithmicSrc(RangeScheme):
    """Single Range Cover over a TDAG: O(1) tokens, FP-prone under skew."""

    name = "logarithmic-src"
    may_false_positive = True

    #: The single EDB, resident in the scheme's server role.
    _index = EdbSlot("edb")

    def __init__(self, domain_size: int, **kwargs) -> None:
        super().__init__(domain_size, **kwargs)
        self.tdag = Tdag(domain_size)
        self._master_key = generate_key(self._rng)
        self._sse = self._sse_factory(PrfKeyDeriver(self._master_key))

    def _build(self, records: "list[Record]") -> None:
        multimap: dict[bytes, list[bytes]] = defaultdict(list)
        for rec in records:
            for node in self.tdag.covering_nodes(rec.value):
                multimap[node.label()].append(encode_id(rec.id))
        self._index = self._sse.build_index(multimap)

    def trapdoor(self, lo: int, hi: int) -> MultiKeywordToken:
        lo, hi = self.check_range(lo, hi)
        node = self.tdag.src_cover(lo, hi)
        return MultiKeywordToken([self._sse.trapdoor(node.label())])

    def search(self, token: MultiKeywordToken) -> "list[int]":
        self._require_built()
        groups = self._engine_sse_groups(self._index, token, self._sse)
        return [decode_id(p) for group in groups for p in group]

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._index.serialized_size()
