"""Constant-BRC and Constant-URC (paper Section 5).

Each tuple carries a *single* keyword — its raw attribute value — so the
index is only ``O(n)``.  The trick that keeps query size at ``O(log R)``
instead of ``O(R)`` is the Delegatable PRF: per-keyword SSE tokens are
derived from DPRF leaf values, and a range query ships only the
``O(log R)`` GGM seeds covering the range (BRC or URC).  The server
expands the seeds into the ``R`` leaf values, publicly re-derives each
keyword token, and runs ordinary SSE searches — ``O(R + r)`` total.

Security caveat implemented faithfully: the DPRF simulation argument
breaks for adaptively chosen *intersecting* ranges, so the client keeps
a query history and refuses intersections (paper: "this constraint can
be enforced at the application level").  Pass
``intersection_policy="allow"`` to lift the guard for benchmarking, as
the paper's own experiments do.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.scheme import RangeScheme, Record
from repro.core.split import EdbSlot
from repro.crypto.dprf import COVER_BRC, COVER_URC, DelegationToken, GgmDprf
from repro.errors import QueryIntersectionError
from repro.sse.base import CallbackKeyDeriver
from repro.sse.encoding import decode_id, encode_id


@dataclass
class DprfRangeToken:
    """Trapdoor of the Constant schemes: permuted GGM delegation tokens."""

    tokens: "list[DelegationToken]"

    #: Wire search kind understood by the protocol server.
    wire_kind = "dprf"

    def serialized_size(self) -> int:
        return sum(t.serialized_size() for t in self.tokens)

    def wire_tokens(self) -> "list[bytes]":
        """Opaque per-seed wire encodings (seed ‖ level)."""
        return [t.seed + bytes([t.level]) for t in self.tokens]

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self):
        return iter(self.tokens)


class IntersectionGuard:
    """Client-side history enforcing the non-intersecting-query constraint."""

    def __init__(self, policy: str = "raise") -> None:
        if policy not in ("raise", "allow"):
            raise ValueError(f"policy must be 'raise' or 'allow', got {policy!r}")
        self.policy = policy
        self._history: list[tuple[int, int]] = []

    def admit(self, lo: int, hi: int) -> None:
        """Record a query, raising if it intersects an earlier one."""
        if self.policy == "raise":
            for qlo, qhi in self._history:
                if lo <= qhi and qlo <= hi:
                    raise QueryIntersectionError(
                        f"range [{lo}, {hi}] intersects earlier query "
                        f"[{qlo}, {qhi}]; Constant schemes forbid this"
                    )
        self._history.append((lo, hi))

    def reset(self) -> None:
        """Forget the history (e.g. after rebuilding with fresh keys)."""
        self._history.clear()


class ConstantScheme(RangeScheme):
    """Shared machinery of Constant-BRC/URC; ``cover`` picks the variant."""

    may_false_positive = False
    cover = COVER_BRC

    #: The single EDB, resident in the scheme's server role.
    _index = EdbSlot("edb")

    def __init__(self, domain_size: int, *, intersection_policy: str = "raise", **kwargs) -> None:
        super().__init__(domain_size, **kwargs)
        self._dprf = GgmDprf(domain_size)
        self._dprf_key = GgmDprf.generate_key(self._rng)
        # BuildIndex encrypts postings under DPRF-derived keyword tokens so
        # that delegated seeds unlock them at search time.
        deriver = CallbackKeyDeriver(
            lambda keyword: self._dprf.evaluate(
                self._dprf_key, int.from_bytes(keyword, "big")
            )
        )
        self._sse = self._sse_factory(deriver)
        self.guard = IntersectionGuard(intersection_policy)

    def _keyword(self, value: int) -> bytes:
        # Constant schemes key the SSE by the raw value's bit string; the
        # DPRF-evaluating deriver decodes it back.
        return value.to_bytes(8, "big")

    def _build(self, records: "list[Record]") -> None:
        multimap: dict[bytes, list[bytes]] = defaultdict(list)
        for rec in records:
            multimap[self._keyword(rec.value)].append(encode_id(rec.id))
        self._index = self._sse.build_index(multimap)

    def trapdoor(self, lo: int, hi: int) -> DprfRangeToken:
        lo, hi = self.check_range(lo, hi)
        self.guard.admit(lo, hi)
        tokens = self._dprf.delegate(
            self._dprf_key, lo, hi, cover=self.cover, shuffle_rng=self._rng
        )
        return DprfRangeToken(tokens)

    def search(self, token: DprfRangeToken) -> "list[int]":
        self._require_built()
        # The exec engine expands the GGM seeds (cache-memoized, shared
        # prefix walk) and runs every derived leaf walker through
        # coalesced get_many probe rounds — O(log) storage round-trips
        # for the whole range instead of one lane per leaf.
        groups = self._engine_dprf_groups(self._index, token, sse=self._sse)
        return [decode_id(p) for group in groups for p in group]

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._index.serialized_size()


class ConstantBrc(ConstantScheme):
    """Constant-BRC: minimal dyadic delegation (security level 1)."""

    name = "constant-brc"
    cover = COVER_BRC


class ConstantUrc(ConstantScheme):
    """Constant-URC: position-independent delegation (security level 2)."""

    name = "constant-urc"
    cover = COVER_URC
