"""Quadratic — the naive baseline RSSE scheme (paper Section 4).

Every one of the ``O(m²)`` possible subranges of the domain gets its own
keyword; each tuple is replicated into every subrange containing its
value.  A query maps to exactly one keyword, so the trapdoor is a single
token, the search is ``O(r)``, and the only leakage beyond the black-box
SSE's is (n, m) — the highest security level in the framework.  The
price is the prohibitive ``O(n·m²)`` index, which is why the scheme
exists purely to convey the framework (and why the paper excludes it
from the experiments).

We guard construction behind a domain-size ceiling so nobody melts their
machine by accident; the ceiling is configurable for tests.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.scheme import MultiKeywordToken, RangeScheme, Record
from repro.core.split import EdbSlot
from repro.errors import DomainError
from repro.sse.base import PrfKeyDeriver
from repro.sse.encoding import decode_id, encode_id, range_keyword
from repro.crypto.prf import generate_key

#: Default largest domain Quadratic will agree to index (m² keywords!).
DEFAULT_MAX_DOMAIN = 256


#: Dummy-id sentinel space for padding entries (top of the 64-bit range,
#: far above any id the validation layer admits).
_PAD_BASE = (1 << 64) - 1


class Quadratic(RangeScheme):
    """All-subranges scheme: O(1) query size, O(n·m²) storage.

    ``padded=True`` additionally applies the paper's padding
    countermeasure: every subrange's posting list is filled with dummy
    entries up to the maximum possible length n, so the index size is a
    function of (n, m) alone and discloses nothing about the value
    distribution (the L1 leakage drops to exactly ⟨n, m⟩).  Dummies are
    filtered at refinement time like any false positive.
    """

    name = "quadratic"

    #: The single EDB, resident in the scheme's server role.
    _index = EdbSlot("edb")

    def __init__(
        self,
        domain_size: int,
        *,
        max_domain: int = DEFAULT_MAX_DOMAIN,
        padded: bool = False,
        **kwargs,
    ) -> None:
        if domain_size > max_domain:
            raise DomainError(
                f"Quadratic over m={domain_size} needs O(m^2)={domain_size ** 2} "
                f"keywords; refusing above max_domain={max_domain}"
            )
        super().__init__(domain_size, **kwargs)
        self.padded = padded
        self._master_key = generate_key(self._rng)
        self._sse = self._sse_factory(PrfKeyDeriver(self._master_key))

    def _build(self, records: "list[Record]") -> None:
        multimap: dict[bytes, list[bytes]] = defaultdict(list)
        for rec in records:
            for lo in range(0, rec.value + 1):
                for hi in range(rec.value, self.domain_size):
                    multimap[range_keyword(lo, hi)].append(encode_id(rec.id))
        if self.padded:
            n = len(records)
            max_dummies = n * self.domain_size * (self.domain_size + 1) // 2
            self._dummy_floor = _PAD_BASE - max_dummies
            if records and max(rec.id for rec in records) >= self._dummy_floor:
                raise DomainError(
                    "padded Quadratic reserves the top of the id space for "
                    "padding entries; use smaller record ids"
                )
            dummy = 0
            for lo in range(self.domain_size):
                for hi in range(lo, self.domain_size):
                    postings = multimap[range_keyword(lo, hi)]
                    while len(postings) < n:
                        postings.append(encode_id(_PAD_BASE - dummy))
                        dummy += 1
        self._index = self._sse.build_index(multimap)

    def fetchable_ids(self, ids):
        """Client refinement; in padded mode, silently drops the dummy ids
        (only the owner can tell them apart — the server cannot)."""
        if self.padded:
            return [i for i in ids if i < self._dummy_floor]
        return list(ids)

    def trapdoor(self, lo: int, hi: int) -> MultiKeywordToken:
        lo, hi = self.check_range(lo, hi)
        return MultiKeywordToken([self._sse.trapdoor(range_keyword(lo, hi))])

    def search(self, token: MultiKeywordToken) -> "list[int]":
        self._require_built()
        groups = self._engine_sse_groups(self._index, token, self._sse)
        return [decode_id(p) for group in groups for p in group]

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._index.serialized_size()
