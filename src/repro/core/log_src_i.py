"""Logarithmic-SRC-i — the interactive double-index scheme (Section 6.3).

Logarithmic-SRC's weakness is skew: one heavy domain value adjacent to a
query can drag ``O(n)`` false positives into the single-cover subtree.
SRC-i fixes this with two indexes and one extra round:

``I1`` (TDAG1 over the *domain*) indexes, per distinct domain value, a
constant-size document ``(value, [pos_lo, pos_hi])`` recording where the
value's tuples sit in the sorted-by-value order.  ``I2`` (TDAG2 over the
*tuple positions*) indexes the tuples themselves.

A query first SRC-searches I1, the owner decrypts the returned pairs,
keeps those whose value is in range, merges their (contiguous) position
ranges into a single position interval, and SRC-searches I2 with it.
False positives are now bounded by the two covers' slack: ``O(R + r)``
regardless of skew.

Leakage nuance reproduced here: I1's size reveals the number of distinct
domain values, and an I1 answer reveals the number of distinct values in
the (covered superset of the) result — slightly more than SRC leaks,
which is the paper's stated trade-off.
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro.core.scheme import MultiKeywordToken, QueryOutcome, RangeScheme, Record
from repro.core.split import EdbSlot
from repro.covers.tdag import Tdag
from repro.crypto.prf import generate_key
from repro.errors import IndexStateError
from repro.sse.base import PrfKeyDeriver
from repro.sse.encoding import TRIPLE_LEN, decode_id, decode_triple, encode_id, encode_triple


class LogarithmicSrcI(RangeScheme):
    """Interactive SRC over a domain TDAG plus a position TDAG."""

    name = "logarithmic-src-i"
    may_false_positive = True
    interactive = True

    #: The two EDBs (domain-side I1, position-side I2) in the server role.
    _index1 = EdbSlot("edb1")
    _index2 = EdbSlot("edb2")

    def __init__(self, domain_size: int, **kwargs) -> None:
        super().__init__(domain_size, **kwargs)
        self.tdag1 = Tdag(domain_size)
        self.tdag2: "Tdag | None" = None  # built once n is known
        self._key1 = generate_key(self._rng)
        self._key2 = generate_key(self._rng)
        self._sse1 = self._sse_factory(PrfKeyDeriver(self._key1))
        self._sse2 = self._sse_factory(PrfKeyDeriver(self._key2))
        self.distinct_values = 0

    def index_names(self) -> "tuple[str, ...]":
        return ("edb1", "edb2")

    # -- BuildIndex ----------------------------------------------------------

    def _build(self, records: "list[Record]") -> None:
        # Sort by value; ties are broken by a random shuffle so positions
        # of equal-valued tuples carry no insertion-order information.
        shuffled = list(records)
        self._rng.shuffle(shuffled)
        ordered = sorted(shuffled, key=lambda rec: rec.value)

        multimap1: dict[bytes, list[bytes]] = defaultdict(list)
        runs: list[tuple[int, int, int]] = []  # (value, pos_lo, pos_hi)
        for pos, rec in enumerate(ordered):
            if runs and runs[-1][0] == rec.value:
                value, pos_lo, _ = runs[-1]
                runs[-1] = (value, pos_lo, pos)
            else:
                runs.append((rec.value, pos, pos))
        for value, pos_lo, pos_hi in runs:
            doc = encode_triple(value, pos_lo, pos_hi)
            for node in self.tdag1.covering_nodes(value):
                multimap1[node.label()].append(doc)
        self.distinct_values = len(runs)
        self._index1 = self._sse1.build_index(multimap1)

        self.tdag2 = Tdag(max(1, len(ordered)))
        multimap2: dict[bytes, list[bytes]] = defaultdict(list)
        for pos, rec in enumerate(ordered):
            for node in self.tdag2.covering_nodes(pos):
                multimap2[node.label()].append(encode_id(rec.id))
        self._index2 = self._sse2.build_index(multimap2)

    # -- the interactive protocol ---------------------------------------------

    def trapdoor_phase1(self, lo: int, hi: int) -> MultiKeywordToken:
        """Round 1 token: SRC cover of the query range on TDAG1."""
        lo, hi = self.check_range(lo, hi)
        node = self.tdag1.src_cover(lo, hi)
        return MultiKeywordToken([self._sse1.trapdoor(node.label())])

    def search_phase1(self, token: MultiKeywordToken) -> "list[tuple[int, int, int]]":
        """Round 1 server work: return the (value, pos range) documents."""
        self._require_built()
        groups = self._engine_sse_groups(self._index1, token, self._sse1)
        return [decode_triple(p) for group in groups for p in group]

    def merge_qualifying(
        self, triples: "list[tuple[int, int, int]]", lo: int, hi: int
    ) -> "tuple[int, int] | None":
        """Owner-side refinement between rounds.

        Keeps the pairs whose domain value satisfies the original query
        and merges their position ranges; values in range are contiguous
        in the sorted order, so the merge is a single interval.  Returns
        ``None`` when nothing qualifies (the protocol then stops early).
        """
        qualifying = [t for t in triples if lo <= t[0] <= hi]
        if not qualifying:
            return None
        return min(t[1] for t in qualifying), max(t[2] for t in qualifying)

    def trapdoor_phase2(self, pos_lo: int, pos_hi: int) -> MultiKeywordToken:
        """Round 2 token: SRC cover of the position interval on TDAG2."""
        if self.tdag2 is None:
            raise IndexStateError("build_index() must run before phase 2")
        node = self.tdag2.src_cover(pos_lo, pos_hi)
        return MultiKeywordToken([self._sse2.trapdoor(node.label())])

    def search_phase2(self, token: MultiKeywordToken) -> "list[int]":
        """Round 2 server work: return tuple ids under the position cover."""
        self._require_built()
        groups = self._engine_sse_groups(self._index2, token, self._sse2)
        return [decode_id(p) for group in groups for p in group]

    def query(self, lo: int, hi: int) -> QueryOutcome:
        """Two-round protocol with per-side timing attribution."""
        self._require_built()
        self._reset_exec_stats()
        trapdoor = server = refine = 0.0

        t0 = time.perf_counter()
        token1 = self.trapdoor_phase1(lo, hi)
        trapdoor += time.perf_counter() - t0

        t0 = time.perf_counter()
        triples = self.search_phase1(token1)
        server += time.perf_counter() - t0
        response_bytes = TRIPLE_LEN * len(triples)

        t0 = time.perf_counter()
        merged = self.merge_qualifying(triples, lo, hi)
        refine += time.perf_counter() - t0
        token_bytes = token1.serialized_size()

        if merged is None:
            stats = self._exec_stats
            return QueryOutcome(
                ids=frozenset(),
                raw_ids=(),
                false_positives=0,
                token_bytes=token_bytes,
                rounds=1,
                trapdoor_seconds=trapdoor,
                server_seconds=server,
                refine_seconds=refine,
                response_bytes=response_bytes,
                tokens_expanded=stats.tokens_expanded,
                probes_issued=stats.probes_issued,
                probes_coalesced=stats.probes_coalesced,
                cache_hits=stats.cache_hits,
            )

        t0 = time.perf_counter()
        token2 = self.trapdoor_phase2(*merged)
        trapdoor += time.perf_counter() - t0
        token_bytes += token2.serialized_size()

        t0 = time.perf_counter()
        raw_ids = self.search_phase2(token2)
        server += time.perf_counter() - t0

        t0 = time.perf_counter()
        blobs = self.server.fetch_tuples(raw_ids)
        matched = frozenset(
            rec.id
            for rec in (self.decrypt_record(blob) for blob in blobs)
            if lo <= rec.value <= hi
        )
        refine += time.perf_counter() - t0
        response_bytes += 8 * len(raw_ids) + sum(len(b) for b in blobs)
        stats = self._exec_stats
        return QueryOutcome(
            ids=matched,
            raw_ids=tuple(raw_ids),
            false_positives=len(raw_ids) - len(matched),
            token_bytes=token_bytes,
            rounds=2,
            trapdoor_seconds=trapdoor,
            server_seconds=server,
            refine_seconds=refine,
            response_bytes=response_bytes,
            tokens_expanded=stats.tokens_expanded,
            probes_issued=stats.probes_issued,
            probes_coalesced=stats.probes_coalesced,
            cache_hits=stats.cache_hits,
        )

    # -- base-class interface -------------------------------------------------

    def trapdoor(self, lo: int, hi: int) -> MultiKeywordToken:
        """Non-interactive entry point: returns the *round-1* token only.

        Generic callers should use :meth:`query`, which runs the full
        two-round protocol.
        """
        return self.trapdoor_phase1(lo, hi)

    def search(self, token) -> "list[int]":
        raise IndexStateError(
            "Logarithmic-SRC-i is interactive; use query() or the "
            "explicit phase methods"
        )

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._index1.serialized_size() + self._index2.serialized_size()
