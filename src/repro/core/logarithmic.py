"""Logarithmic-BRC and Logarithmic-URC (paper Section 6.1).

Instead of DPRFs, these schemes pre-replicate: every tuple is associated
with the keywords of all ``O(log m)`` dyadic nodes on the root-to-leaf
path of its value.  A query is covered with BRC or URC and one ordinary
SSE token is issued per cover node — ``O(log R)`` tokens, ``O(log R + r)``
search (each token costs only its own results), ``O(n log m)`` storage,
and no false positives.

Compared to Constant-*, the structural leakage collapses from full
in-subtree id maps to just the *partitioning of the result ids into
per-subtree groups* — the leakage objects in :mod:`repro.leakage`
make this difference concrete.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.scheme import MultiKeywordToken, RangeScheme, Record
from repro.core.split import EdbSlot
from repro.covers.brc import best_range_cover
from repro.covers.dyadic import DomainTree
from repro.covers.urc import uniform_range_cover
from repro.crypto.prf import generate_key
from repro.sse.base import PrfKeyDeriver
from repro.sse.encoding import decode_id, encode_id


class LogarithmicScheme(RangeScheme):
    """Shared machinery of Logarithmic-BRC/URC; subclasses pick the cover."""

    may_false_positive = False

    #: The single EDB, resident in the scheme's server role.
    _index = EdbSlot("edb")

    def __init__(self, domain_size: int, **kwargs) -> None:
        super().__init__(domain_size, **kwargs)
        self.tree = DomainTree(domain_size)
        self._master_key = generate_key(self._rng)
        self._sse = self._sse_factory(PrfKeyDeriver(self._master_key))

    def _cover(self, lo: int, hi: int):
        raise NotImplementedError

    def _build(self, records: "list[Record]") -> None:
        multimap: dict[bytes, list[bytes]] = defaultdict(list)
        for rec in records:
            for node in self.tree.path_nodes(rec.value):
                multimap[node.label()].append(encode_id(rec.id))
        self._index = self._sse.build_index(multimap)

    def trapdoor(self, lo: int, hi: int) -> MultiKeywordToken:
        lo, hi = self.check_range(lo, hi)
        tokens = [self._sse.trapdoor(node.label()) for node in self._cover(lo, hi)]
        # The trapdoor is randomly permuted: token order must not reveal
        # the left-to-right order of the covering subtrees.
        self._rng.shuffle(tokens)
        return MultiKeywordToken(tokens)

    def search(self, token: MultiKeywordToken) -> "list[int]":
        self._require_built()
        # One engine run for the whole trapdoor: every cover token's
        # counter walk shares coalesced get_many probe rounds.
        groups = self._engine_sse_groups(self._index, token, self._sse)
        return [decode_id(p) for group in groups for p in group]

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._index.serialized_size()

    def result_partitions(self, token: MultiKeywordToken) -> "list[list[int]]":
        """Per-subtree result groups — exactly the extra L2 leakage of
        these schemes (used by :mod:`repro.leakage.profiles`)."""
        self._require_built()
        return [
            [decode_id(p) for p in group]
            for group in self._engine_sse_groups(self._index, token, self._sse)
        ]


class LogarithmicBrc(LogarithmicScheme):
    """Logarithmic-BRC: minimal cover, security level 3."""

    name = "logarithmic-brc"

    def _cover(self, lo: int, hi: int):
        return best_range_cover(lo, hi)


class LogarithmicUrc(LogarithmicScheme):
    """Logarithmic-URC: position-independent cover, security level 4."""

    name = "logarithmic-urc"

    def _cover(self, lo: int, hi: int):
        return uniform_range_cover(lo, hi)
