"""The trust-boundary split: the server-side role as a first-class object.

The paper's model has exactly two parties.  The *owner* holds keys and
runs ``BuildIndex``/``Trpdr``/refinement; the *server* holds encrypted
indexes, encrypted tuples and encrypted payloads, and evaluates searches
from tokens alone.  :class:`EncryptedDatabase` is that server-side role:
it stores everything through a :class:`~repro.storage.StorageBackend`
and offers only key-free operations.  A :class:`~repro.core.scheme.RangeScheme`
composes one in-process (``scheme.server``); the wire-protocol
:class:`~repro.protocol.server.RsseServer` hosts one per index handle.

:class:`ServerState` is the owner→server transfer object: everything a
scheme's ``export_server_state()`` hands over (and all the owner then
*stops* holding, when detaching).  It is deliberately all-bytes so it
can cross a serialization boundary unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.crypto.dprf import DelegationToken
from repro.errors import IndexStateError, TokenError
from repro.sse.base import EncryptedIndex, KeywordToken
from repro.sse.pibas import search as pibas_search
from repro.storage.backend import InMemoryBackend, NamespaceMap, StorageBackend

#: Backend namespace prefix for named encrypted indexes.
_EDB_NS = "edb/"
#: Backend namespace for the encrypted tuple store (id -> Enc(record)).
_TUPLES_NS = "tuples"
#: Backend namespace for the encrypted payload store (id -> Enc(document)).
_PAYLOADS_NS = "payloads"
#: Backend namespace of presence markers for named indexes.
_META_NS = "edbmeta"


@dataclass
class ServerState:
    """Everything the server holds for one scheme — and nothing more.

    ``indexes`` maps index name (``"edb"``, or ``"edb1"``/``"edb2"`` for
    the double-index SRC-i) to serialized EDB bytes; ``tuples`` and
    ``payloads`` are ``(record id, ciphertext)`` pairs.  No key material
    ever appears here.
    """

    indexes: "dict[str, bytes]" = field(default_factory=dict)
    tuples: "list[tuple[int, bytes]]" = field(default_factory=list)
    payloads: "list[tuple[int, bytes]]" = field(default_factory=list)


class BackendIndex:
    """:class:`~repro.sse.base.EncryptedIndex`-compatible view over a
    backend namespace.

    SSE search algorithms only ever call ``get(label)``, so any scheme's
    (key-free) search runs unmodified against backend-resident EDBs.
    """

    def __init__(self, backend: StorageBackend, ns: str) -> None:
        self._backend = backend
        self._ns = ns

    @property
    def probe_batch(self) -> int:
        """Counter-walk batch width — the backend's call: 1 on dicts
        (a get is free, speculative labels would be pure waste), wider
        where a storage round-trip dominates (SQLite, shards)."""
        return getattr(self._backend, "probe_batch", 1)

    @property
    def thread_safe_reads(self) -> bool:
        """Whether the exec engine may read this index from pool threads."""
        return getattr(self._backend, "thread_safe_reads", True)

    def __len__(self) -> int:
        return self._backend.count(self._ns)

    def __contains__(self, label: bytes) -> bool:
        return self._backend.get(self._ns, label) is not None

    def get(self, label: bytes) -> "bytes | None":
        """Fetch one ciphertext by label (``None`` when absent)."""
        return self._backend.get(self._ns, label)

    def get_many(self, labels: "Sequence[bytes]") -> "list[bytes | None]":
        """Fetch many ciphertexts in one backend round (search hot path)."""
        return self._backend.get_many(self._ns, labels)

    def put(self, label: bytes, ciphertext: bytes) -> None:
        """Insert an entry; duplicate labels indicate a broken build."""
        if label in self:
            raise TokenError("duplicate EDB label: PRF collision or misuse")
        self._backend.put(self._ns, label, ciphertext)

    def items(self) -> "Iterable[tuple[bytes, bytes]]":
        return self._backend.items(self._ns)

    def serialized_size(self) -> int:
        """Exact byte size of the EDB contents (labels + ciphertexts)."""
        return sum(len(k) + len(v) for k, v in self._backend.items(self._ns))

    def to_bytes(self) -> bytes:
        """Serialize in the same format as :meth:`EncryptedIndex.to_bytes`."""
        return EncryptedIndex(dict(self._backend.items(self._ns))).to_bytes()


class EncryptedDatabase:
    """The untrusted server's state for one scheme: named EDBs, the
    encrypted tuple store, and the encrypted payload store.

    All operations are key-free; everything persists through the
    supplied :class:`~repro.storage.StorageBackend` (in-memory when
    omitted).  When several databases share a physical backend, wrap it
    with :class:`~repro.storage.PrefixedBackend` per database.
    """

    def __init__(
        self,
        backend: "StorageBackend | None" = None,
        *,
        executor=None,
    ) -> None:
        self.backend = backend if backend is not None else InMemoryBackend()
        self._executor = executor
        # Resolved-index memo: EdbSlot reads and per-token search entry
        # points resolve names over and over; each miss is a backend
        # presence lookup (a real round-trip on SQLite).  Views are
        # stateless (backend, namespace) pairs, so memoizing them is
        # invalidated only on put/drop — the two presence mutators.
        self._index_views: "dict[str, BackendIndex]" = {}
        #: Realized stats of the most recent engine-run search.
        self.last_exec_stats = None

    @property
    def executor(self):
        """The query engine this database searches through (lazy default)."""
        if self._executor is None:
            from repro.exec.engine import default_executor

            self._executor = default_executor()
        return self._executor

    # -- named encrypted indexes -------------------------------------------

    def put_index(self, name: str, index) -> None:
        """Store (replacing) a named EDB from any ``items()``-bearing index."""
        entries = list(index.items())
        self._index_views.pop(name, None)
        with self.backend.transaction():
            self.backend.drop(_EDB_NS + name)
            self.backend.put_many(_EDB_NS + name, entries)
            self.backend.put(_META_NS, name.encode(), b"\x01")

    def get_index(self, name: str) -> "BackendIndex | None":
        """A live view of a named EDB, or ``None`` when never stored."""
        view = self._index_views.get(name)
        if view is not None:
            return view
        if self.backend.get(_META_NS, name.encode()) is None:
            return None
        view = BackendIndex(self.backend, _EDB_NS + name)
        self._index_views[name] = view
        return view

    def drop_index(self, name: str) -> None:
        """Remove a named EDB (no-op when absent)."""
        self._index_views.pop(name, None)
        self.backend.drop(_EDB_NS + name)
        self.backend.delete(_META_NS, name.encode())

    def index_names(self) -> "list[str]":
        """Names of the EDBs currently stored."""
        return sorted(key.decode() for key in self.backend.keys(_META_NS))

    def index_size_bytes(self, name: "str | None" = None) -> int:
        """Exact EDB bytes at rest (one index, or all of them)."""
        names = [name] if name is not None else self.index_names()
        total = 0
        for n in names:
            index = self.get_index(n)
            if index is not None:
                total += index.serialized_size()
        return total

    # -- encrypted tuple & payload stores ------------------------------------

    @property
    def tuple_store(self) -> NamespaceMap:
        """Mutable id → ciphertext view of the encrypted tuple store."""
        return NamespaceMap(self.backend, _TUPLES_NS)

    @property
    def payload_store(self) -> NamespaceMap:
        """Mutable id → ciphertext view of the encrypted payload store."""
        return NamespaceMap(self.backend, _PAYLOADS_NS)

    def replace_tuples(self, entries: "Mapping[int, bytes] | Iterable[tuple[int, bytes]]") -> None:
        """Drop and repopulate the tuple store in one bulk write."""
        items = entries.items() if isinstance(entries, Mapping) else entries
        with self.backend.transaction():
            self.backend.drop(_TUPLES_NS)
            self.backend.put_many(
                _TUPLES_NS, ((NamespaceMap._key(rid), bytes(b)) for rid, b in items)
            )

    def replace_payloads(self, entries: "Mapping[int, bytes] | Iterable[tuple[int, bytes]]") -> None:
        """Drop and repopulate the payload store in one bulk write."""
        items = entries.items() if isinstance(entries, Mapping) else entries
        with self.backend.transaction():
            self.backend.drop(_PAYLOADS_NS)
            self.backend.put_many(
                _PAYLOADS_NS, ((NamespaceMap._key(rid), bytes(b)) for rid, b in items)
            )

    def put_tuples(self, entries: "Iterable[tuple[int, bytes]]") -> None:
        """Bulk upsert into the tuple store (no drop — upload/append path)."""
        self.backend.put_many(
            _TUPLES_NS, ((NamespaceMap._key(rid), bytes(b)) for rid, b in entries)
        )

    def put_payloads(self, entries: "Iterable[tuple[int, bytes]]") -> None:
        """Bulk upsert into the payload store (no drop — upload/append path)."""
        self.backend.put_many(
            _PAYLOADS_NS, ((NamespaceMap._key(rid), bytes(b)) for rid, b in entries)
        )

    def fetch_tuples(self, ids: "Sequence[int]") -> "list[bytes]":
        """Fetch encrypted tuples in request order — one bulk read.

        Unknown ids are collected and reported *all at once* — a client
        retrying after a partial failure learns the full gap, not just
        the first hole.
        """
        blobs = self.tuple_store.get_many(ids)
        missing = [rid for rid, blob in zip(ids, blobs) if blob is None]
        if missing:
            raise IndexStateError(
                f"server returned unknown record ids {sorted(set(missing))}"
            )
        return blobs

    def fetch_payloads(self, ids: "Sequence[int]") -> "list[tuple[int, bytes]]":
        """Fetch encrypted payloads (one bulk read); absent ids are skipped."""
        blobs = self.payload_store.get_many(ids)
        return [
            (rid, blob) for rid, blob in zip(ids, blobs) if blob is not None
        ]

    # -- key-free search -------------------------------------------------------

    def _require_index(self, name: str) -> BackendIndex:
        index = self.get_index(name)
        if index is None:
            raise IndexStateError(f"no encrypted index named {name!r}")
        return index

    def sse_search(self, name: str, token: KeywordToken) -> "list[bytes]":
        """Π_bas counter walk with one keyword token (the wire contract)."""
        return pibas_search(self._require_index(name), token)

    def sse_search_many(
        self, name: str, tokens: "Iterable[KeywordToken]"
    ) -> "list[bytes]":
        """Search many keyword tokens through the exec engine.

        One index resolution, then one engine run: all token walks share
        coalesced ``get_many`` probe rounds instead of paying one storage
        lane per token.  This is the batched entry the protocol server
        uses.
        """
        result = self.executor.sse_search(self._require_index(name), list(tokens))
        self.last_exec_stats = result.stats
        return result.payloads

    def dprf_search(
        self, name: str, tokens: "Iterable[DelegationToken]"
    ) -> "list[bytes]":
        """Expand GGM delegation tokens and search every derived keyword.

        Runs through the exec engine: subtree expansions are pooled and
        cache-memoized, and every derived leaf walker probes the EDB in
        shared batched rounds — ``O(log)`` storage round-trips for the
        whole token vector instead of one per leaf.
        """
        result = self.executor.dprf_search(self._require_index(name), list(tokens))
        self.last_exec_stats = result.stats
        return result.payloads

    # -- accounting & lifecycle -------------------------------------------------

    def stored_bytes(self) -> int:
        """Total bytes at rest — the honest-but-curious server's tally."""
        total = self.index_size_bytes()
        for ns in (_TUPLES_NS, _PAYLOADS_NS):
            total += sum(8 + len(v) for _, v in self.backend.items(ns))
        return total

    def clear(self) -> None:
        """Forget everything (detach: the owner keeps keys only)."""
        for name in self.index_names():
            self.drop_index(name)
        self.backend.drop(_TUPLES_NS)
        self.backend.drop(_PAYLOADS_NS)

    def export_state(self) -> ServerState:
        """Snapshot all server-side state into a transfer object."""
        return ServerState(
            indexes={
                name: self._require_index(name).to_bytes()
                for name in self.index_names()
            },
            tuples=sorted(self.tuple_store.items()),
            payloads=sorted(self.payload_store.items()),
        )

    def import_state(self, state: ServerState) -> None:
        """Load a transfer object (replacing current contents).

        The whole swap runs inside one backend transaction, so a
        durable backend commits a restored snapshot atomically.
        """
        with self.backend.transaction():
            self.clear()
            for name, blob in state.indexes.items():
                self.put_index(name, EncryptedIndex.from_bytes(blob))
            self.replace_tuples(state.tuples)
            self.replace_payloads(state.payloads)


class EdbSlot:
    """Descriptor exposing a named server-side EDB as a scheme attribute.

    Concrete schemes declare ``_index = EdbSlot("edb")`` so their build
    and search code keeps reading naturally while the EDB itself lives
    in the scheme's :class:`EncryptedDatabase` (and hence behind the
    storage backend).  Assigning ``None`` drops the index.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.server.get_index(self.name)

    def __set__(self, obj, value) -> None:
        if value is None:
            obj.server.drop_index(self.name)
        else:
            obj.server.put_index(self.name, value)
