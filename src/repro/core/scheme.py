"""The RSSE framework: problem definition as code (paper Section 3).

A Range Searchable Symmetric Encryption scheme is specified, exactly as
in the paper, by four algorithms:

- ``Setup``   → the scheme constructor (keys are sampled here);
- ``BuildIndex`` → :meth:`RangeScheme.build_index`;
- ``Trpdr``   → :meth:`RangeScheme.trapdoor`;
- ``Search``  → :meth:`RangeScheme.search` (server side).

The paper's two-party model is reflected structurally: every scheme is
the composition of an **owner role** (key material, ``build_index``,
``trapdoor``, refinement — the methods of this class) and a **server
role** (:class:`~repro.core.split.EncryptedDatabase`, held at
``scheme.server``: encrypted indexes, encrypted tuples, encrypted
payloads, key-free search).  In-process the two live in one object for
convenience; :meth:`RangeScheme.export_server_state` hands the server
role's entire state over a serialization boundary (and can *detach* it,
after which the owner holds nothing but keys), which is how the
:mod:`repro.protocol` clients outsource to a real
:class:`~repro.protocol.server.RsseServer`.

The class also centralizes the measurement hooks the evaluation needs:
exact index bytes, token wire bytes, trapdoor/server/refinement
wall-clock and response bytes.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.split import EncryptedDatabase, ServerState
from repro.crypto.prf import generate_key
from repro.exec.engine import default_executor
from repro.exec.plan import ExecStats
from repro.crypto.symmetric import SemanticCipher
from repro.errors import DomainError, IndexStateError
from repro.sse.base import KeyDeriver, SseScheme
from repro.sse.encoding import decode_record, encode_record
from repro.sse.pibas import PiBas
from repro.storage.backend import StorageBackend

#: Factory signature every scheme accepts: ``deriver -> SseScheme``.
SseFactory = Callable[[KeyDeriver], SseScheme]


@dataclass(frozen=True)
class Record:
    """One outsourced tuple: a unique identifier and its query-attribute
    value ``a`` (paper notation: the pair ``(id, a)``)."""

    id: int
    value: int


@dataclass
class QueryOutcome:
    """Everything a full query round-trip produced and cost.

    ``ids`` is the exact answer after client refinement; ``raw_ids`` is
    what the server returned (it may include false positives for the
    SRC family and PB).  Cost fields feed Figures 7 and 8:
    ``trapdoor_seconds`` and ``refine_seconds`` are owner-side work,
    ``server_seconds`` is server-side work, and ``response_bytes``
    counts the server→owner bytes (search results plus fetched
    ciphertexts).

    The trailing plan-stat fields report what the exec engine did for
    this query: delegation tokens expanded, storage probes issued, how
    many of those rode a coalesced ``get_many`` round, and expansion-
    cache hits.  They stay zero for searches that bypass the engine
    (e.g. remote outcomes, where the stats live server-side).

    The dispatch fields record how the query was *routed*:
    ``scheme_chosen`` names the scheme that actually ran it (always set
    by :class:`~repro.rangestore.RangeStore`; chosen per query by
    :class:`~repro.rangestore.HybridRangeStore`), ``plans_considered``
    holds the ``(scheme, est_cost_seconds)`` candidates the cost
    dispatcher scored, and ``est_cost_chosen`` is the winning model
    estimate — comparing it with the realized latency is how the cost
    model is audited.
    """

    ids: frozenset
    raw_ids: tuple
    false_positives: int
    token_bytes: int
    rounds: int
    trapdoor_seconds: float
    server_seconds: float
    refine_seconds: float = 0.0
    response_bytes: int = 0
    tokens_expanded: int = 0
    probes_issued: int = 0
    probes_coalesced: int = 0
    cache_hits: int = 0
    scheme_chosen: str = ""
    plans_considered: "tuple[tuple[str, float], ...]" = ()
    est_cost_chosen: float = 0.0

    @property
    def result_size(self) -> int:
        """Exact result cardinality r."""
        return len(self.ids)

    @property
    def false_positive_rate(self) -> float:
        """False positives over total returned (0 when nothing returned)."""
        total = len(self.raw_ids)
        return self.false_positives / total if total else 0.0


class RangeScheme(ABC):
    """Base class of all RSSE constructions.

    Parameters
    ----------
    domain_size:
        Size m of the query attribute domain ``{0, …, m-1}``.
    sse_factory:
        Black-box SSE constructor (default :class:`~repro.sse.pibas.PiBas`).
    rng:
        Optional seeded :class:`random.Random` driving every shuffle and
        nonce in the scheme — inject for reproducible tests; leave
        ``None`` for CSPRNG-backed production behaviour.
    backend:
        Optional :class:`~repro.storage.StorageBackend` for the scheme's
        server role (``scheme.server``).  In-memory when omitted.  Give
        every scheme its own backend (or a
        :class:`~repro.storage.PrefixedBackend` slice of a shared one).
    executor:
        Optional :class:`~repro.exec.QueryExecutor` the scheme's search
        paths run through.  The process-wide default engine
        (``REPRO_EXEC_WORKERS``/``REPRO_EXEC_CACHE``-configurable) when
        omitted.
    """

    #: Scheme name as it appears in the paper's tables/figures.
    name: str = "rsse"

    #: Whether the server's answer can contain false positives.
    may_false_positive: bool = False

    #: Whether the query protocol needs more than one owner↔server round
    #: (only Logarithmic-SRC-i, which exposes explicit phase methods).
    interactive: bool = False

    def __init__(
        self,
        domain_size: int,
        *,
        sse_factory: "SseFactory | None" = None,
        rng: "random.Random | None" = None,
        backend: "StorageBackend | None" = None,
        executor=None,
    ) -> None:
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        self.domain_size = domain_size
        self._sse_factory: SseFactory = sse_factory or PiBas
        self._rng = rng if rng is not None else random.SystemRandom()
        self._record_key = generate_key(self._rng)
        self._record_cipher = SemanticCipher(self._record_key, rng=self._rng)
        if executor is None:
            executor = default_executor()
        #: The query engine every search runs through (shared with the
        #: server role, so in-process and key-free paths behave alike).
        self.executor = executor
        #: The server-side role: EDBs + encrypted tuple/payload stores.
        self.server = EncryptedDatabase(backend, executor=executor)
        self._built = False
        self._n = 0
        self._exec_stats = ExecStats()

    # -- server-side stores (legacy attribute views) -------------------------

    @property
    def _encrypted_store(self):
        """Server-side encrypted tuple store: id -> Enc(record)."""
        return self.server.tuple_store

    @_encrypted_store.setter
    def _encrypted_store(self, entries) -> None:
        self.server.replace_tuples(entries)

    @property
    def _payload_store(self):
        """Server-side encrypted payload store: id -> Enc(document)."""
        return self.server.payload_store

    @_payload_store.setter
    def _payload_store(self, entries) -> None:
        self.server.replace_payloads(entries)

    # -- lifecycle ---------------------------------------------------------

    def build_index(
        self,
        records: Iterable[tuple],
        *,
        payloads: "Mapping[int, bytes] | None" = None,
    ) -> None:
        """``BuildIndex``: encrypt the dataset and build the secure index.

        ``records`` yields ``(id, value)`` pairs (or :class:`Record`).
        Ids must be unique; values must lie in the domain.

        ``payloads`` optionally maps ids to the *full document bytes*
        (the actual row/record the application cares about).  They are
        encrypted semantically and stored server-side, exactly like the
        paper's "actual encrypted documents … stored at the server
        separately from I"; retrieve them post-query with
        :meth:`fetch_payloads`.  Every payload id must be indexed.
        """
        normalized: list[Record] = []
        seen_ids: set[int] = set()
        for item in records:
            rec = item if isinstance(item, Record) else Record(*item)
            if not isinstance(rec.id, int) or isinstance(rec.id, bool):
                raise DomainError(f"record id must be int, got {type(rec.id).__name__}")
            if not 0 <= rec.id < 1 << 64:
                raise DomainError(f"record id {rec.id} outside unsigned 64-bit range")
            if rec.id in seen_ids:
                raise DomainError(f"duplicate record id {rec.id}")
            if not isinstance(rec.value, int) or isinstance(rec.value, bool):
                raise DomainError(
                    f"record value must be int, got {type(rec.value).__name__}"
                )
            if not 0 <= rec.value < self.domain_size:
                raise DomainError(
                    f"value {rec.value} outside domain [0, {self.domain_size - 1}]"
                )
            seen_ids.add(rec.id)
            normalized.append(rec)
        if payloads is not None:
            unknown = set(payloads) - seen_ids
            if unknown:
                raise DomainError(
                    f"payloads reference unindexed ids: {sorted(unknown)[:5]}"
                )
        # One transaction covers the tuple store, the payload store and
        # the scheme's EDB emission — a durable backend commits a build
        # with one fsync instead of one per key (and never exposes a
        # half-built index).
        with self.server.backend.transaction():
            self.server.replace_tuples(
                (rec.id, self._record_cipher.encrypt(encode_record(rec.id, rec.value)))
                for rec in normalized
            )
            if payloads is not None:
                self.server.replace_payloads(
                    (doc_id, self._record_cipher.encrypt(bytes(blob)))
                    for doc_id, blob in payloads.items()
                )
            else:
                self.server.replace_payloads(())
            self._n = len(normalized)
            self._build(normalized)
        self._built = True

    @abstractmethod
    def _build(self, records: "list[Record]") -> None:
        """Scheme-specific index construction over validated records."""

    @abstractmethod
    def trapdoor(self, lo: int, hi: int):
        """``Trpdr``: owner-side token generation for range ``[lo, hi]``."""

    @abstractmethod
    def search(self, token) -> "list[int]":
        """``Search``: server-side evaluation, returns matching ids
        (a superset of the true answer for FP-prone schemes)."""

    # -- the exec-engine seam ------------------------------------------------

    def _reset_exec_stats(self) -> None:
        """Open a fresh per-query stats window (query() calls this)."""
        self._exec_stats = ExecStats()

    def _note_exec(self, stats: ExecStats) -> None:
        """Accumulate one engine run into the current query's stats."""
        self._exec_stats.merge(stats)

    def _engine_sse_groups(self, index, tokens, sse) -> "list[list[bytes]]":
        """Run keyword tokens through the exec engine (grouped per token)."""
        result = self.executor.sse_search(
            index, list(tokens), sse=sse, scheme=self.name
        )
        self._note_exec(result.stats)
        return result.groups

    def _engine_dprf_groups(self, index, tokens, sse=None) -> "list[list[bytes]]":
        """Run delegation tokens through the exec engine."""
        result = self.executor.dprf_search(
            index, list(tokens), sse=sse, scheme=self.name
        )
        self._note_exec(result.stats)
        return result.groups

    @property
    def last_exec_stats(self) -> ExecStats:
        """Engine stats accumulated since the current query began."""
        return self._exec_stats

    def invalidate_exec_cache(self) -> None:
        """Drop memoized expansions in this scheme's engine (lifecycle
        hook — called when the index is retired or replaced)."""
        self.executor.invalidate_cache()

    # -- the trust-boundary seam ---------------------------------------------

    def index_names(self) -> "tuple[str, ...]":
        """Names of the scheme's server-side EDBs (empty: not remotable)."""
        return ("edb",)

    def export_server_state(self, *, detach: bool = False) -> ServerState:
        """Hand over everything the server should hold for this scheme.

        With ``detach=True`` the local server role is cleared afterwards
        — the owner then holds *nothing but keys* (plus public domain
        metadata), which is the paper's outsourced configuration.  The
        owner can still issue trapdoors and refine results; only
        in-process :meth:`query` becomes unavailable until a state is
        re-imported.
        """
        self._require_built()
        state = self.server.export_state()
        for name in self.index_names():
            if name not in state.indexes:
                raise IndexStateError(f"scheme built no index named {name!r}")
        if detach:
            self.server.clear()
        return state

    def import_server_state(self, state: ServerState) -> None:
        """Install server-side state exported by a matching scheme.

        Only meaningful on a scheme holding the matching key material
        (the same instance, or one restored from a key snapshot) —
        otherwise queries will simply decrypt garbage and fail.
        """
        for name in self.index_names():
            if name not in state.indexes:
                raise IndexStateError(f"server state lacks index {name!r}")
        self.server.import_state(state)
        self._n = len(state.tuples)
        self._built = True

    def decrypt_record(self, blob: bytes) -> Record:
        """Owner-side decryption of one encrypted tuple (refinement step)."""
        rid, value = decode_record(self._record_cipher.decrypt(blob))
        return Record(rid, value)

    def decrypt_payload(self, blob: bytes) -> bytes:
        """Owner-side decryption of one encrypted payload document."""
        return self._record_cipher.decrypt(blob)

    def _install_record_key(self, record_key: bytes) -> None:
        """Adopt a persisted record key (snapshot restore path)."""
        self._record_key = record_key
        self._record_cipher = SemanticCipher(record_key, rng=self._rng)

    # -- client refinement & the full protocol ------------------------------

    def fetchable_ids(self, ids: Sequence[int]) -> "list[int]":
        """Candidate ids that actually have server-side tuples.

        The identity for every scheme except padded Quadratic, whose
        dummy ids exist only inside the EDB and must be dropped before
        the tuple fetch (only the owner can tell them apart).  Remote
        clients call this between search and fetch.
        """
        return list(ids)

    def resolve(self, ids: Sequence[int]) -> "list[Record]":
        """Fetch and decrypt the tuples for ``ids`` (client refinement)."""
        return [
            self.decrypt_record(blob)
            for blob in self.server.fetch_tuples(self.fetchable_ids(ids))
        ]

    def fetch_payloads(self, ids: Sequence[int]) -> "dict[int, bytes]":
        """Fetch and decrypt the full documents for (matched) ids.

        Ids without an attached payload are simply absent from the
        result — indexing payloads is optional per tuple.
        """
        return {
            doc_id: self.decrypt_payload(blob)
            for doc_id, blob in self.server.fetch_payloads(ids)
        }

    def query(self, lo: int, hi: int) -> QueryOutcome:
        """Full round trip: trapdoor → server search → refinement.

        Non-interactive schemes run one round; Logarithmic-SRC-i
        overrides this with its two-round protocol.
        """
        self._require_built()
        self._reset_exec_stats()
        t0 = time.perf_counter()
        token = self.trapdoor(lo, hi)
        t1 = time.perf_counter()
        raw_ids = self.search(token)
        t2 = time.perf_counter()
        blobs = self.server.fetch_tuples(self.fetchable_ids(raw_ids))
        matched = frozenset(
            rec.id
            for rec in (self.decrypt_record(blob) for blob in blobs)
            if lo <= rec.value <= hi
        )
        t3 = time.perf_counter()
        stats = self._exec_stats
        return QueryOutcome(
            ids=matched,
            raw_ids=tuple(raw_ids),
            false_positives=len(raw_ids) - len(matched),
            token_bytes=self.token_size_bytes(token),
            rounds=1,
            trapdoor_seconds=t1 - t0,
            server_seconds=t2 - t1,
            refine_seconds=t3 - t2,
            response_bytes=8 * len(raw_ids) + sum(len(b) for b in blobs),
            tokens_expanded=stats.tokens_expanded,
            probes_issued=stats.probes_issued,
            probes_coalesced=stats.probes_coalesced,
            cache_hits=stats.cache_hits,
        )

    # -- measurement hooks ---------------------------------------------------

    @abstractmethod
    def index_size_bytes(self) -> int:
        """Exact serialized size of the secure index (EDB bytes only —
        the encrypted tuple store is common to all schemes and excluded,
        matching the paper's index-size metric)."""

    @staticmethod
    def token_size_bytes(token) -> int:
        """Wire size of a trapdoor, for Figure 8(a)."""
        if hasattr(token, "serialized_size"):
            return token.serialized_size()
        return sum(part.serialized_size() for part in token)

    @property
    def size(self) -> int:
        """Number of indexed records n."""
        return self._n

    def _require_built(self) -> None:
        if not self._built:
            raise IndexStateError(
                f"{type(self).__name__}: call build_index() before querying"
            )

    def check_range(self, lo: int, hi: int) -> tuple:
        """Validate a query range against the attribute domain."""
        if not 0 <= lo < self.domain_size or not 0 <= hi < self.domain_size:
            raise DomainError(
                f"range [{lo}, {hi}] outside domain [0, {self.domain_size - 1}]"
            )
        if lo > hi:
            raise DomainError(f"range lower bound {lo} exceeds upper bound {hi}")
        return lo, hi


@dataclass
class MultiKeywordToken:
    """A trapdoor consisting of one or more SSE keyword tokens.

    Used by Quadratic (always one), Logarithmic-BRC/URC (``O(log R)``,
    randomly permuted) and Logarithmic-SRC (one TDAG node token).
    """

    tokens: list = field(default_factory=list)

    #: Wire search kind understood by the protocol server.
    wire_kind = "sse"

    def serialized_size(self) -> int:
        return sum(t.serialized_size() for t in self.tokens)

    def wire_tokens(self) -> "list[bytes]":
        """Opaque per-keyword wire encodings (label_key ‖ value_key)."""
        return [t.label_key + t.value_key for t in self.tokens]

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self):
        return iter(self.tokens)
