"""The RSSE framework: problem definition as code (paper Section 3).

A Range Searchable Symmetric Encryption scheme is specified, exactly as
in the paper, by four algorithms:

- ``Setup``   → the scheme constructor (keys are sampled here);
- ``BuildIndex`` → :meth:`RangeScheme.build_index`;
- ``Trpdr``   → :meth:`RangeScheme.trapdoor`;
- ``Search``  → :meth:`RangeScheme.search` (server side).

Every concrete scheme reduces the range to keywords differently but
shares this lifecycle, the encrypted at-rest tuple store, and the final
client-side refinement step (fetch ciphertexts for returned ids, decrypt,
drop false positives) — which the paper describes as orthogonal to the
SSE search itself.

The class also centralizes the measurement hooks the evaluation needs:
exact index bytes, token wire bytes, trapdoor and server wall-clock.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.crypto.prf import generate_key
from repro.crypto.symmetric import SemanticCipher
from repro.errors import DomainError, IndexStateError
from repro.sse.base import KeyDeriver, SseScheme
from repro.sse.encoding import decode_record, encode_record
from repro.sse.pibas import PiBas

#: Factory signature every scheme accepts: ``deriver -> SseScheme``.
SseFactory = Callable[[KeyDeriver], SseScheme]


@dataclass(frozen=True)
class Record:
    """One outsourced tuple: a unique identifier and its query-attribute
    value ``a`` (paper notation: the pair ``(id, a)``)."""

    id: int
    value: int


@dataclass
class QueryOutcome:
    """Everything a full query round-trip produced and cost.

    ``ids`` is the exact answer after client refinement; ``raw_ids`` is
    what the server returned (it may include false positives for the
    SRC family and PB).  Cost fields feed Figures 7 and 8.
    """

    ids: frozenset
    raw_ids: tuple
    false_positives: int
    token_bytes: int
    rounds: int
    trapdoor_seconds: float
    server_seconds: float

    @property
    def result_size(self) -> int:
        """Exact result cardinality r."""
        return len(self.ids)

    @property
    def false_positive_rate(self) -> float:
        """False positives over total returned (0 when nothing returned)."""
        total = len(self.raw_ids)
        return self.false_positives / total if total else 0.0


class RangeScheme(ABC):
    """Base class of all RSSE constructions.

    Parameters
    ----------
    domain_size:
        Size m of the query attribute domain ``{0, …, m-1}``.
    sse_factory:
        Black-box SSE constructor (default :class:`~repro.sse.pibas.PiBas`).
    rng:
        Optional seeded :class:`random.Random` driving every shuffle and
        nonce in the scheme — inject for reproducible tests; leave
        ``None`` for CSPRNG-backed production behaviour.
    """

    #: Scheme name as it appears in the paper's tables/figures.
    name: str = "rsse"

    #: Whether the server's answer can contain false positives.
    may_false_positive: bool = False

    def __init__(
        self,
        domain_size: int,
        *,
        sse_factory: "SseFactory | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        self.domain_size = domain_size
        self._sse_factory: SseFactory = sse_factory or PiBas
        self._rng = rng if rng is not None else random.SystemRandom()
        self._record_key = generate_key(self._rng)
        self._record_cipher = SemanticCipher(self._record_key, rng=self._rng)
        #: Server-side encrypted tuple store: id -> Enc(record).
        self._encrypted_store: dict[int, bytes] = {}
        #: Server-side encrypted payload store: id -> Enc(document bytes).
        self._payload_store: dict[int, bytes] = {}
        self._built = False
        self._n = 0

    # -- lifecycle ---------------------------------------------------------

    def build_index(
        self,
        records: Iterable[tuple],
        *,
        payloads: "Mapping[int, bytes] | None" = None,
    ) -> None:
        """``BuildIndex``: encrypt the dataset and build the secure index.

        ``records`` yields ``(id, value)`` pairs (or :class:`Record`).
        Ids must be unique; values must lie in the domain.

        ``payloads`` optionally maps ids to the *full document bytes*
        (the actual row/record the application cares about).  They are
        encrypted semantically and stored server-side, exactly like the
        paper's "actual encrypted documents … stored at the server
        separately from I"; retrieve them post-query with
        :meth:`fetch_payloads`.  Every payload id must be indexed.
        """
        normalized: list[Record] = []
        seen_ids: set[int] = set()
        for item in records:
            rec = item if isinstance(item, Record) else Record(*item)
            if not isinstance(rec.id, int) or isinstance(rec.id, bool):
                raise DomainError(f"record id must be int, got {type(rec.id).__name__}")
            if not 0 <= rec.id < 1 << 64:
                raise DomainError(f"record id {rec.id} outside unsigned 64-bit range")
            if rec.id in seen_ids:
                raise DomainError(f"duplicate record id {rec.id}")
            if not isinstance(rec.value, int) or isinstance(rec.value, bool):
                raise DomainError(
                    f"record value must be int, got {type(rec.value).__name__}"
                )
            if not 0 <= rec.value < self.domain_size:
                raise DomainError(
                    f"value {rec.value} outside domain [0, {self.domain_size - 1}]"
                )
            seen_ids.add(rec.id)
            normalized.append(rec)
        self._encrypted_store = {
            rec.id: self._record_cipher.encrypt(encode_record(rec.id, rec.value))
            for rec in normalized
        }
        self._payload_store = {}
        if payloads is not None:
            unknown = set(payloads) - seen_ids
            if unknown:
                raise DomainError(
                    f"payloads reference unindexed ids: {sorted(unknown)[:5]}"
                )
            self._payload_store = {
                doc_id: self._record_cipher.encrypt(bytes(blob))
                for doc_id, blob in payloads.items()
            }
        self._n = len(normalized)
        self._build(normalized)
        self._built = True

    @abstractmethod
    def _build(self, records: "list[Record]") -> None:
        """Scheme-specific index construction over validated records."""

    @abstractmethod
    def trapdoor(self, lo: int, hi: int):
        """``Trpdr``: owner-side token generation for range ``[lo, hi]``."""

    @abstractmethod
    def search(self, token) -> "list[int]":
        """``Search``: server-side evaluation, returns matching ids
        (a superset of the true answer for FP-prone schemes)."""

    # -- client refinement & the full protocol ------------------------------

    def resolve(self, ids: Sequence[int]) -> "list[Record]":
        """Fetch and decrypt the tuples for ``ids`` (client refinement)."""
        records = []
        for doc_id in ids:
            blob = self._encrypted_store.get(doc_id)
            if blob is None:
                raise IndexStateError(f"server returned unknown id {doc_id}")
            rid, value = decode_record(self._record_cipher.decrypt(blob))
            records.append(Record(rid, value))
        return records

    def fetch_payloads(self, ids: Sequence[int]) -> "dict[int, bytes]":
        """Fetch and decrypt the full documents for (matched) ids.

        Ids without an attached payload are simply absent from the
        result — indexing payloads is optional per tuple.
        """
        out: dict[int, bytes] = {}
        for doc_id in ids:
            blob = self._payload_store.get(doc_id)
            if blob is not None:
                out[doc_id] = self._record_cipher.decrypt(blob)
        return out

    def query(self, lo: int, hi: int) -> QueryOutcome:
        """Full round trip: trapdoor → server search → refinement.

        Non-interactive schemes run one round; Logarithmic-SRC-i
        overrides this with its two-round protocol.
        """
        self._require_built()
        t0 = time.perf_counter()
        token = self.trapdoor(lo, hi)
        t1 = time.perf_counter()
        raw_ids = self.search(token)
        t2 = time.perf_counter()
        matched = frozenset(
            rec.id for rec in self.resolve(raw_ids) if lo <= rec.value <= hi
        )
        return QueryOutcome(
            ids=matched,
            raw_ids=tuple(raw_ids),
            false_positives=len(raw_ids) - len(matched),
            token_bytes=self.token_size_bytes(token),
            rounds=1,
            trapdoor_seconds=t1 - t0,
            server_seconds=t2 - t1,
        )

    # -- measurement hooks ---------------------------------------------------

    @abstractmethod
    def index_size_bytes(self) -> int:
        """Exact serialized size of the secure index (EDB bytes only —
        the encrypted tuple store is common to all schemes and excluded,
        matching the paper's index-size metric)."""

    @staticmethod
    def token_size_bytes(token) -> int:
        """Wire size of a trapdoor, for Figure 8(a)."""
        if hasattr(token, "serialized_size"):
            return token.serialized_size()
        return sum(part.serialized_size() for part in token)

    @property
    def size(self) -> int:
        """Number of indexed records n."""
        return self._n

    def _require_built(self) -> None:
        if not self._built:
            raise IndexStateError(
                f"{type(self).__name__}: call build_index() before querying"
            )

    def check_range(self, lo: int, hi: int) -> tuple:
        """Validate a query range against the attribute domain."""
        if not 0 <= lo < self.domain_size or not 0 <= hi < self.domain_size:
            raise DomainError(
                f"range [{lo}, {hi}] outside domain [0, {self.domain_size - 1}]"
            )
        if lo > hi:
            raise DomainError(f"range lower bound {lo} exceeds upper bound {hi}")
        return lo, hi


@dataclass
class MultiKeywordToken:
    """A trapdoor consisting of one or more SSE keyword tokens.

    Used by Quadratic (always one), Logarithmic-BRC/URC (``O(log R)``,
    randomly permuted) and Logarithmic-SRC (one TDAG node token).
    """

    tokens: list = field(default_factory=list)

    def serialized_size(self) -> int:
        return sum(t.serialized_size() for t in self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self):
        return iter(self.tokens)
