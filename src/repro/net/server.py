"""The concurrent network face of :class:`~repro.protocol.RsseServer`.

``RsseNetServer`` carries the existing wire protocol over TCP with the
mechanics a real service needs and an in-process transport never shows:

- **Concurrent sessions.**  One asyncio server, one lightweight
  connection handler per client; hundreds of idle connections cost a
  few kilobytes each.
- **Request pipelining.**  A client may write any number of frames
  without waiting; responses come back in request order per connection
  (the protocol has no correlation ids — FIFO *is* the contract), while
  the requests themselves may overlap in the worker pool.
- **Bounded admission.**  A global semaphore caps frames in flight;
  once full, the server simply stops reading sockets, so backpressure
  propagates to clients through the TCP window instead of through an
  unbounded task queue.
- **Off-loop execution.**  Parsing, crypto and storage all happen in
  the exec engine's offload pool (:meth:`~repro.exec.QueryExecutor.
  offload_pool`), never on the event loop — a slow SQLite scan cannot
  freeze accepts or heartbeats.
- **Write/read discipline.**  Upload and drop frames serialize through
  a per-index asyncio lock, so concurrent uploads to one handle apply
  in arrival order; searches and fetches take no lock at all.
- **Graceful drain.**  :meth:`stop` stops accepting, lets every
  admitted frame finish and flush, then closes.

Hostile input is contained per connection: a garbage or oversized
header earns one typed :class:`~repro.protocol.messages.ErrorResponse`
and a close of *that* connection; every other session is untouched.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.errors import FramingError
from repro.net.framing import HEADER_SIZE, MAX_FRAME_BYTES, FrameReader
from repro.obs.registry import MetricsRegistry, metrics_payload
from repro.protocol import messages as msg
from repro.protocol.server import RsseServer

#: Frames that mutate an index handle — these serialize per index id.
#: Update frames ride the same per-index lock as uploads: batches to
#: one managed store apply in arrival order (and their logarithmic
#: consolidation runs under the lock, off the event loop), while
#: searches — including managed-store searches — stay lock-free.
WRITE_TAGS = frozenset(
    {
        msg.TAG_UPLOAD_INDEX,
        msg.TAG_UPLOAD_RECORDS,
        msg.TAG_UPLOAD_PAYLOADS,
        msg.TAG_DROP_INDEX,
        msg.TAG_STORE_OPEN,
        msg.TAG_UPDATE_REQUEST,
        msg.TAG_UPDATE_BATCH_REQUEST,
    }
)

#: Request frames whose body leads with an 8-byte index handle — the
#: tags the per-index inflight gauge can attribute.
INDEXED_TAGS = frozenset(
    {
        msg.TAG_UPLOAD_INDEX,
        msg.TAG_UPLOAD_RECORDS,
        msg.TAG_UPLOAD_PAYLOADS,
        msg.TAG_SEARCH_REQUEST,
        msg.TAG_MULTI_SEARCH_REQUEST,
        msg.TAG_FETCH_REQUEST,
        msg.TAG_FETCH_PAYLOADS,
        msg.TAG_DROP_INDEX,
        msg.TAG_STORE_OPEN,
        msg.TAG_UPDATE_REQUEST,
        msg.TAG_UPDATE_BATCH_REQUEST,
        msg.TAG_STORE_SEARCH,
    }
)

#: Tag → operation name for the per-op latency surface.
OP_NAMES = {
    msg.TAG_UPLOAD_INDEX: "upload-index",
    msg.TAG_UPLOAD_RECORDS: "upload-records",
    msg.TAG_UPLOAD_PAYLOADS: "upload-payloads",
    msg.TAG_SEARCH_REQUEST: "search",
    msg.TAG_MULTI_SEARCH_REQUEST: "multi-search",
    msg.TAG_FETCH_REQUEST: "fetch-tuples",
    msg.TAG_FETCH_PAYLOADS: "fetch-payloads",
    msg.TAG_DROP_INDEX: "drop-index",
    msg.TAG_STATS_REQUEST: "stats",
    msg.TAG_METRICS_REQUEST: "metrics",
    msg.TAG_STORE_OPEN: "store-open",
    msg.TAG_UPDATE_REQUEST: "update",
    msg.TAG_UPDATE_BATCH_REQUEST: "update-batch",
    msg.TAG_STORE_SEARCH: "store-search",
}


@dataclass
class ServerStats:
    """Transport-level counters (the ``"net"`` half of a stats reply).

    Each instance owns a private :class:`~repro.obs.MetricsRegistry`
    (never the process-wide default), so two in-thread shard servers in
    one test process keep distinct latency distributions.  Op timings
    are double-entried on purpose: ``op_seconds`` keeps the historical
    ``[count, sum]`` list shape existing consumers read, while the
    registry histogram behind it is what turns those same samples into
    p50/p95/p99 — the mean alone was tail-blind.
    """

    connections_total: int = 0
    connections_open: int = 0
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    errors: int = 0
    framing_errors: int = 0
    inflight_peak: int = 0
    #: op name → [completed count, summed seconds].
    op_seconds: "dict[str, list]" = field(default_factory=dict)
    #: index handle → frames of that index currently being processed.
    #: The router's health view reads this to spot a handle whose
    #: queries are piling up behind a slow store.
    index_inflight: "dict[int, int]" = field(default_factory=dict)
    #: index handle → deepest inflight depth ever observed.
    index_inflight_peak: "dict[int, int]" = field(default_factory=dict)
    #: This server's private instrument registry.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def record_op(self, name: str, seconds: float) -> None:
        entry = self.op_seconds.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += seconds
        self.registry.histogram(f"op.{name}").observe(seconds)

    def enter_index(self, index_id: int) -> None:
        depth = self.index_inflight.get(index_id, 0) + 1
        self.index_inflight[index_id] = depth
        if depth > self.index_inflight_peak.get(index_id, 0):
            self.index_inflight_peak[index_id] = depth

    def leave_index(self, index_id: int) -> None:
        depth = self.index_inflight.get(index_id, 0) - 1
        if depth <= 0:
            # Idle handles leave the gauge (bounded by live handles, not
            # by every handle ever seen); the peak map keeps history.
            self.index_inflight.pop(index_id, None)
        else:
            self.index_inflight[index_id] = depth

    def to_dict(self) -> dict:
        ops = {}
        for name, (count, total) in sorted(self.op_seconds.items()):
            hist = self.registry.histogram(f"op.{name}")
            ops[name] = {
                "count": count,
                "total_seconds": total,
                "mean_seconds": (total / count) if count else 0.0,
                # Tail visibility: exact-to-a-bucket percentiles from
                # the registry histogram fed by record_op.
                "p50_seconds": hist.percentile(0.50),
                "p95_seconds": hist.percentile(0.95),
                "p99_seconds": hist.percentile(0.99),
            }
        return {
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "errors": self.errors,
            "framing_errors": self.framing_errors,
            "inflight_peak": self.inflight_peak,
            "inflight_by_index": {
                str(index_id): {
                    "current": self.index_inflight.get(index_id, 0),
                    "peak": peak,
                }
                for index_id, peak in sorted(self.index_inflight_peak.items())
            },
            "ops": ops,
        }


class RsseNetServer:
    """Asyncio TCP front for one :class:`~repro.protocol.RsseServer`.

    Parameters
    ----------
    core:
        The key-free server being exposed (constructed fresh when
        omitted — an in-memory single-process service).
    host, port:
        Listen address; port ``0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_frame_bytes:
        Per-frame ceiling enforced by the framing layer.
    max_inflight:
        Admission bound: frames being processed at once, across all
        connections.
    response_delay_s:
        Artificial delay added to every response — a benchmarking/test
        knob simulating network RTT so latency-hiding behaviour is
        measurable on loopback.  ``0.0`` (the default) for real use.
    drain_timeout_s:
        How long :meth:`stop` waits for in-flight work before closing
        connections anyway.
    ssl:
        An :class:`ssl.SSLContext` to serve TLS on the framed stream
        (``None`` — the default — serves plaintext TCP).  Framing and
        the protocol are byte-identical either way; only the transport
        under them changes.
    shard:
        Operator label naming this server's slice of a cluster (e.g.
        ``"2/4"``).  Purely observability: it rides the stats frame so
        a router's health view can title each node.
    sim_core_floor_s / sim_core_per_kb_s:
        The *simulated single-core service-time model* — a bench knob
        (``0.0``/``0.0``, i.e. off, for real use).  When set, every
        response additionally holds a server-wide lock for
        ``floor + per_kb × len(response)/1024`` seconds, modelling a
        one-core box whose CPU cost is proportional to the bytes it
        serves.  The lock is what makes it a *capacity* model rather
        than added latency: requests on one server serialize through
        it (one core!), while N shard servers own N independent locks
        — so cluster scaling is measurable on a single-core CI
        machine, the same way ``response_delay_s`` makes RTT hiding
        measurable on loopback.
    """

    def __init__(
        self,
        core: "RsseServer | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_inflight: int = 64,
        response_delay_s: float = 0.0,
        drain_timeout_s: float = 10.0,
        ssl=None,
        shard: str = "",
        sim_core_floor_s: float = 0.0,
        sim_core_per_kb_s: float = 0.0,
    ) -> None:
        self.core = core if core is not None else RsseServer()
        self._host = host
        self._requested_port = port
        self.max_frame_bytes = max_frame_bytes
        self.max_inflight = max(1, int(max_inflight))
        self.response_delay_s = response_delay_s
        self.drain_timeout_s = drain_timeout_s
        self._ssl = ssl
        self.shard = shard
        self.sim_core_floor_s = sim_core_floor_s
        self.sim_core_per_kb_s = sim_core_per_kb_s
        self._sim_core_lock: "asyncio.Lock | None" = None
        self.stats = ServerStats()
        # Point the core's updates.* instruments at this server's
        # private registry, so the ingest counters ride the same stats
        # and metrics frames as the op histograms (and two in-thread
        # shard servers never share tallies).
        if self.core.metrics_registry is None:
            self.core.metrics_registry = self.stats.registry
        self._server: "asyncio.base_events.Server | None" = None
        self._semaphore: "asyncio.Semaphore | None" = None
        #: index id → ``[asyncio.Lock, interested-writer count]``.
        self._index_locks: "dict[int, list]" = {}
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._inflight = 0
        #: Responses enqueued but not yet written (or written off as
        #: unreachable) — the second half of the graceful-drain gate.
        self._unwritten = 0
        self._idle: "asyncio.Event | None" = None
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "RsseNetServer":
        """Bind and start accepting; returns once listening."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._semaphore = asyncio.Semaphore(self.max_inflight)
        self._sim_core_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._requested_port, ssl=self._ssl
        )
        events = getattr(self.core, "events", None)
        if events is not None:
            events.emit(
                "server.start",
                host=self._host,
                port=self.port,
                **({"shard": self.shard} if self.shard else {}),
            )
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> "tuple[str, int]":
        return (self._host, self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish admitted work, close.

        Idempotent.  In-flight frames get up to ``drain_timeout_s`` to
        complete; their responses flush because closing an asyncio
        transport writes out its buffer first.
        """
        if not self._draining:
            # First stop() only — the drain event marks the transition,
            # not every re-entrant call.
            events = getattr(self.core, "events", None)
            if events is not None:
                events.emit(
                    "server.stop",
                    frames_in=self.stats.frames_in,
                    frames_out=self.stats.frames_out,
                )
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._idle is not None:
            try:
                await asyncio.wait_for(self._idle.wait(), self.drain_timeout_s)
            except asyncio.TimeoutError:
                pass  # closing anyway — the timeout is the contract
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # -- connection handling -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Request/response traffic is latency-bound; never Nagle it.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stats = self.stats
        stats.connections_total += 1
        stats.connections_open += 1
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        frames = FrameReader(self.max_frame_bytes)
        # Response order = request order: the reader enqueues one task
        # per frame, the writer coroutine awaits them FIFO.  Processing
        # still overlaps freely across (and within) connections.  The
        # queue is bounded: a client that pipelines requests but never
        # reads replies would otherwise accumulate completed response
        # frames here without limit (its processing slots are released
        # on completion, so the admission semaphore alone cannot stop
        # it).  Once full, *this* connection's reader blocks — per-peer
        # TCP backpressure, invisible to every other connection.
        responses: "asyncio.Queue[asyncio.Task | None]" = asyncio.Queue(
            maxsize=self.max_inflight
        )
        writer_task = asyncio.ensure_future(self._write_loop(writer, responses))
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                stats.bytes_in += len(data)
                complete = frames.feed(data)
                for frame in complete:
                    stats.frames_in += 1
                    await self._admit()
                    self._unwritten += 1
                    await responses.put(
                        asyncio.ensure_future(self._process(frame))
                    )
                if frames.error is not None:
                    # Valid frames before the poison got their replies
                    # queued above; now one typed framing error, then
                    # close — the stream position is unrecoverable, the
                    # server is not.
                    stats.framing_errors += 1
                    self._unwritten += 1
                    self._idle.clear()
                    await responses.put(
                        asyncio.ensure_future(
                            self._framing_reply(frames.error)
                        )
                    )
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            await responses.put(None)
            try:
                await writer_task
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writers.discard(writer)
            writer.close()
            stats.connections_open -= 1
            if task is not None:
                self._conn_tasks.discard(task)

    async def _write_loop(
        self,
        writer: asyncio.StreamWriter,
        responses: "asyncio.Queue[asyncio.Task | None]",
    ) -> None:
        stats = self.stats
        broken = False
        while True:
            item = await responses.get()
            if item is None:
                return
            response = await item
            try:
                if not broken:
                    writer.write(response)
                    await writer.drain()
                    stats.frames_out += 1
                    stats.bytes_out += len(response)
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                # Peer vanished mid-reply; drain remaining tasks without
                # writing (each still releases its admission slot).
                broken = True
            finally:
                # The drain gate waits on this, not on processing alone:
                # a response only counts as done once it reached the
                # socket (or its peer provably never will), so stop()
                # cannot close writers under replies still in flight.
                self._unwritten -= 1
                self._maybe_idle()

    async def _framing_reply(self, exc: FramingError) -> bytes:
        return msg.ErrorResponse.from_exception(exc).to_frame()

    # -- request processing --------------------------------------------------

    async def _admit(self) -> None:
        await self._semaphore.acquire()
        self._inflight += 1
        if self._inflight > self.stats.inflight_peak:
            self.stats.inflight_peak = self._inflight
        self._idle.clear()

    def _release(self) -> None:
        """Free the admission slot when *processing* completes.

        Deliberately not deferred to write time: a slow-reading client
        whose responses sit unwritten would otherwise pin admission
        slots and starve every other connection.  The write side has
        its own accounting (``_unwritten``) for the drain gate.
        """
        self._inflight -= 1
        self._maybe_idle()
        self._semaphore.release()

    def _maybe_idle(self) -> None:
        if self._inflight == 0 and self._unwritten == 0:
            self._idle.set()

    def _process_write(self, frame: bytes):
        """Serialize a mutating frame through its index's lock.

        The index id sits in the first 8 body bytes of every write
        frame.  Lock entries are refcounted as ``[lock, interested]``
        and the map entry is dropped when the last interested writer
        leaves — owners default to a fresh random handle per session,
        so an unpruned map would grow by a few entries per short-lived
        owner, forever.  The refcount (not ``Lock.locked()``, which
        reads False while a released lock's next waiter has yet to
        resume) is what makes pruning safe: an entry with a queued
        writer is never removed, so two writers to one index can never
        end up serializing on different lock objects.
        """
        index_id = int.from_bytes(frame[HEADER_SIZE : HEADER_SIZE + 8], "big")
        entry = self._index_locks.setdefault(index_id, [asyncio.Lock(), 0])
        entry[1] += 1

        async def run() -> bytes:
            try:
                async with entry[0]:
                    return await self._offload(frame)
            finally:
                entry[1] -= 1
                if entry[1] == 0 and self._index_locks.get(index_id) is entry:
                    del self._index_locks[index_id]

        return run()

    async def _process(self, frame: bytes) -> bytes:
        t0 = time.perf_counter()
        op = OP_NAMES.get(frame[0], "unknown")
        index_id: "int | None" = None
        if frame[0] in INDEXED_TAGS and len(frame) >= HEADER_SIZE + 8:
            index_id = int.from_bytes(
                frame[HEADER_SIZE : HEADER_SIZE + 8], "big"
            )
            self.stats.enter_index(index_id)
        try:
            if frame[0] == msg.TAG_STATS_REQUEST:
                response = await self._stats_response()
            elif frame[0] == msg.TAG_METRICS_REQUEST:
                response = await self._metrics_response(frame)
            elif frame[0] in WRITE_TAGS and len(frame) >= HEADER_SIZE + 8:
                response = await self._process_write(frame)
            else:
                # Reads take no lock; frames too short to carry an
                # index id fall through to the core parser's rejection.
                response = await self._offload(frame)
        except Exception as exc:  # noqa: BLE001 — a reply must always go out
            response = msg.ErrorResponse.from_exception(exc).to_frame()
        finally:
            if index_id is not None:
                self.stats.leave_index(index_id)
            self._release()
        if response[:1] == bytes([msg.TAG_ERROR]):
            self.stats.errors += 1
            self.stats.registry.counter("net.errors").inc()
        self.stats.registry.counter("net.frames").inc()
        self.stats.record_op(op, time.perf_counter() - t0)
        if self.sim_core_per_kb_s > 0 or self.sim_core_floor_s > 0:
            # The simulated-core model: hold THIS server's one "core"
            # for a service time proportional to the bytes served.
            cost = self.sim_core_floor_s + self.sim_core_per_kb_s * (
                len(response) / 1024.0
            )
            async with self._sim_core_lock:
                await asyncio.sleep(cost)
        if self.response_delay_s > 0:
            await asyncio.sleep(self.response_delay_s)
        return response

    async def _offload(self, frame: bytes) -> bytes:
        """Run one request on the exec engine's offload pool.

        ``handle_request`` is total (it always returns a frame), so the
        event loop only ever sees bytes back — never a library
        exception — and stays free while crypto and storage grind.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.core.executor.offload_pool(), self.core.handle_request, frame
        )

    async def _stats_response(self) -> bytes:
        loop = asyncio.get_running_loop()
        core_stats = await loop.run_in_executor(
            self.core.executor.offload_pool(), self.core.stats_dict
        )
        # Hint tallies ride the core dict; the transport counters are
        # the genuinely new observability this layer adds.
        net = self.stats.to_dict()
        if self.shard:
            net["shard"] = self.shard
        return msg.StatsResponse(
            {
                "server": core_stats,
                "net": net,
                # The unified registry view (same instruments the delta
                # frame serves), so one stats poll carries everything.
                "metrics": self.stats.registry.snapshot(),
            }
        ).to_frame()

    async def _metrics_response(self, frame: bytes) -> bytes:
        request = msg.MetricsRequest.from_body(frame[HEADER_SIZE:])
        loop = asyncio.get_running_loop()

        def build() -> bytes:
            payload = metrics_payload(
                self.stats.registry,
                getattr(self.core, "tracer", None),
                since=request.since,
                max_traces=request.max_traces,
                boot=request.boot,
                recorder=getattr(self.core, "flight", None),
                max_slow=request.max_slow,
            )
            if self.shard:
                payload["shard"] = self.shard
            return msg.MetricsResponse(payload).to_frame()

        return await loop.run_in_executor(
            self.core.executor.offload_pool(), build
        )


# ---------------------------------------------------------------------------
# Synchronous hosting convenience
# ---------------------------------------------------------------------------


class NetServerThread:
    """A running :class:`RsseNetServer` on a dedicated event-loop thread.

    The handle synchronous code (tests, benchmarks, the harness CLI's
    peers) uses to host a server without touching asyncio: construct
    via :func:`serve_in_thread`, read :attr:`port`, call :meth:`stop`
    (or use it as a context manager).
    """

    def __init__(self, server: RsseNetServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started: "threading.Event" = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._thread = threading.Thread(
            target=self._run, name="rsse-net-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 — reraised in the opener
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()

    @property
    def host(self) -> str:
        return self.server.address[0]

    @property
    def port(self) -> int:
        return self.server.port

    def stats(self) -> ServerStats:
        return self.server.stats

    def stop(self) -> None:
        """Gracefully drain and shut the hosting thread down."""
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def __enter__(self) -> "NetServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    core: "RsseServer | None" = None, **kwargs
) -> NetServerThread:
    """Host ``core`` over TCP on a background thread; returns the handle."""
    return NetServerThread(RsseNetServer(core, **kwargs))
