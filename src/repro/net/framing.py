"""Length-prefixed framing for protocol messages over a byte stream.

The wire format *is* the protocol frame of
:mod:`repro.protocol.messages` — a 5-byte ``(tag: u8, body_len: u32)``
header followed by the body — so nothing is re-wrapped: the bytes a
:class:`~repro.protocol.RsseServer` handles in-process are exactly the
bytes that cross the socket.  What this module adds is the *stream*
discipline TCP needs and a function call never did:

- **Incremental reassembly.**  TCP delivers arbitrary fragments; a
  :class:`FrameReader` buffers whatever arrives and yields only
  complete frames, however the kernel sliced them.
- **Hostile-header rejection.**  A peer that writes garbage desynchs
  the stream forever, so headers are validated *before* their claimed
  body is buffered: an unknown tag byte or a length above
  ``max_frame_bytes`` raises :class:`~repro.errors.FramingError`
  immediately — the reader never allocates attacker-chosen amounts of
  memory and never waits for a body that isn't coming.

Framing errors are connection-fatal (the stream position is lost) but
must never be *server*-fatal; the network server answers one typed
:class:`~repro.protocol.messages.ErrorResponse` and closes only the
offending connection.
"""

from __future__ import annotations

from repro.errors import FramingError
from repro.protocol.messages import KNOWN_TAGS, _HEADER

#: Hard ceiling on one frame's body, unless a caller raises it.  Bulk
#: uploads of realistic indexes fit comfortably; a 4 GiB length claim
#: from a hostile header does not get 4 GiB of buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The shared 5-byte ``(tag, body_len)`` header.
HEADER_SIZE = _HEADER.size


class FrameReader:
    """Incremental frame decoder for one direction of one connection.

    Feed it whatever the socket produced; it returns every frame that
    completed.  State is just the unconsumed byte tail, so partial
    reads, coalesced frames, and frame boundaries landing mid-header
    all behave identically.

    Parameters
    ----------
    max_frame_bytes:
        Reject any header claiming a larger body.
    known_tags:
        Acceptable tag bytes (default: every tag this protocol revision
        defines).  Pass ``None`` to accept any tag — then only the
        length guard applies.
    """

    def __init__(
        self,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        *,
        known_tags: "frozenset[int] | None" = KNOWN_TAGS,
    ) -> None:
        if max_frame_bytes < 1:
            raise FramingError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self.max_frame_bytes = max_frame_bytes
        self.known_tags = known_tags
        self._buffer = bytearray()
        #: The condemning :class:`~repro.errors.FramingError`, once the
        #: stream has desynched.  ``None`` while healthy.
        self.error: "FramingError | None" = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes held waiting for their frame to complete."""
        return len(self._buffer)

    def feed(self, data: bytes) -> "list[bytes]":
        """Consume a stream fragment, returning all completed frames.

        A garbage or oversized header condemns the stream: frames that
        completed *before* it in this fragment are still returned (a
        peer's valid requests deserve their replies even when its next
        byte is hostile), :attr:`error` is set, and every further feed
        raises it.  Callers check :attr:`error` after each feed and
        close the connection — the stream position past a bad header is
        unrecoverable by construction.
        """
        if self.error is not None:
            raise self.error
        self._buffer += data
        frames: "list[bytes]" = []
        buffer = self._buffer
        pos = 0
        total = len(buffer)
        while total - pos >= HEADER_SIZE:
            tag, length = _HEADER.unpack_from(buffer, pos)
            if self.known_tags is not None and tag not in self.known_tags:
                self.error = FramingError(
                    f"garbage frame header: unknown tag {tag}"
                )
                break
            if length > self.max_frame_bytes:
                self.error = FramingError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
                break
            if total - pos - HEADER_SIZE < length:
                break  # incomplete — wait for more stream
            end = pos + HEADER_SIZE + length
            frames.append(bytes(buffer[pos:end]))
            pos = end
        if pos:
            del buffer[:pos]
        return frames
