"""``NetRangeStore`` — the network-backed face of ``RangeStore``.

The managed-store frames (:class:`~repro.protocol.messages.
StoreOpenRequest` / ``UpdateRequest`` / ``UpdateBatchRequest`` /
``StoreSearchRequest``) move the whole dynamic-store lifecycle —
per-batch keys, LSM consolidation, refinement — server-side; this class
is the thin client that drives them.  It mirrors the
:class:`~repro.rangestore.RangeStore` surface (``insert`` / ``delete`` /
``insert_many`` / ``flush`` / ``search``) and works identically over a
pooled :class:`~repro.net.NetTransport` and over an in-process
:meth:`~repro.protocol.RsseServer.handle_request` — both are
``frame -> frame`` callables, which is the whole transport contract.

Usage::

    from repro.net import NetRangeStore, serve_in_thread

    with serve_in_thread() as server:
        store = NetRangeStore.connect(
            server.host, server.port, domain_size=1 << 16
        )
        store.insert(101, 2_310)
        store.insert(102, 47_000)
        outcome = store.search(2_000, 3_000)   # -> QueryOutcome
        store.close()

Writes buffer client-side and flush as one
:class:`~repro.protocol.messages.UpdateBatchRequest` before any search
(or at ``max_pending``), matching the paper's batched update model —
every flush becomes one fresh static index server-side, so op-at-a-time
flushing grows the LSM forest fastest.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterable

from repro.core.scheme import QueryOutcome
from repro.errors import InvalidRangeError
from repro.protocol import messages as msg
from repro.updates.batch import UpdateOp, delete as _delete_op, insert as _insert_op

#: ``frame -> frame`` callable: a :class:`~repro.net.NetTransport`, an
#: in-process :meth:`~repro.protocol.RsseServer.handle_request`, or any
#: test double with the same shape.
Transport = Callable[[bytes], "bytes | None"]


class NetRangeStore:
    """Client handle to a server-managed live range store.

    Parameters
    ----------
    transport:
        The ``frame -> frame`` callable requests travel through.
    domain_size:
        Attribute domain the server-side store covers.
    scheme / schemes:
        One scheme name opens a server-side
        :class:`~repro.rangestore.RangeStore`; a ``schemes`` tuple of
        two or more opens a cost-dispatched
        :class:`~repro.rangestore.HybridRangeStore`.
    index_id:
        Handle the store lives under (fresh random when omitted).
        Re-using a handle re-opens the same store — opening is
        idempotent for identical parameters.
    consolidation_step:
        The paper's ``s``: sibling indexes per hierarchical merge.
    max_pending:
        Auto-flush threshold for buffered ops (``None`` = only flush
        before a search or on explicit :meth:`flush`).
    """

    def __init__(
        self,
        transport: Transport,
        *,
        domain_size: int,
        scheme: str = "logarithmic-src-i",
        schemes: "tuple[str, ...] | list[str] | None" = None,
        index_id: "int | None" = None,
        consolidation_step: int = 4,
        max_pending: "int | None" = None,
        _owns_transport: bool = False,
    ) -> None:
        self._transport = transport
        self._owns_transport = _owns_transport
        self.domain_size = domain_size
        self.schemes = tuple(schemes) if schemes is not None else (scheme,)
        self.index_id = (
            index_id
            if index_id is not None
            else random.SystemRandom().randrange(1 << 62)
        )
        self.consolidation_step = consolidation_step
        self.max_pending = max_pending
        self._pending: "list[UpdateOp]" = []
        self._request(
            msg.StoreOpenRequest(
                self.index_id,
                domain_size,
                self.schemes,
                consolidation_step,
            )
        )

    @classmethod
    def connect(
        cls, host: str, port: int, *, transport_kwargs: "dict | None" = None, **kwargs
    ) -> "NetRangeStore":
        """Dial a server and open (or re-open) a store over TCP.

        The store owns the created transport: :meth:`close` closes it.
        ``transport_kwargs`` reach the underlying
        :class:`~repro.net.NetTransport` (``pool_size``, ``timeout_s``,
        ``ssl``, ...).
        """
        from repro.net.client import NetTransport

        transport = NetTransport(host, port, **(transport_kwargs or {}))
        try:
            return cls(transport, _owns_transport=True, **kwargs)
        except BaseException:
            transport.close()
            raise

    # -- plumbing ------------------------------------------------------------

    @property
    def transport(self):
        """The underlying transport (for stats surfaces and the like)."""
        return self._transport

    def _request(self, request):
        """One request/response round; server errors re-raise typed."""
        return msg.parse_reply(self._transport(request.to_frame()))

    # -- writes --------------------------------------------------------------

    def insert(self, record_id: int, value: int) -> None:
        """Buffer an insertion of tuple ``(record_id, value)``."""
        self._buffer(_insert_op(record_id, value))

    def delete(self, record_id: int, value: int) -> None:
        """Buffer a deletion tombstone (``value`` as originally inserted)."""
        self._buffer(_delete_op(record_id, value))

    def insert_many(self, records: "Iterable[tuple[int, int]]") -> None:
        """Buffer many insertions at once."""
        for record_id, value in records:
            self.insert(record_id, value)

    def apply_ops(self, ops: "Iterable[UpdateOp]") -> None:
        """Buffer already-materialized operations."""
        for op in ops:
            self._buffer(op)

    def _buffer(self, op: UpdateOp) -> None:
        self._pending.append(op)
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            self.flush()

    def flush(self, *, trace_id: "str | None" = None) -> None:
        """Ship buffered ops as one acked update batch.

        A single op travels as the lean :class:`~repro.protocol.
        messages.UpdateRequest`; anything more as one
        :class:`~repro.protocol.messages.UpdateBatchRequest`.  Either
        way the server applies exactly one batch (one fresh index, then
        consolidation) and answers one
        :class:`~repro.protocol.messages.OkResponse`.
        """
        if not self._pending:
            return
        ops, self._pending = self._pending, []
        try:
            if len(ops) == 1 and trace_id is None:
                self._request(msg.UpdateRequest(self.index_id, ops[0]))
            else:
                self._request(
                    msg.UpdateBatchRequest(
                        self.index_id, tuple(ops), trace_id or ""
                    )
                )
        except BaseException:
            # The batch was not acked — put it back so a retried flush
            # (e.g. after a transport reconnect) re-sends it.
            self._pending = ops + self._pending
            raise

    # -- reads ---------------------------------------------------------------

    def search(
        self, lo: int, hi: int, *, trace_id: "str | None" = None
    ) -> QueryOutcome:
        """Exact range query ``[lo, hi]`` (buffered writes flushed first).

        The returned :class:`~repro.core.scheme.QueryOutcome` carries
        the exact server-refined ids, the LSM fan-out width in
        ``rounds``, the serving lane in ``scheme_chosen``, and the
        response frame size; per-phase crypto timings stay zero — that
        work happened server-side (its latency distributions live in
        the server's ``op.store-search`` histogram).
        """
        if not 0 <= lo < 1 << 64 or not 0 <= hi < 1 << 64:
            raise InvalidRangeError(
                f"range [{lo}, {hi}] outside the unsigned 64-bit wire domain"
            )
        self.flush(trace_id=trace_id)
        request = msg.StoreSearchRequest(self.index_id, lo, hi, trace_id or "")
        t0 = time.perf_counter()
        frame = self._transport(request.to_frame())
        elapsed = time.perf_counter() - t0
        reply = msg.parse_reply(frame)
        if not isinstance(reply, msg.StoreSearchResponse):
            raise msg.errors.TokenError(
                f"expected StoreSearchResponse, got {type(reply).__name__}"
            )
        return QueryOutcome(
            ids=frozenset(reply.ids),
            raw_ids=reply.ids,
            false_positives=0,
            token_bytes=len(request.to_frame()),
            rounds=reply.rounds,
            trapdoor_seconds=0.0,
            server_seconds=elapsed,
            response_bytes=len(frame) if frame is not None else 0,
            scheme_chosen=reply.scheme,
        )

    #: Alias matching the scheme-level API.
    query = search

    # -- lifecycle & introspection -------------------------------------------

    def drop(self) -> None:
        """Retire the server-side store (frees its backend slice)."""
        self.flush()
        self._request(msg.DropIndex(self.index_id))

    def close(self) -> None:
        """Release the transport if this store created it."""
        if self._owns_transport:
            close = getattr(self._transport, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "NetRangeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def pending_ops(self) -> int:
        """Operations buffered client-side, not yet shipped."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetRangeStore(schemes={list(self.schemes)}, "
            f"m={self.domain_size}, handle={self.index_id}, "
            f"pending={self.pending_ops})"
        )
