"""The network service layer: the wire protocol over real sockets.

The split-trust model of the paper assumes an owner and an untrusted
server on *different machines*; this package is that boundary made
physical.  :class:`RsseNetServer` hosts any
:class:`~repro.protocol.RsseServer` behind a concurrent, pipelined,
backpressured TCP front; :class:`NetTransport` is the owner-side pooled
connection that plugs into :class:`~repro.protocol.RemoteRangeClient`
unchanged.  Framing is the protocol's own length-prefixed header,
stream-validated by :class:`FrameReader`.

Quickstart::

    from repro.net import NetTransport, serve_in_thread
    from repro.protocol import RemoteRangeClient, RsseServer
    from repro import make_scheme

    with serve_in_thread(RsseServer()) as server:
        transport = NetTransport("127.0.0.1", server.port)
        client = RemoteRangeClient(
            make_scheme("logarithmic-brc", 1 << 16), transport
        )
        client.outsource([(0, 1500), (1, 42000)])
        print(client.query(1000, 2000))   # frozenset({0})
        transport.close()
"""

from repro.net.client import AsyncNetTransport, NetTransport
from repro.net.framing import HEADER_SIZE, MAX_FRAME_BYTES, FrameReader
from repro.net.server import (
    NetServerThread,
    RsseNetServer,
    ServerStats,
    serve_in_thread,
)
from repro.net.store import NetRangeStore

__all__ = [
    "AsyncNetTransport",
    "FrameReader",
    "HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "NetRangeStore",
    "NetServerThread",
    "NetTransport",
    "RsseNetServer",
    "ServerStats",
    "serve_in_thread",
]
