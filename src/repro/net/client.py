"""Pooled client transport: the owner's side of the TCP seam.

``NetTransport`` is a drop-in :data:`~repro.protocol.client.Transport`
— a callable ``frame -> response frame`` — so every existing owner-side
class (:class:`~repro.protocol.RemoteRangeClient`, ``query_many``, the
harness) runs over real sockets unchanged.  Internally it is an asyncio
core on a private event-loop thread:

- **N pooled connections**, opened lazily, handed out round-robin.
- **Pipelining.**  ``send_many`` writes every frame before awaiting any
  response; the server answers in order per connection, so one wave of
  round-trips covers the whole batch (uploads during ``outsource``,
  both rounds of a query batch).
- **Reconnect with backoff.**  A dead connection is rebuilt with
  exponential backoff and the request retried on the fresh socket —
  at-least-once delivery, which the protocol tolerates (uploads are
  content-idempotent, searches and fetches are pure reads).
- **Timeouts.**  Every request is bounded; expiry raises
  :class:`~repro.errors.TransportError` rather than hanging the owner.

The sync facade exists so no caller ever touches asyncio: construct,
call, close (or use as a context manager).
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections import deque

from repro.errors import FramingError, TransportError
from repro.net.framing import MAX_FRAME_BYTES, FrameReader
from repro.protocol import messages as msg


class _PooledConnection:
    """One pipelined connection: FIFO futures matched to FIFO replies."""

    def __init__(
        self, host: str, port: int, max_frame_bytes: int, ssl=None
    ) -> None:
        self._host = host
        self._port = port
        self._max_frame_bytes = max_frame_bytes
        self._ssl = ssl
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self._read_task: "asyncio.Task | None" = None
        self._pending: "deque[asyncio.Future]" = deque()
        self._write_lock = asyncio.Lock()
        self.connected = False

    async def open(self) -> None:
        reader, writer = await asyncio.open_connection(
            self._host, self._port, ssl=self._ssl
        )
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader, self._writer = reader, writer
        self._frames = FrameReader(self._max_frame_bytes)
        self.connected = True
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    raise TransportError("server closed the connection")
                for frame in self._frames.feed(data):
                    if not self._pending:
                        raise FramingError("unsolicited response frame")
                    future = self._pending.popleft()
                    if not future.done():  # timed-out slots still pair up
                        future.set_result(frame)
                if self._frames.error is not None:
                    raise self._frames.error
        except BaseException as exc:  # noqa: BLE001 — every waiter must learn
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        self.connected = False
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(
                    exc
                    if isinstance(exc, TransportError)
                    else TransportError(f"connection failed: {exc!r}")
                )

    async def request(self, frame: bytes) -> "asyncio.Future":
        """Write one frame, returning the future of its response.

        The caller awaits the future *outside* the write lock, which is
        exactly what makes pipelining work: N calls enqueue N writes
        back-to-back, then all N futures resolve as replies stream in.
        """
        if not self.connected:
            raise TransportError("connection is closed")
        future = asyncio.get_running_loop().create_future()
        async with self._write_lock:
            # Append under the same lock as the write: the pending
            # queue's order must equal the bytes' order on the wire.
            self._pending.append(future)
            self._writer.write(frame)
            await self._writer.drain()
        return future

    async def close(self) -> None:
        self.connected = False
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._writer is not None:
            self._writer.close()
        self._fail(TransportError("transport closed"))


class AsyncNetTransport:
    """The asyncio core: pool, retry, timeout.  Runs on one loop."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 2,
        timeout_s: float = 30.0,
        retries: int = 4,
        backoff_s: float = 0.05,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        ssl=None,
    ) -> None:
        self.host = host
        self.port = port
        self.pool_size = max(1, int(pool_size))
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.max_frame_bytes = max_frame_bytes
        self.ssl = ssl
        #: Set by :meth:`close`; checked at every retry boundary so a
        #: request in flight on another thread fails fast with
        #: TransportError instead of redialing (and leaking a socket)
        #: or hanging on a loop that is about to stop.
        self.closed = False
        self._conns: "list[_PooledConnection | None]" = [None] * self.pool_size
        # One opener at a time per slot: without this, two concurrent
        # requests hitting the same dead slot would both dial, and the
        # loser's socket (plus its read task) would be overwritten in
        # the pool and leak beyond close()'s reach.
        self._slot_locks = [asyncio.Lock() for _ in range(self.pool_size)]
        self._round_robin = 0

    async def open(self) -> None:
        """Eagerly open one connection — unreachable servers fail fast."""
        await self._connection(0)

    async def _connection(self, slot: int) -> _PooledConnection:
        async with self._slot_locks[slot]:
            if self.closed:
                raise TransportError("transport is closed")
            conn = self._conns[slot]
            if conn is not None and conn.connected:
                return conn
            last_error: "BaseException | None" = None
            for attempt in range(self.retries + 1):
                if attempt:
                    # Exponential backoff between attempts, not before
                    # the first: the common case is a healthy reconnect.
                    await asyncio.sleep(self.backoff_s * (2 ** (attempt - 1)))
                if self.closed:
                    raise TransportError("transport is closed")
                conn = _PooledConnection(
                    self.host, self.port, self.max_frame_bytes, ssl=self.ssl
                )
                try:
                    await conn.open()
                except OSError as exc:
                    last_error = exc
                    continue
                self._conns[slot] = conn
                return conn
            raise TransportError(
                f"cannot connect to {self.host}:{self.port} after "
                f"{self.retries + 1} attempts: {last_error!r}"
            )

    def _next_slot(self) -> int:
        slot = self._round_robin % self.pool_size
        self._round_robin += 1
        return slot

    async def request(self, frame: bytes) -> bytes:
        """One frame, one reply — retried across reconnects."""
        last_error: "BaseException | None" = None
        for _ in range(self.retries + 1):
            if self.closed:
                raise TransportError("transport is closed")
            try:
                conn = await self._connection(self._next_slot())
                future = await conn.request(frame)
                return await asyncio.wait_for(future, self.timeout_s)
            except asyncio.TimeoutError:
                raise TransportError(
                    f"request timed out after {self.timeout_s}s"
                ) from None
            except (TransportError, OSError) as exc:
                last_error = exc  # dead socket — rebuild and resend
        raise TransportError(
            f"request failed after {self.retries + 1} attempts: {last_error!r}"
        )

    async def request_many(self, frames: "list[bytes]") -> "list[bytes]":
        """Pipeline a batch across the pool; responses in input order.

        Frames stripe round-robin over up to ``pool_size`` connections;
        each connection's share is written back-to-back (one wave of
        round-trips).  A frame whose connection died retries alone via
        :meth:`request`.
        """
        if not frames:
            return []
        futures: "list[asyncio.Future | None]" = []
        for frame in frames:
            try:
                conn = await self._connection(self._next_slot())
                futures.append(await conn.request(frame))
            except (TransportError, OSError):
                futures.append(None)  # retried below, on a fresh connection
        results: "list[bytes | None]" = [None] * len(frames)
        for position, future in enumerate(futures):
            if future is not None:
                try:
                    results[position] = await asyncio.wait_for(
                        future, self.timeout_s
                    )
                    continue
                except (asyncio.TimeoutError, TransportError, OSError):
                    pass
            results[position] = await self.request(frames[position])
        return results

    async def close(self) -> None:
        # Flag first: concurrent requests observing it at their next
        # retry boundary abort instead of redialing into a wiped pool.
        self.closed = True
        for conn in self._conns:
            if conn is not None:
                await conn.close()
        self._conns = [None] * self.pool_size


class NetTransport:
    """Synchronous facade: a plain ``frame -> frame`` callable.

    Owns a daemon event-loop thread running an
    :class:`AsyncNetTransport`; every public method is an ordinary
    blocking call, so schemes, stores and the harness need zero asyncio
    knowledge.  Thread-safe: any thread may call it, the loop thread
    serializes socket access.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pool_size: int = 2,
        timeout_s: float = 30.0,
        retries: int = 4,
        backoff_s: float = 0.05,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        ssl=None,
    ) -> None:
        self._async = AsyncNetTransport(
            host,
            port,
            pool_size=pool_size,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            max_frame_bytes=max_frame_bytes,
            ssl=ssl,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._spin, name="rsse-net-client", daemon=True
        )
        self._thread.start()
        self._closed = False
        #: Cross-thread futures of calls still in flight — close()
        #: must resolve every one before the loop dies, or their
        #: waiting threads would block forever.
        self._pending: "set" = set()
        try:
            self._call(self._async.open())  # fail fast on a dead address
        except BaseException:
            self.close()
            raise

    def _spin(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coro):
        if self._closed:
            coro.close()  # un-awaited coroutine: silence the warning
            raise TransportError("transport is closed")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        self._pending.add(future)
        try:
            return future.result()
        finally:
            self._pending.discard(future)

    # -- the Transport contract ---------------------------------------------

    def __call__(self, frame: bytes) -> bytes:
        return self._call(self._async.request(frame))

    def send_many(self, frames: "list[bytes]") -> "list[bytes]":
        """Pipelined batch send; responses in input order."""
        return self._call(self._async.request_many(list(frames)))

    # -- conveniences --------------------------------------------------------

    def stats(self) -> dict:
        """Fetch the server's merged stats document.

        The body is self-describing JSON returned as-is: unknown keys
        (including the ``"v"`` schema version and anything a newer
        server adds) pass through untouched, so a stats consumer built
        against an older schema keeps working.
        """
        reply = msg.parse_reply(self(msg.StatsRequest().to_frame()))
        return reply.stats

    def metrics(
        self,
        since: int = 0,
        max_traces: int = 0,
        max_slow: int = 0,
        boot: str = "",
    ) -> dict:
        """Fetch the server's metrics delta past cursor ``since``.

        The returned document's ``"seq"`` is the cursor for the next
        call; ``max_traces`` additionally pulls up to that many recent
        trace records from the server's ring buffer, and ``max_slow``
        up to that many slow-query flight-recorder captures.  Pass the
        previous payload's ``"boot"`` back in ``boot`` so a restarted
        server resets your cursor (``"cursor_reset": true``) instead of
        silently suppressing its fresh registry's updates.
        """
        reply = msg.parse_reply(
            self(msg.MetricsRequest(since, max_traces, max_slow, boot).to_frame())
        )
        return reply.payload

    def close(self) -> None:
        if self._closed:
            return
        import concurrent.futures

        self._closed = True  # new calls refused from here on
        try:
            if self._thread.is_alive():
                # Async close flags the core as closed and fails every
                # pending connection future, so in-flight requests on
                # other threads wake and abort at their next retry
                # boundary...
                asyncio.run_coroutine_threadsafe(
                    self._async.close(), self._loop
                ).result(timeout=5)
                # ...give them a moment to do so before the loop dies.
                if self._pending:
                    concurrent.futures.wait(list(self._pending), timeout=5)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
            self._loop.close()
            # Anything still unresolved can never complete now (its
            # coroutine died with the loop) — fail it so no caller
            # thread blocks forever on .result().
            for future in list(self._pending):
                if not future.done():
                    try:
                        future.set_exception(
                            TransportError("transport closed mid-request")
                        )
                    except Exception:  # noqa: BLE001 — lost the race: done
                        pass

    def __enter__(self) -> "NetTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
