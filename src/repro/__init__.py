"""repro — Practical Private Range Search Revisited (SIGMOD 2016).

A complete reproduction of the paper's Range Searchable Symmetric
Encryption (RSSE) framework: all schemes of Table 1, the PB baseline of
Li et al., the batch-update framework with forward privacy, leakage
accounting, synthetic workloads standing in for Gowalla/USPS, and a
harness regenerating every figure and table of the evaluation — grown
into a split-trust library: owner-side schemes, a key-free
:class:`~repro.core.EncryptedDatabase` server role with pluggable
storage backends, a wire protocol covering every scheme, and the
:class:`RangeStore` facade tying it all together.

Quickstart (the facade — updatable encrypted range store)::

    from repro import RangeStore

    store = RangeStore.open("logarithmic-src-i", domain_size=1 << 16)
    store.insert(0, 1500)
    store.insert(1, 42000)
    store.insert(2, 1501)
    outcome = store.search(1000, 2000)
    print(sorted(outcome.ids))  # -> [0, 2]
    store.save("checkpoint.rsse", passphrase="s3cret")

Quickstart (one static scheme, as in the paper)::

    from repro import make_scheme

    scheme = make_scheme("logarithmic-src-i", domain_size=1 << 16)
    scheme.build_index([(0, 1500), (1, 42000), (2, 1501)])
    outcome = scheme.query(1000, 2000)
    print(sorted(outcome.ids))  # -> [0, 2]

For a real client/server split, see
:class:`repro.protocol.RemoteRangeClient` (owner: keys only) and
:class:`repro.protocol.RsseServer` (server: ciphertext only), and the
storage backends in :mod:`repro.storage`.  To put that split on an
actual network, :mod:`repro.net` hosts the server over TCP
(``RsseNetServer``) and pools owner-side connections
(``NetTransport``) — same frames, real sockets.
"""

from repro.core import (
    EXPERIMENT_SCHEMES,
    SCHEMES,
    SECURITY_LEVELS,
    EncryptedDatabase,
    QueryOutcome,
    RangeScheme,
    Record,
    ServerState,
    make_scheme,
)
from repro.exec import (
    CostDispatcher,
    CostModel,
    ExpansionCache,
    QueryExecutor,
    calibrate_cost_model,
    configure_default_executor,
    default_executor,
)
from repro.rangestore import HybridRangeStore, RangeStore
from repro.storage import (
    FileBackend,
    InMemoryBackend,
    PrefixedBackend,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
)

__version__ = "1.2.0"

__all__ = [
    "CostDispatcher",
    "CostModel",
    "EXPERIMENT_SCHEMES",
    "EncryptedDatabase",
    "ExpansionCache",
    "FileBackend",
    "HybridRangeStore",
    "InMemoryBackend",
    "PrefixedBackend",
    "QueryExecutor",
    "QueryOutcome",
    "RangeScheme",
    "RangeStore",
    "Record",
    "SCHEMES",
    "SECURITY_LEVELS",
    "ServerState",
    "ShardedBackend",
    "SqliteBackend",
    "StorageBackend",
    "__version__",
    "calibrate_cost_model",
    "configure_default_executor",
    "default_executor",
    "make_scheme",
]
