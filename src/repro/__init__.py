"""repro — Practical Private Range Search Revisited (SIGMOD 2016).

A complete reproduction of the paper's Range Searchable Symmetric
Encryption (RSSE) framework: all schemes of Table 1, the PB baseline of
Li et al., the batch-update framework with forward privacy, leakage
accounting, synthetic workloads standing in for Gowalla/USPS, and a
harness regenerating every figure and table of the evaluation.

Quickstart::

    from repro import make_scheme

    scheme = make_scheme("logarithmic-src-i", domain_size=1 << 16)
    scheme.build_index([(0, 1500), (1, 42000), (2, 1501)])
    outcome = scheme.query(1000, 2000)
    print(sorted(outcome.ids))  # -> [0, 2]
"""

from repro.core import (
    EXPERIMENT_SCHEMES,
    SCHEMES,
    SECURITY_LEVELS,
    QueryOutcome,
    RangeScheme,
    Record,
    make_scheme,
)

__version__ = "1.0.0"

__all__ = [
    "EXPERIMENT_SCHEMES",
    "QueryOutcome",
    "RangeScheme",
    "Record",
    "SCHEMES",
    "SECURITY_LEVELS",
    "__version__",
    "make_scheme",
]
