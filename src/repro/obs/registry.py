"""The metrics registry: counters, gauges, bounded latency histograms.

Before this layer existed, every subsystem kept its own counters in its
own shape — ``ServerStats.op_seconds`` held ``[count, sum]`` pairs (so
tail latency was invisible), the exec cache and crypto kernel each had
a private ``stats()`` dict, and dispatcher decisions were tallied in
yet another place.  :class:`MetricsRegistry` unifies them behind one
surface:

- **Native instruments** — :class:`Counter`, :class:`Gauge` and
  :class:`LatencyHistogram` — for the things the registry *owns*
  (per-op latency distributions, dispatch decision tallies).  The
  histogram uses fixed log-spaced buckets, so p50/p95/p99 are exact to
  within one bucket's width (±~9%) at a hard memory bound of ~100 ints
  per histogram, no matter how many observations arrive.
- **Collectors** — registered callables snapshotting the *existing*
  subsystem stats (exec-cache hits/misses/evictions, kernel
  batches/offload ratio, ``dispatch_hints``) so the registry's
  snapshot is the one place an operator reads, without any
  double-bookkeeping in the hot paths that already count.

Snapshots are versioned JSON-ready dicts (``{"v": 1, "seq": ...}``)
served through the existing ``StatsRequest`` frame; *deltas* — only
the instruments touched since a client-supplied cursor — ride the
``MetricsRequest`` frame, so a polling monitor pays for what changed,
not for the world.

Disabling: ``REPRO_OBS=0`` (or ``MetricsRegistry(enabled=False)``)
swaps every instrument for a shared no-op, so the instrumented hot
path costs a dict hit and a no-op call — the ≤1.05× overhead gate in
``benchmarks/bench_observability.py`` pins the enabled path against
exactly this disabled baseline.

Thread safety: every instrument takes its own tiny lock; the registry
itself locks only instrument *creation*, never observation.
"""

from __future__ import annotations

import itertools
import math
import os
import threading

#: Environment switch: ``REPRO_OBS=0`` disables every instrument.
ENV_OBS = "REPRO_OBS"

#: Current snapshot schema version (the ``"v"`` field).
SCHEMA_VERSION = 1


def obs_enabled() -> bool:
    """Whether observability instruments default to enabled."""
    return os.environ.get(ENV_OBS, "").strip().lower() not in ("0", "false", "off")


#: One shared monotonic sequence for *every* registry in the process —
#: a cursor from one server's delta can never alias another's updates.
_SEQ = itertools.count(1)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class Counter:
    """Monotonic counter (frames served, decisions made, ...)."""

    __slots__ = ("name", "_value", "_seq", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._seq = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n
            self._seq = next(_SEQ)

    @property
    def value(self) -> int:
        return self._value

    def last_seq(self) -> int:
        return self._seq

    def to_value(self):
        return self._value


class Gauge:
    """Point-in-time value: either set explicitly or pulled from ``fn``."""

    __slots__ = ("name", "_value", "_fn", "_seq", "_lock")

    def __init__(self, name: str, fn=None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn
        self._seq = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._seq = next(_SEQ)

    @property
    def value(self):
        if self._fn is not None:
            try:
                return self._fn()
            except Exception:  # noqa: BLE001 — a gauge probe must never raise
                return None
        return self._value

    def last_seq(self) -> int:
        # Pull gauges have no update events; they are always "fresh".
        return next(_SEQ) if self._fn is not None else self._seq

    def to_value(self):
        return self.value


def _default_bounds() -> "tuple[float, ...]":
    """Log-spaced latency bucket boundaries: 1µs → ~537s, ×√2 per step.

    58 buckets (plus the two open ends) — fixed, so a histogram's
    memory never grows with traffic, and fine enough that a reported
    percentile is within one ×1.19 step of the true order statistic.
    """
    factor = math.sqrt(2.0)
    bounds = []
    bound = 1e-6
    while bound < 600.0:
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


_LATENCY_BOUNDS = _default_bounds()

#: Public alias: the default latency bucket bounds, shared by every
#: histogram and by the SLO evaluator (which diffs raw bucket counts).
LATENCY_BOUNDS = _LATENCY_BOUNDS


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact-to-a-bucket percentiles.

    ``observe(seconds)`` costs one bisect + three adds under a lock.
    Percentiles walk the cumulative counts and report the geometric
    midpoint of the bucket holding the requested order statistic,
    clamped into ``[min, max]`` — bounded memory, bounded error,
    regardless of observation count.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max",
                 "_seq", "_lock")

    def __init__(self, name: str, bounds: "tuple[float, ...] | None" = None) -> None:
        self.name = name
        self.bounds = bounds if bounds is not None else _LATENCY_BOUNDS
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0
        self._seq = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        from bisect import bisect_right

        bucket = bisect_right(self.bounds, seconds)
        with self._lock:
            self._counts[bucket] += 1
            self._count += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds
            self._seq = next(_SEQ)

    def _bucket_mid(self, bucket: int) -> float:
        if bucket <= 0:
            return self.bounds[0] / 2.0
        if bucket >= len(self.bounds):
            return self.bounds[-1]
        lo, hi = self.bounds[bucket - 1], self.bounds[bucket]
        return math.sqrt(lo * hi)  # geometric midpoint of a log bucket

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``), 0.0 when empty."""
        with self._lock:
            if not self._count:
                return 0.0
            rank = max(1, math.ceil(q * self._count))
            seen = 0
            for bucket, n in enumerate(self._counts):
                seen += n
                if seen >= rank:
                    mid = self._bucket_mid(bucket)
                    return min(max(mid, self._min), self._max)
            return self._max  # unreachable: counts sum to _count

    @property
    def count(self) -> int:
        return self._count

    def last_seq(self) -> int:
        return self._seq

    def to_value(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            minimum = self._min if self._count else 0.0
            maximum = self._max
            buckets = list(self._counts)
        return {
            "count": count,
            "sum_seconds": total,
            "mean_seconds": (total / count) if count else 0.0,
            "min_seconds": minimum,
            "max_seconds": maximum,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "p99_seconds": self.percentile(0.99),
            # Raw cumulative bucket counts (aligned to LATENCY_BOUNDS):
            # what the SLO evaluator diffs to count bad observations in
            # a window without storing per-observation data.
            "buckets": buckets,
        }


class _NullInstrument:
    """Shared no-op standing in for every instrument when disabled."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, seconds: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def last_seq(self) -> int:
        return 0

    def to_value(self):
        return 0


NULL_INSTRUMENT = _NullInstrument()


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """One process- (or server-) wide home for every instrument.

    Instruments are created on first reference and shared thereafter
    (``registry.counter("x")`` is idempotent).  Collectors are named
    callables returning JSON-ready values, evaluated at snapshot time —
    the pull half of the unification, wrapping the subsystem stats that
    already exist (cache, kernel, dispatch tallies) without touching
    their hot paths.

    Each :class:`~repro.net.RsseNetServer` owns a private registry, so
    two in-process shards never merge their latency distributions; the
    process-wide :func:`default_registry` serves everything that is not
    a server (dispatcher decision counters, in-process harness runs).
    """

    def __init__(self, *, enabled: "bool | None" = None) -> None:
        self.enabled = obs_enabled() if enabled is None else bool(enabled)
        #: Random id minted per registry instance.  Delta cursors are only
        #: meaningful against the registry that issued them — after a server
        #: restart the process-wide ``_SEQ`` restarts too, so an old cursor
        #: would silently suppress updates.  Clients echo this id back and
        #: :func:`metrics_payload` resets mismatched cursors to a full delta.
        self.boot = os.urandom(8).hex()
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, LatencyHistogram]" = {}
        self._collectors: "dict[str, object]" = {}
        self._lock = threading.Lock()

    # -- instrument creation (idempotent) ------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str, fn=None) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, fn)
            return instrument

    def histogram(self, name: str) -> LatencyHistogram:
        if not self.enabled:
            return NULL_INSTRUMENT
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = LatencyHistogram(name)
            return instrument

    def register_collector(self, name: str, fn) -> None:
        """Attach a named pull-source merged into every snapshot."""
        if not self.enabled:
            return
        with self._lock:
            self._collectors[name] = fn

    # -- export --------------------------------------------------------------

    def _collect(self) -> dict:
        collected = {}
        for name, fn in sorted(self._collectors.items()):
            try:
                collected[name] = fn()
            except Exception as exc:  # noqa: BLE001 — snapshots must not raise
                collected[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return collected

    def snapshot(self) -> dict:
        """The full versioned export (the ``StatsResponse`` payload)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "v": SCHEMA_VERSION,
            "enabled": self.enabled,
            "seq": next(_SEQ),
            "boot": self.boot,
            "counters": {n: c.to_value() for n, c in sorted(counters.items())},
            "gauges": {n: g.to_value() for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.to_value() for n, h in sorted(histograms.items())
            },
            "collectors": self._collect(),
        }

    def delta(self, since: int = 0) -> dict:
        """Everything that moved after cursor ``since`` (a prior ``seq``).

        Counters and histograms appear only when updated past the
        cursor; gauges and collectors are point-in-time reads and are
        always included (they are cheap and have no update events).
        ``since=0`` is a full snapshot.
        """
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
        return {
            "v": SCHEMA_VERSION,
            "enabled": self.enabled,
            "seq": next(_SEQ),
            "boot": self.boot,
            "since": int(since),
            "counters": {
                n: c.to_value()
                for n, c in sorted(counters.items())
                if c.last_seq() > since
            },
            "gauges": {n: g.to_value() for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.to_value()
                for n, h in sorted(histograms.items())
                if h.last_seq() > since
            },
            "collectors": self._collect(),
        }


def metrics_payload(
    registry: MetricsRegistry,
    tracer=None,
    *,
    since: int = 0,
    max_traces: int = 0,
    boot: str = "",
    recorder=None,
    max_slow: int = 0,
) -> dict:
    """The ``MetricsResponse`` body: a delta plus optional trace records.

    One helper shared by the core server (in-process transports) and
    the network front, so both frame pairs serve the same shape.

    ``boot`` is the client's record of which registry incarnation its
    cursor came from.  A non-empty mismatch means the server restarted
    since the cursor was minted — the cursor is discarded (full delta)
    and the payload carries ``"cursor_reset": true`` so the poller can
    resynchronize instead of silently missing updates.  Slow-query
    captures from ``recorder`` ride along when ``max_slow`` asks for
    them, mirroring the ``max_traces`` opt-in.
    """
    if boot and boot != registry.boot:
        payload = registry.delta(0)
        payload["cursor_reset"] = True
    else:
        payload = registry.delta(since)
    if max_traces > 0 and tracer is not None:
        payload["traces"] = tracer.snapshot(limit=max_traces)
    else:
        payload["traces"] = []
    if max_slow > 0 and recorder is not None:
        payload["slow"] = recorder.snapshot(limit=max_slow)
    else:
        payload["slow"] = []
    return payload


# ---------------------------------------------------------------------------
# The process-wide default registry
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default: "MetricsRegistry | None" = None


def default_registry() -> MetricsRegistry:
    """The shared registry for everything that is not a server."""
    global _default
    with _default_lock:
        if _default is None:
            _default = MetricsRegistry()
        return _default


def configure_default_registry(*, enabled: "bool | None" = None) -> MetricsRegistry:
    """Replace the default registry (benchmarks toggling instrumentation).

    Instruments handed out by the old registry keep working in whoever
    cached them; only *future* ``default_registry()`` lookups see the
    replacement — the same contract as ``configure_default_executor``.
    """
    global _default
    with _default_lock:
        _default = MetricsRegistry(enabled=enabled)
        return _default
