"""Declarative SLOs evaluated from metrics deltas with burn-rate states.

An operator writes objectives as one-line strings::

    search-p99: p99(op.multi-search) < 100ms over 5m
    errors:     error_rate < 1% over 5m
    fleet:      unreachable == 0

and an :class:`SloTracker` turns a stream of registry snapshots (or
delta payloads — the same dicts the ``MetricsRequest`` frame serves)
into ``ok`` / ``warn`` / ``page`` states using the multi-window
burn-rate method: an objective *pages* only when the error budget is
burning faster than ``page_burn`` over **both** the objective's full
window and a short confirmation window (``window/6``, floor 10s), so a
single slow query cannot page but a sustained regression pages within
seconds.  It *warns* on a long-window burn ≥ ``warn_burn``.

No per-observation storage: latency objectives diff the histogram's
cumulative bucket counts between two samples, counting every
observation that landed strictly above the bucket containing the bound
as "bad" (conservative by up to one ×1.19 bucket in the objective's
favor).  Error-rate objectives diff the ``net.errors`` /
``net.frames`` counters.  Unreachable-shards objectives are fed
directly by the cluster monitor.

:class:`FleetSlos` runs one tracker per shard plus a fleet tracker,
consuming :class:`~repro.obs.ClusterMonitor` samples; the fleet-wide
rollup and rendering live in ``repro.cluster.health``.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass

from repro.obs.registry import LATENCY_BOUNDS

#: Alert states, in increasing severity.
STATE_OK = "ok"
STATE_WARN = "warn"
STATE_PAGE = "page"

#: Severity order for rollups (higher = worse).
STATE_LEVELS = {STATE_OK: 0, STATE_WARN: 1, STATE_PAGE: 2}


def worst_state(states) -> str:
    """The most severe state in ``states`` (``ok`` when empty)."""
    worst = STATE_OK
    for state in states:
        if STATE_LEVELS.get(state, 0) > STATE_LEVELS[worst]:
            worst = state
    return worst


# ---------------------------------------------------------------------------
# Objective grammar
# ---------------------------------------------------------------------------

_LATENCY_RE = re.compile(
    r"^p(?P<q>\d+(?:\.\d+)?)\((?P<metric>[\w.-]+)\)\s*<\s*"
    r"(?P<bound>\d+(?:\.\d+)?)\s*(?P<unit>us|ms|s)\s+over\s+(?P<win>\S+)$"
)
_ERROR_RE = re.compile(
    r"^error_rate\s*<\s*(?P<bound>\d+(?:\.\d+)?)\s*%\s+over\s+(?P<win>\S+)$"
)
_UNREACHABLE_RE = re.compile(r"^unreachable\s*(?:==|<=)\s*(?P<bound>\d+)$")

_WINDOW_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}
_LATENCY_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0}


def _parse_window(token: str) -> "tuple[float, float | None]":
    """``5m`` → (300, None); ``5m/30s`` → (300, 30)."""
    main, _, short = token.partition("/")

    def one(piece: str) -> float:
        match = re.fullmatch(r"(\d+(?:\.\d+)?)(ms|s|m|h)", piece)
        if match is None:
            raise ValueError(f"bad window {piece!r} (want e.g. 30s, 5m, 1h)")
        return float(match.group(1)) * _WINDOW_UNITS[match.group(2)]

    return one(main), (one(short) if short else None)


@dataclass(frozen=True)
class Objective:
    """One parsed objective; build via :func:`parse_objective`."""

    name: str
    kind: str  # "latency" | "error-rate" | "unreachable"
    metric: str  # histogram name for latency, "" otherwise
    quantile: float  # 0 < q < 1 for latency, 0.0 otherwise
    bound: float  # seconds / error fraction / shard count
    window_s: float
    short_window_s: "float | None" = None

    @property
    def short_s(self) -> float:
        """The confirmation window: explicit, else window/6, floor 10s."""
        if self.short_window_s is not None:
            return self.short_window_s
        return max(10.0, self.window_s / 6.0)


def parse_objective(text: str) -> Objective:
    """Parse ``[name:] <expr>`` into an :class:`Objective`.

    Accepted expressions::

        p99(op.multi-search) < 100ms over 5m
        p95(op.search) < 2500us over 1m/10s
        error_rate < 1% over 5m
        unreachable == 0
    """
    raw = text.strip()
    name = ""
    head, sep, rest = raw.partition(":")
    if sep and "(" not in head and "<" not in head and "=" not in head:
        name, raw = head.strip(), rest.strip()

    match = _LATENCY_RE.match(raw)
    if match is not None:
        quantile = float(match.group("q")) / 100.0
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile p{match.group('q')} out of (0, 100)")
        window_s, short_s = _parse_window(match.group("win"))
        return Objective(
            name=name or f"p{match.group('q')}-{match.group('metric')}",
            kind="latency",
            metric=match.group("metric"),
            quantile=quantile,
            bound=float(match.group("bound")) * _LATENCY_UNITS[match.group("unit")],
            window_s=window_s,
            short_window_s=short_s,
        )

    match = _ERROR_RE.match(raw)
    if match is not None:
        window_s, short_s = _parse_window(match.group("win"))
        return Objective(
            name=name or "error-rate",
            kind="error-rate",
            metric="",
            quantile=0.0,
            bound=float(match.group("bound")) / 100.0,
            window_s=window_s,
            short_window_s=short_s,
        )

    match = _UNREACHABLE_RE.match(raw)
    if match is not None:
        return Objective(
            name=name or "unreachable",
            kind="unreachable",
            metric="",
            quantile=0.0,
            bound=float(match.group("bound")),
            window_s=0.0,
        )

    raise ValueError(
        f"unparseable objective {text!r} "
        "(want 'pQQ(metric) < Nms over 5m', 'error_rate < N% over 5m', "
        "or 'unreachable == N')"
    )


# ---------------------------------------------------------------------------
# The tracker
# ---------------------------------------------------------------------------


class SloTracker:
    """Evaluate objectives from a stream of metrics payloads.

    Feed it registry snapshots or delta payloads via :meth:`observe`
    (delta payloads omit untouched instruments — the tracker carries
    the previous cumulative values forward), then :meth:`evaluate`
    returns one result dict per objective.  State transitions emit an
    ``alert`` event into ``events`` and tick ``slo.transitions``;
    current states are exported as ``slo.state.<name>`` gauges
    (0=ok, 1=warn, 2=page).

    A window with no baseline sample (tracker younger than the window)
    is evaluated against a zero baseline — i.e. all traffic since
    startup counts, a deliberate cold-start approximation that errs
    toward alerting on a bad launch rather than staying silent.
    """

    def __init__(
        self,
        objectives,
        *,
        warn_burn: float = 1.0,
        page_burn: float = 2.0,
        max_samples: int = 720,
        events=None,
        registry=None,
        clock=time.time,
    ) -> None:
        self.objectives = [
            obj if isinstance(obj, Objective) else parse_objective(obj)
            for obj in objectives
        ]
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.warn_burn = float(warn_burn)
        self.page_burn = float(page_burn)
        self.events = events
        self.registry = registry
        self._clock = clock
        self._samples: "deque[dict]" = deque(maxlen=max(2, int(max_samples)))
        self._states: "dict[str, str]" = {o.name: STATE_OK for o in self.objectives}
        self._lock = threading.Lock()
        self._hist_names = {
            o.metric for o in self.objectives if o.kind == "latency"
        }
        self._wants_errors = any(
            o.kind == "error-rate" for o in self.objectives
        )
        self._wants_unreachable = any(
            o.kind == "unreachable" for o in self.objectives
        )

    # -- ingestion -----------------------------------------------------------

    def observe(self, metrics, *, unreachable=None, at_s=None) -> None:
        """Ingest one metrics payload (snapshot or delta), timestamped."""
        now = self._clock() if at_s is None else float(at_s)
        histograms = (metrics or {}).get("histograms", {})
        counters = (metrics or {}).get("counters", {})
        with self._lock:
            prev = self._samples[-1] if self._samples else None
            sample = {
                "t": now,
                "hists": {},
                "frames": None,
                "errors": None,
                "unreachable": unreachable,
            }
            for name in self._hist_names:
                entry = histograms.get(name)
                if isinstance(entry, dict) and "buckets" in entry:
                    sample["hists"][name] = (
                        int(entry.get("count", 0)),
                        tuple(entry["buckets"]),
                    )
                elif prev is not None and name in prev["hists"]:
                    # Delta payloads omit untouched histograms — the
                    # cumulative state simply hasn't moved.
                    sample["hists"][name] = prev["hists"][name]
            if self._wants_errors:
                for key in ("frames", "errors"):
                    value = counters.get(f"net.{key}")
                    if value is None and prev is not None:
                        value = prev[key]
                    sample[key] = int(value) if value is not None else None
            if unreachable is None and prev is not None:
                sample["unreachable"] = prev["unreachable"]
            self._samples.append(sample)

    # -- evaluation ----------------------------------------------------------

    @staticmethod
    def _baseline(samples, now: float, window_s: float):
        """The newest sample at least ``window_s`` old (None if none)."""
        cutoff = now - window_s
        baseline = None
        for sample in samples:
            if sample["t"] <= cutoff:
                baseline = sample
            else:
                break
        return baseline

    @staticmethod
    def _diff_hist(current, baseline):
        """(total, per-bucket deltas) between two cumulative readings."""
        cur_count, cur_buckets = current
        if baseline is None:
            return cur_count, list(cur_buckets)
        base_count, base_buckets = baseline
        if cur_count < base_count or len(cur_buckets) != len(base_buckets):
            # Counter regression: the histogram was replaced under us
            # (restart with a stale carry-forward) — treat everything
            # current as fresh rather than report negative traffic.
            return cur_count, list(cur_buckets)
        return (
            cur_count - base_count,
            [c - b for c, b in zip(cur_buckets, base_buckets)],
        )

    @staticmethod
    def _window_quantile(deltas, total, quantile):
        """Realized quantile of the windowed distribution, 0.0 if empty."""
        if total <= 0:
            return 0.0
        rank = max(1, math.ceil(quantile * total))
        seen = 0
        for bucket, n in enumerate(deltas):
            seen += n
            if seen >= rank:
                if bucket <= 0:
                    return LATENCY_BOUNDS[0] / 2.0
                if bucket >= len(LATENCY_BOUNDS):
                    return LATENCY_BOUNDS[-1]
                lo, hi = LATENCY_BOUNDS[bucket - 1], LATENCY_BOUNDS[bucket]
                return (lo * hi) ** 0.5
        return LATENCY_BOUNDS[-1]

    def _latency_burn(self, obj, samples, now, window_s):
        """(burn rate, realized quantile, observations) over a window."""
        latest = samples[-1]["hists"].get(obj.metric)
        if latest is None:
            return 0.0, 0.0, 0
        baseline_sample = self._baseline(samples, now, window_s)
        baseline = (
            baseline_sample["hists"].get(obj.metric)
            if baseline_sample is not None
            else None
        )
        total, deltas = self._diff_hist(latest, baseline)
        if total <= 0:
            return 0.0, 0.0, 0
        # Observations strictly above the bucket containing the bound
        # are bad; the straddling bucket counts as good (conservative).
        k = bisect_right(LATENCY_BOUNDS, obj.bound)
        bad = sum(deltas[k + 1:])
        bad_fraction = bad / total
        budget = max(1e-9, 1.0 - obj.quantile)
        value = self._window_quantile(deltas, total, obj.quantile)
        return bad_fraction / budget, value, total

    def _error_burn(self, obj, samples, now, window_s):
        latest = samples[-1]
        if latest["frames"] is None or latest["errors"] is None:
            return 0.0, 0.0, 0
        baseline = self._baseline(samples, now, window_s)
        base_frames = baseline["frames"] if baseline else None
        base_errors = baseline["errors"] if baseline else None
        frames = latest["frames"] - (base_frames or 0)
        errors = latest["errors"] - (base_errors or 0)
        if frames <= 0 or errors < 0:
            return 0.0, 0.0, max(0, frames)
        rate = errors / frames
        return rate / max(1e-9, obj.bound), rate, frames

    def _eval_unreachable(self, obj, samples):
        latest = samples[-1]["unreachable"]
        if latest is None:
            return STATE_OK, 0.0, 0.0
        breached_now = latest > obj.bound
        previous = None
        for sample in reversed(list(samples)[:-1]):
            if sample["unreachable"] is not None:
                previous = sample["unreachable"]
                break
        breached_before = previous is not None and previous > obj.bound
        if breached_now and breached_before:
            return STATE_PAGE, float(latest), float(latest)
        if breached_now:
            # One bad probe is a blip; two consecutive are an outage.
            return STATE_WARN, float(latest), float(latest)
        return STATE_OK, float(latest), 0.0

    def evaluate(self, now: "float | None" = None) -> "list[dict]":
        """One result dict per objective, emitting transition events."""
        now = self._clock() if now is None else float(now)
        with self._lock:
            samples = list(self._samples)
        results = []
        for obj in self.objectives:
            burn_long = burn_short = 0.0
            value = 0.0
            observations = 0
            if not samples:
                state = STATE_OK
            elif obj.kind == "unreachable":
                state, value, burn_long = self._eval_unreachable(obj, samples)
                burn_short = burn_long
            else:
                burner = (
                    self._latency_burn if obj.kind == "latency"
                    else self._error_burn
                )
                burn_long, value, observations = burner(
                    obj, samples, now, obj.window_s
                )
                burn_short, _, _ = burner(obj, samples, now, obj.short_s)
                if (
                    burn_long >= self.page_burn
                    and burn_short >= self.page_burn
                ):
                    state = STATE_PAGE
                elif burn_long >= self.warn_burn:
                    state = STATE_WARN
                else:
                    state = STATE_OK
            results.append({
                "name": obj.name,
                "kind": obj.kind,
                "metric": obj.metric,
                "state": state,
                "burn_long": burn_long,
                "burn_short": burn_short,
                "value": value,
                "bound": obj.bound,
                "window_s": obj.window_s,
                "samples": observations,
            })
            self._transition(obj.name, state)
        if self.registry is not None:
            self.registry.counter("slo.evaluations").inc()
        return results

    def _transition(self, name: str, state: str) -> None:
        previous = self._states.get(name, STATE_OK)
        if state == previous:
            return
        self._states[name] = state
        if self.registry is not None:
            self.registry.counter("slo.transitions").inc()
            self.registry.gauge(f"slo.state.{name}").set(STATE_LEVELS[state])
        if self.events is not None:
            self.events.emit(
                "alert", objective=name, state=state, previous=previous
            )

    def states(self) -> "dict[str, str]":
        with self._lock:
            return dict(self._states)


# ---------------------------------------------------------------------------
# Fleet-wide tracking
# ---------------------------------------------------------------------------


class FleetSlos:
    """One tracker per shard plus a fleet tracker, fed by monitor samples.

    Shard-level objectives (latency, error-rate) are evaluated against
    each shard's own metrics; ``unreachable`` objectives are evaluated
    fleet-wide from the monitor's reachability census.  The rollup of
    the per-shard results into one alert table lives in
    ``repro.cluster.health.rollup_alerts``.
    """

    def __init__(
        self,
        objectives,
        *,
        warn_burn: float = 1.0,
        page_burn: float = 2.0,
        events=None,
        registry=None,
        clock=time.time,
    ) -> None:
        parsed = [
            obj if isinstance(obj, Objective) else parse_objective(obj)
            for obj in objectives
        ]
        self.shard_objectives = [o for o in parsed if o.kind != "unreachable"]
        self.fleet_objectives = [o for o in parsed if o.kind == "unreachable"]
        self._kwargs = {
            "warn_burn": warn_burn,
            "page_burn": page_burn,
            "events": events,
            "registry": registry,
            "clock": clock,
        }
        self._trackers: "dict[str, SloTracker]" = {}
        self._fleet = (
            SloTracker(self.fleet_objectives, **self._kwargs)
            if self.fleet_objectives
            else None
        )

    def observe_sample(self, sample: dict) -> None:
        """Ingest one :class:`ClusterMonitor` sample (collect_metrics on)."""
        at_s = sample.get("sampled_at_s")
        if self.shard_objectives:
            for row in sample.get("shards", []):
                if not row.get("reachable"):
                    continue
                metrics = row.get("metrics")
                if metrics is None:
                    continue
                tracker = self._trackers.get(row["address"])
                if tracker is None:
                    tracker = self._trackers[row["address"]] = SloTracker(
                        self.shard_objectives, **self._kwargs
                    )
                tracker.observe(metrics, at_s=at_s)
        if self._fleet is not None:
            down = sample.get("shard_count", 0) - sample.get("reachable", 0)
            self._fleet.observe({}, unreachable=down, at_s=at_s)

    def evaluate(self, now: "float | None" = None) -> dict:
        """``{"per_shard": {addr: [results]}, "fleet": [results]}``."""
        return {
            "per_shard": {
                addr: tracker.evaluate(now)
                for addr, tracker in sorted(self._trackers.items())
            },
            "fleet": self._fleet.evaluate(now) if self._fleet else [],
        }
