"""Unified observability: metrics registry, query tracing, cluster monitor.

Three pieces, one import surface:

- :mod:`repro.obs.registry` — counters, gauges, and fixed-bucket
  latency histograms behind :class:`MetricsRegistry`, unifying the
  per-subsystem counters (server ops, exec cache, crypto kernel,
  dispatcher) into one versioned snapshot/delta export.
- :mod:`repro.obs.tracing` — contextvar-propagated span stacks
  (``router.scatter`` → ``server.handle`` → ``engine.wave`` →
  ``kernel.batch`` → ``storage.get_many``) with per-server ring
  buffers and Chrome-trace/JSONL export.
- :mod:`repro.obs.monitor` — the ``repro top`` polling monitor over a
  cluster's stats frames.

``REPRO_OBS=0`` disables every instrument process-wide.
"""

from repro.obs.monitor import ClusterMonitor, render_top
from repro.obs.registry import (
    ENV_OBS,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    configure_default_registry,
    default_registry,
    metrics_payload,
    obs_enabled,
)
from repro.obs.tracing import (
    TraceBuffer,
    current_trace_id,
    new_trace_id,
    span,
    start_trace,
    to_chrome_trace,
    to_jsonl_lines,
)

__all__ = [
    "ClusterMonitor",
    "Counter",
    "ENV_OBS",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "TraceBuffer",
    "configure_default_registry",
    "current_trace_id",
    "default_registry",
    "metrics_payload",
    "new_trace_id",
    "obs_enabled",
    "render_top",
    "span",
    "start_trace",
    "to_chrome_trace",
    "to_jsonl_lines",
]
