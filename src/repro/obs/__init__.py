"""Unified observability: metrics, tracing, SLOs, events, cluster monitor.

Five pieces, one import surface:

- :mod:`repro.obs.registry` — counters, gauges, and fixed-bucket
  latency histograms behind :class:`MetricsRegistry`, unifying the
  per-subsystem counters (server ops, exec cache, crypto kernel,
  dispatcher) into one versioned snapshot/delta export.
- :mod:`repro.obs.tracing` — contextvar-propagated span stacks
  (``router.scatter`` → ``server.handle`` → ``engine.wave`` →
  ``kernel.batch`` → ``storage.get_many``) with per-server ring
  buffers and Chrome-trace/JSONL export; plus the *active* half:
  :class:`TraceSampler` (always-on tracing at 1-in-N cost) and the
  :class:`FlightRecorder` (tail-based capture of slow queries even
  when sampling would have dropped them).
- :mod:`repro.obs.slo` — declarative objectives (``p99(op.x) < 100ms
  over 5m``) evaluated from registry deltas with multi-window
  burn-rate ``ok``/``warn``/``page`` states, per shard and fleet-wide.
- :mod:`repro.obs.events` — the structured JSONL event log narrating
  lifecycle changes (server start/stop, store open, consolidation,
  alert transitions, slow-query captures).
- :mod:`repro.obs.monitor` — the ``repro top`` polling monitor over a
  cluster's stats frames.

``REPRO_OBS=0`` disables every instrument process-wide.
"""

from repro.obs.events import ENV_EVENT_LOG, EventLog
from repro.obs.monitor import ClusterMonitor, fit_cell, fit_num, render_top
from repro.obs.registry import (
    ENV_OBS,
    LATENCY_BOUNDS,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    configure_default_registry,
    default_registry,
    metrics_payload,
    obs_enabled,
)
from repro.obs.slo import (
    STATE_OK,
    STATE_PAGE,
    STATE_WARN,
    FleetSlos,
    Objective,
    SloTracker,
    parse_objective,
    worst_state,
)
from repro.obs.tracing import (
    ENV_SLOW_MS,
    ENV_SLOW_P99X,
    ENV_TRACE_SAMPLE,
    FlightRecorder,
    TraceBuffer,
    TraceSampler,
    current_trace_id,
    new_trace_id,
    span,
    start_trace,
    to_chrome_trace,
    to_jsonl_lines,
)

__all__ = [
    "ClusterMonitor",
    "Counter",
    "ENV_EVENT_LOG",
    "ENV_OBS",
    "ENV_SLOW_MS",
    "ENV_SLOW_P99X",
    "ENV_TRACE_SAMPLE",
    "EventLog",
    "FleetSlos",
    "FlightRecorder",
    "Gauge",
    "LATENCY_BOUNDS",
    "LatencyHistogram",
    "MetricsRegistry",
    "Objective",
    "SCHEMA_VERSION",
    "STATE_OK",
    "STATE_PAGE",
    "STATE_WARN",
    "SloTracker",
    "TraceBuffer",
    "TraceSampler",
    "configure_default_registry",
    "current_trace_id",
    "default_registry",
    "fit_cell",
    "fit_num",
    "metrics_payload",
    "new_trace_id",
    "obs_enabled",
    "parse_objective",
    "render_top",
    "span",
    "start_trace",
    "to_chrome_trace",
    "to_jsonl_lines",
    "worst_state",
]
