"""Live cluster monitor: poll shard stats, derive rates, render a top view.

:class:`ClusterMonitor` owns one pooled transport per shard address,
polls each shard's ``StatsRequest`` frame concurrently (a down shard
marks its row DOWN instead of failing the sweep), and differences
consecutive samples to turn monotonic op counters into rates — QPS is
*measured between polls*, not since boot, which is what an operator
watching a live table wants.

:func:`render_top` turns one sample into the fixed-width refreshing
table behind ``python -m repro.harness.cli top``; ``--once --json``
callers take :meth:`ClusterMonitor.sample` output directly.

The imports of the net layer are deliberately lazy: ``net/server``
imports ``repro.obs`` for its registry, so a module-level import here
would be circular.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor


def _parse_addr(addr) -> "tuple[str, int]":
    """Accept ``(host, port)`` tuples or ``"host:port"`` strings."""
    if isinstance(addr, str):
        host, _, port = addr.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"bad shard address {addr!r}; want host:port")
        return host, int(port)
    host, port = addr
    return str(host), int(port)


class ClusterMonitor:
    """Polls a fleet of shard servers and derives per-interval rates.

    With ``collect_metrics=True`` every reachable row additionally
    carries the shard's full registry snapshot under ``"metrics"`` —
    the feed an :class:`~repro.obs.slo.FleetSlos` evaluates objectives
    from (it needs raw histogram buckets, not the digested p99).
    """

    def __init__(
        self, addrs, *, timeout_s: float = 5.0, ssl=None,
        collect_metrics: bool = False,
    ) -> None:
        self.addrs = [_parse_addr(a) for a in addrs]
        if not self.addrs:
            raise ValueError("ClusterMonitor needs at least one shard address")
        self.timeout_s = float(timeout_s)
        self.collect_metrics = bool(collect_metrics)
        self._ssl = ssl
        self._transports: "dict[tuple[str, int], object]" = {}
        self._last: "dict[tuple[str, int], tuple[float, int]]" = {}
        self._pool = ThreadPoolExecutor(
            max_workers=min(16, len(self.addrs)),
            thread_name_prefix="repro-mon",
        )

    # -- polling -------------------------------------------------------------

    def _transport(self, addr):
        transport = self._transports.get(addr)
        if transport is None:
            from repro.net.client import NetTransport

            transport = NetTransport(
                addr[0], addr[1], timeout_s=self.timeout_s, ssl=self._ssl
            )
            self._transports[addr] = transport
        return transport

    def _probe(self, addr) -> dict:
        try:
            stats = self._transport(addr).stats()
        except Exception as exc:  # noqa: BLE001 — a down shard is a row, not a crash
            self._transports.pop(addr, None)
            return {"address": f"{addr[0]}:{addr[1]}", "reachable": False,
                    "error": f"{type(exc).__name__}: {exc}"}
        row = {"address": f"{addr[0]}:{addr[1]}", "reachable": True}
        row.update(self._digest(addr, stats))
        return row

    @staticmethod
    def _total_ops(stats: dict) -> int:
        ops = stats.get("net", {}).get("ops", {})
        total = 0
        for entry in ops.values():
            if isinstance(entry, dict):
                total += int(entry.get("count", 0))
        return total

    def _digest(self, addr, stats: dict) -> dict:
        """Flatten one raw stats payload into a monitor row."""
        now = time.perf_counter()
        server = stats.get("server", {})
        net = stats.get("net", {})
        ops = net.get("ops", {})

        total_ops = self._total_ops(stats)
        qps = 0.0
        prev = self._last.get(addr)
        if prev is not None:
            prev_t, prev_ops = prev
            dt = now - prev_t
            if dt > 0 and total_ops >= prev_ops:
                qps = (total_ops - prev_ops) / dt
        self._last[addr] = (now, total_ops)

        search = ops.get("multi-search") or ops.get("search") or {}
        cache = server.get("exec_cache") or {}
        kernel = server.get("crypto_kernel") or {}
        inflight = net.get("inflight_by_index", {})
        metrics = stats.get("metrics") or {}
        counters = metrics.get("counters") or {}
        row = {
            "shard": net.get("shard", ""),
            "schema_v": stats.get("v"),
            "ops_total": total_ops,
            "qps": qps,
            "p50_ms": 1e3 * float(search.get("p50_seconds", 0.0)),
            "p99_ms": 1e3 * float(search.get("p99_seconds", 0.0)),
            "inflight": sum(
                int(entry.get("current", 0))
                for entry in inflight.values()
                if isinstance(entry, dict)
            ),
            "cache_hit_rate": cache.get("hit_rate"),
            "kernel": kernel.get("backend", "?"),
            "errors": int(net.get("errors", 0)) + int(net.get("framing_errors", 0)),
            "stored_bytes": int(server.get("stored_bytes", 0)),
            # Live-ingest visibility (PR 9 managed stores): the
            # updates.* counter family, keyed without its prefix.
            "updates": {
                name.split(".", 1)[1]: int(value)
                for name, value in counters.items()
                if name.startswith("updates.")
            },
        }
        if self.collect_metrics:
            row["metrics"] = metrics
        return row

    def sample(self) -> dict:
        """One concurrent sweep over every shard; never raises."""
        rows = list(self._pool.map(self._probe, self.addrs))
        return {
            "v": 1,
            "sampled_at_s": time.time(),
            "shard_count": len(rows),
            "reachable": sum(1 for r in rows if r.get("reachable")),
            "shards": rows,
        }

    def close(self) -> None:
        self._pool.shutdown(wait=False)
        for transport in self._transports.values():
            try:
                transport.close()
            except Exception:  # noqa: BLE001
                pass
        self._transports.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_rate(rate) -> str:
    if rate is None:
        return "-"
    return f"{100.0 * rate:5.1f}%"


def fit_cell(text, width: int, align: str = "<") -> str:
    """``text`` at exactly ``width`` columns: truncate with ``…``, pad.

    Every cell in the top/health tables goes through this (or
    :func:`fit_num`), so one hostile value — a 40-char address, a
    runaway counter — can no longer shear a whole fixed-width table
    out of alignment.
    """
    text = str(text)
    if len(text) > width:
        text = text[: max(0, width - 1)] + "…"
    return f"{text:{align}{width}}"


def fit_num(value, width: int, decimals: int = 1) -> str:
    """A number at exactly ``width`` columns, degrading gracefully.

    Normal magnitudes render as fixed-point; values too wide for the
    column fall back to a compact ``k``/``M``/``G`` suffix; anything
    still wider is hard-clipped.  Always exactly ``width`` chars.
    """
    try:
        number = float(value)
    except (TypeError, ValueError):
        return fit_cell("?", width, ">")
    rendered = f"{number:{width}.{decimals}f}"
    if len(rendered) <= width:
        return rendered
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(number) >= factor:
            compact = f"{number / factor:.1f}{suffix}"
            if len(compact) <= width:
                return f"{compact:>{width}}"
    return fit_cell(f"{number:.0f}", width, ">")


def render_top(sample: dict, alerts: "dict | None" = None) -> str:
    """A fixed-width per-shard table for one monitor sample.

    ``alerts`` (a ``rollup_alerts`` document from
    ``repro.cluster.health``) appends the SLO state lines under the
    table when provided.
    """
    lines = [
        f"{'shard':>6}  {'address':<21} {'state':<5} {'qps':>8} "
        f"{'p50ms':>8} {'p99ms':>8} {'infl':>5} {'cache':>7} "
        f"{'kernel':<7} {'errs':>5}"
    ]
    for row in sample["shards"]:
        if not row.get("reachable"):
            lines.append(
                f"{'?':>6}  {fit_cell(row['address'], 21)} {'DOWN':<5} "
                f"{row.get('error', '')}"
            )
            continue
        lines.append(
            f"{fit_cell(row.get('shard', ''), 6, '>')}  "
            f"{fit_cell(row['address'], 21)} {'UP':<5} "
            f"{fit_num(row['qps'], 8)} {fit_num(row['p50_ms'], 8, 2)} "
            f"{fit_num(row['p99_ms'], 8, 2)} "
            f"{fit_num(row['inflight'], 5, 0)} "
            f"{fit_cell(_fmt_rate(row.get('cache_hit_rate')), 7, '>')} "
            f"{fit_cell(row.get('kernel', '?'), 7)} "
            f"{fit_num(row['errors'], 5, 0)}"
        )
    lines.append(
        f"shards {sample['reachable']}/{sample['shard_count']} reachable"
    )
    if alerts is not None:
        from repro.cluster.health import render_alerts

        lines.append(render_alerts(alerts))
    return "\n".join(lines)
