"""Cross-layer query tracing: trace ids, span stacks, ring buffers.

One query fans out across layers — ``router.scatter`` on the client,
``server.handle`` per shard, ``engine.wave`` per probe round,
``kernel.batch`` per crypto batch, ``storage.get_many`` per backend
round — and before this module nothing tied those steps together.  A
*trace* is one query's tree of timed spans, keyed by a caller-chosen
trace id that rides the wire in a backward-compatible trailing frame
field (the PR-4 dispatch-hint trick, a second trailer after the hint).

Design constraints, in order:

1. **The untraced hot path pays almost nothing.**  ``span()`` is one
   ``ContextVar.get`` returning a shared no-op context manager when no
   trace is active — the instrumented call sites in the engine and
   kernel run on every query, traced or not, and the ≤1.05× bench gate
   covers them.
2. **Propagation without plumbing.**  The active trace lives in a
   ``contextvars.ContextVar``.  The server enters the trace on the
   offload-pool thread that runs the whole request (engine walk,
   kernel batches, storage rounds all happen synchronously on it), so
   every nested ``span()`` lands in the right trace with zero
   signature changes through the stack.
3. **Bounded memory.**  Finished traces land in per-server
   :class:`TraceBuffer` rings (drop-oldest); span count per trace is
   capped, with a drop counter instead of unbounded growth.

Export: :func:`to_chrome_trace` emits the Chrome ``chrome://tracing``
/ Perfetto JSON object format; :func:`to_jsonl_lines` emits one span
per line for grep-ability.  ``harness/cli.py trace`` drives both.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import random
import threading
import time

#: Hard cap on spans recorded per trace; beyond it spans are counted, not kept.
MAX_SPANS_PER_TRACE = 512

#: Default ring capacity of a server-side :class:`TraceBuffer`.
DEFAULT_TRACE_CAPACITY = 256

#: Environment knob: trace one in every N queries (0/unset = off).
ENV_TRACE_SAMPLE = "REPRO_TRACE_SAMPLE"

#: Environment knob: absolute slow-query threshold in milliseconds.
ENV_SLOW_MS = "REPRO_SLOW_MS"

#: Environment knob: relative slow-query threshold — a multiple of the
#: live per-op p99 maintained by the flight recorder's own histograms.
ENV_SLOW_P99X = "REPRO_SLOW_P99X"

#: Default capture-ring capacity of a :class:`FlightRecorder`.
DEFAULT_SLOW_CAPACITY = 64

#: Observations an op's histogram needs before the relative (``p99 ×``)
#: threshold arms — a cold p99 over three samples is noise, not a bar.
DEFAULT_SLOW_MIN_SAMPLES = 48


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


class _TraceState:
    """Mutable collection state for one in-flight trace."""

    __slots__ = ("trace_id", "spans", "dropped", "depth", "lock", "started_s")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: "list[dict]" = []
        self.dropped = 0
        self.depth = 0
        self.lock = threading.Lock()
        self.started_s = time.time()

    def add(self, span: dict) -> None:
        with self.lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.dropped += 1
            else:
                self.spans.append(span)


_active: "contextvars.ContextVar[_TraceState | None]" = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def current_trace_id() -> "str | None":
    """The active trace id on this thread/context, if any."""
    state = _active.get()
    return state.trace_id if state is not None else None


class _NullSpan:
    """Shared do-nothing span for the untraced fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A timed region recorded into the active trace on exit."""

    __slots__ = ("_state", "_name", "_meta", "_t0", "_token")

    def __init__(self, state: _TraceState, name: str, meta: dict) -> None:
        self._state = state
        self._name = name
        self._meta = meta

    def __enter__(self):
        self._state.depth += 1
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._t0
        state = self._state
        state.depth -= 1
        record = {
            "name": self._name,
            "start_s": time.time() - elapsed,
            "duration_s": elapsed,
            "depth": state.depth,
        }
        if self._meta:
            record["meta"] = self._meta
        if exc_type is not None:
            record["error"] = exc_type.__name__
        state.add(record)
        return False


def span(name: str, **meta):
    """A context manager timing ``name`` inside the active trace.

    When no trace is active this returns a shared no-op — the call
    costs one ContextVar read, which is what keeps always-on
    instrumentation inside the overhead gate.
    """
    state = _active.get()
    if state is None:
        return _NULL_SPAN
    return _Span(state, name, meta)


@contextlib.contextmanager
def start_trace(trace_id: str, buffer: "TraceBuffer | None", root_name: str, **meta):
    """Open trace ``trace_id``, run the body as its root span, collect.

    The finished trace (root span plus everything ``span()`` recorded
    under it) is appended to ``buffer`` on exit — including on error,
    so a failing query still leaves its trace behind.
    """
    state = _TraceState(trace_id)
    token = _active.set(state)
    try:
        with _Span(state, root_name, meta):
            yield state
    finally:
        _active.reset(token)
        if buffer is not None:
            buffer.add(state)


class TraceBuffer:
    """Bounded drop-oldest ring of finished traces (one per server)."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._traces: "list[dict]" = []
        self._evicted = 0
        self._lock = threading.Lock()

    def add(self, state: _TraceState) -> None:
        record = {
            "trace_id": state.trace_id,
            "started_s": state.started_s,
            "spans": list(state.spans),
            "dropped_spans": state.dropped,
        }
        with self._lock:
            self._traces.append(record)
            if len(self._traces) > self.capacity:
                overflow = len(self._traces) - self.capacity
                del self._traces[:overflow]
                self._evicted += overflow

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def evicted(self) -> int:
        return self._evicted

    def snapshot(self, limit: int = 0) -> "list[dict]":
        """The most recent ``limit`` traces (all of them when 0)."""
        with self._lock:
            traces = list(self._traces)
        if limit and limit > 0:
            traces = traces[-limit:]
        return traces

    def find(self, trace_id: str) -> "list[dict]":
        """Every buffered trace record carrying ``trace_id``."""
        with self._lock:
            return [t for t in self._traces if t["trace_id"] == trace_id]

    def trace_ids(self) -> "set[str]":
        with self._lock:
            return {t["trace_id"] for t in self._traces}

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


# ---------------------------------------------------------------------------
# Probabilistic sampling and the slow-query flight recorder
# ---------------------------------------------------------------------------


def _env_number(name: str, convert, default):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return convert(raw)
    except ValueError:
        return default


class TraceSampler:
    """Per-query coin flip: retain one trace in every ``rate`` queries.

    The always-on production posture: with ``REPRO_TRACE_SAMPLE=100``
    (or ``rate=100``) a fleet traces ~1% of its traffic forever at
    bounded cost, instead of choosing between "trace nothing" and
    "trace everything".  ``rate`` semantics: ``0`` = sampling off (the
    default — explicit client trace ids are unaffected either way),
    ``1`` = every query, ``N`` = one in N in expectation.
    """

    __slots__ = ("rate", "_rng", "_lock")

    def __init__(self, rate: "int | None" = None, *, rng=None) -> None:
        if rate is None:
            rate = _env_number(ENV_TRACE_SAMPLE, int, 0)
        self.rate = max(0, int(rate))
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        return self.rate > 0

    def decide(self) -> bool:
        """One coin flip (thread-safe; Random instances are not)."""
        if self.rate <= 0:
            return False
        if self.rate == 1:
            return True
        with self._lock:
            return self._rng.randrange(self.rate) == 0


class FlightRecorder:
    """Force-retain the span trees of queries that blow a latency bar.

    Tail-based capture: the server collects spans for every query while
    the recorder is armed, and the recorder keeps the full tree of any
    query whose realized latency exceeds its op's threshold — even when
    the sampler's coin flip would have dropped the trace.  A p99
    incident at 1/1000 sampling therefore still leaves an artifact.

    Thresholds, per op, lowest applicable wins:

    - **absolute**: ``threshold_s`` (env ``REPRO_SLOW_MS``, in ms);
    - **relative**: ``p99_factor ×`` the live p99 of the recorder's own
      ``slowlog.latency.<op>`` histogram (env ``REPRO_SLOW_P99X``),
      armed only after ``min_samples`` observations so a cold p99
      cannot page on noise.

    The recorder is *armed* when either threshold is configured;
    unarmed it costs nothing (the server skips span collection for
    unsampled queries entirely).  ``registry`` may be a
    :class:`~repro.obs.MetricsRegistry` or a zero-arg callable
    returning one — the server passes its late-bound registry hook so
    the net layer's per-server registry swap is honored.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SLOW_CAPACITY,
        *,
        threshold_s: "float | None" = None,
        p99_factor: "float | None" = None,
        min_samples: int = DEFAULT_SLOW_MIN_SAMPLES,
        registry=None,
        on_capture=None,
    ) -> None:
        self.capacity = max(1, int(capacity))
        if threshold_s is None:
            ms = _env_number(ENV_SLOW_MS, float, None)
            threshold_s = None if ms is None else ms / 1e3
        self.threshold_s = threshold_s
        if p99_factor is None:
            p99_factor = _env_number(ENV_SLOW_P99X, float, 0.0)
        self.p99_factor = max(0.0, float(p99_factor))
        self.min_samples = max(1, int(min_samples))
        self.registry = registry
        self.on_capture = on_capture
        self._captures: "list[dict]" = []
        self._evicted = 0
        self._lock = threading.Lock()

    @property
    def armed(self) -> bool:
        return self.threshold_s is not None or self.p99_factor > 0

    def _resolve_registry(self):
        registry = self.registry
        if registry is not None and callable(registry):
            registry = registry()
        return registry

    def threshold_for(self, op: str) -> "float | None":
        """The capture bar for ``op`` right now (None = not armed yet)."""
        threshold = self.threshold_s
        if self.p99_factor > 0:
            registry = self._resolve_registry()
            if registry is not None:
                hist = registry.histogram(f"slowlog.latency.{op}")
                if hist.count >= self.min_samples:
                    relative = self.p99_factor * hist.percentile(0.99)
                    if threshold is None or relative < threshold:
                        return relative
        return threshold

    def consider(
        self, op: str, state, elapsed_s: float, *, retained: bool = False,
        meta=None,
    ) -> bool:
        """Judge one finished query; capture and return True when slow.

        The threshold is read *before* this query's latency feeds the
        histogram, so a tail query cannot raise the bar it is judged
        against.  ``retained`` records whether the trace also landed in
        the ordinary ring (explicit id or sampler hit) — captures with
        ``"sampled": false`` are the ones only this recorder saved.
        """
        if not self.armed:
            return False
        threshold = self.threshold_for(op)
        registry = self._resolve_registry()
        if registry is not None:
            registry.histogram(f"slowlog.latency.{op}").observe(elapsed_s)
        if threshold is None or elapsed_s < threshold:
            return False
        record = {
            "captured_at_s": time.time(),
            "op": op,
            "trace_id": state.trace_id,
            "elapsed_s": elapsed_s,
            "threshold_s": threshold,
            "reason": (
                "absolute"
                if self.threshold_s is not None and threshold == self.threshold_s
                else "p99x"
            ),
            "sampled": bool(retained),
            "spans": list(state.spans),
            "dropped_spans": state.dropped,
        }
        if meta:
            record["meta"] = dict(meta)
        with self._lock:
            self._captures.append(record)
            if len(self._captures) > self.capacity:
                overflow = len(self._captures) - self.capacity
                del self._captures[:overflow]
                self._evicted += overflow
        if registry is not None:
            registry.counter("slowlog.captured").inc()
        if self.on_capture is not None:
            try:
                self.on_capture(record)
            except Exception:  # noqa: BLE001 — a capture hook must never fail a query
                pass
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._captures)

    @property
    def evicted(self) -> int:
        return self._evicted

    def snapshot(self, limit: int = 0) -> "list[dict]":
        """The most recent ``limit`` captures (all of them when 0)."""
        with self._lock:
            captures = list(self._captures)
        if limit and limit > 0:
            captures = captures[-limit:]
        return captures

    def clear(self) -> None:
        with self._lock:
            self._captures.clear()


# ---------------------------------------------------------------------------
# Export formats
# ---------------------------------------------------------------------------


def to_chrome_trace(traces: "list[dict]", *, label: str = "repro") -> dict:
    """Render trace records as a Chrome-trace (Perfetto) JSON object.

    Each trace becomes one ``pid`` so shards line up as separate
    process rows; span depth maps to ``tid`` so nesting stacks
    visually.  Load the result at ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    events = []
    for pid, trace in enumerate(traces):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"{label}:{trace['trace_id']}"},
        })
        for record in trace["spans"]:
            event = {
                "name": record["name"],
                "ph": "X",
                "ts": record["start_s"] * 1e6,
                "dur": record["duration_s"] * 1e6,
                "pid": pid,
                "tid": record.get("depth", 0),
                "args": dict(record.get("meta", {})),
            }
            if "error" in record:
                event["args"]["error"] = record["error"]
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_jsonl_lines(traces: "list[dict]") -> "list[str]":
    """One JSON line per span, trace id inlined — grep-friendly."""
    lines = []
    for trace in traces:
        for record in trace["spans"]:
            row = {"trace_id": trace["trace_id"]}
            row.update(record)
            lines.append(json.dumps(row, sort_keys=True))
    return lines
