"""Cross-layer query tracing: trace ids, span stacks, ring buffers.

One query fans out across layers — ``router.scatter`` on the client,
``server.handle`` per shard, ``engine.wave`` per probe round,
``kernel.batch`` per crypto batch, ``storage.get_many`` per backend
round — and before this module nothing tied those steps together.  A
*trace* is one query's tree of timed spans, keyed by a caller-chosen
trace id that rides the wire in a backward-compatible trailing frame
field (the PR-4 dispatch-hint trick, a second trailer after the hint).

Design constraints, in order:

1. **The untraced hot path pays almost nothing.**  ``span()`` is one
   ``ContextVar.get`` returning a shared no-op context manager when no
   trace is active — the instrumented call sites in the engine and
   kernel run on every query, traced or not, and the ≤1.05× bench gate
   covers them.
2. **Propagation without plumbing.**  The active trace lives in a
   ``contextvars.ContextVar``.  The server enters the trace on the
   offload-pool thread that runs the whole request (engine walk,
   kernel batches, storage rounds all happen synchronously on it), so
   every nested ``span()`` lands in the right trace with zero
   signature changes through the stack.
3. **Bounded memory.**  Finished traces land in per-server
   :class:`TraceBuffer` rings (drop-oldest); span count per trace is
   capped, with a drop counter instead of unbounded growth.

Export: :func:`to_chrome_trace` emits the Chrome ``chrome://tracing``
/ Perfetto JSON object format; :func:`to_jsonl_lines` emits one span
per line for grep-ability.  ``harness/cli.py trace`` drives both.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time

#: Hard cap on spans recorded per trace; beyond it spans are counted, not kept.
MAX_SPANS_PER_TRACE = 512

#: Default ring capacity of a server-side :class:`TraceBuffer`.
DEFAULT_TRACE_CAPACITY = 256


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


class _TraceState:
    """Mutable collection state for one in-flight trace."""

    __slots__ = ("trace_id", "spans", "dropped", "depth", "lock", "started_s")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: "list[dict]" = []
        self.dropped = 0
        self.depth = 0
        self.lock = threading.Lock()
        self.started_s = time.time()

    def add(self, span: dict) -> None:
        with self.lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.dropped += 1
            else:
                self.spans.append(span)


_active: "contextvars.ContextVar[_TraceState | None]" = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def current_trace_id() -> "str | None":
    """The active trace id on this thread/context, if any."""
    state = _active.get()
    return state.trace_id if state is not None else None


class _NullSpan:
    """Shared do-nothing span for the untraced fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A timed region recorded into the active trace on exit."""

    __slots__ = ("_state", "_name", "_meta", "_t0", "_token")

    def __init__(self, state: _TraceState, name: str, meta: dict) -> None:
        self._state = state
        self._name = name
        self._meta = meta

    def __enter__(self):
        self._state.depth += 1
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._t0
        state = self._state
        state.depth -= 1
        record = {
            "name": self._name,
            "start_s": time.time() - elapsed,
            "duration_s": elapsed,
            "depth": state.depth,
        }
        if self._meta:
            record["meta"] = self._meta
        if exc_type is not None:
            record["error"] = exc_type.__name__
        state.add(record)
        return False


def span(name: str, **meta):
    """A context manager timing ``name`` inside the active trace.

    When no trace is active this returns a shared no-op — the call
    costs one ContextVar read, which is what keeps always-on
    instrumentation inside the overhead gate.
    """
    state = _active.get()
    if state is None:
        return _NULL_SPAN
    return _Span(state, name, meta)


@contextlib.contextmanager
def start_trace(trace_id: str, buffer: "TraceBuffer | None", root_name: str, **meta):
    """Open trace ``trace_id``, run the body as its root span, collect.

    The finished trace (root span plus everything ``span()`` recorded
    under it) is appended to ``buffer`` on exit — including on error,
    so a failing query still leaves its trace behind.
    """
    state = _TraceState(trace_id)
    token = _active.set(state)
    try:
        with _Span(state, root_name, meta):
            yield state
    finally:
        _active.reset(token)
        if buffer is not None:
            buffer.add(state)


class TraceBuffer:
    """Bounded drop-oldest ring of finished traces (one per server)."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._traces: "list[dict]" = []
        self._evicted = 0
        self._lock = threading.Lock()

    def add(self, state: _TraceState) -> None:
        record = {
            "trace_id": state.trace_id,
            "started_s": state.started_s,
            "spans": list(state.spans),
            "dropped_spans": state.dropped,
        }
        with self._lock:
            self._traces.append(record)
            if len(self._traces) > self.capacity:
                overflow = len(self._traces) - self.capacity
                del self._traces[:overflow]
                self._evicted += overflow

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def evicted(self) -> int:
        return self._evicted

    def snapshot(self, limit: int = 0) -> "list[dict]":
        """The most recent ``limit`` traces (all of them when 0)."""
        with self._lock:
            traces = list(self._traces)
        if limit and limit > 0:
            traces = traces[-limit:]
        return traces

    def find(self, trace_id: str) -> "list[dict]":
        """Every buffered trace record carrying ``trace_id``."""
        with self._lock:
            return [t for t in self._traces if t["trace_id"] == trace_id]

    def trace_ids(self) -> "set[str]":
        with self._lock:
            return {t["trace_id"] for t in self._traces}

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


# ---------------------------------------------------------------------------
# Export formats
# ---------------------------------------------------------------------------


def to_chrome_trace(traces: "list[dict]", *, label: str = "repro") -> dict:
    """Render trace records as a Chrome-trace (Perfetto) JSON object.

    Each trace becomes one ``pid`` so shards line up as separate
    process rows; span depth maps to ``tid`` so nesting stacks
    visually.  Load the result at ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    events = []
    for pid, trace in enumerate(traces):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"{label}:{trace['trace_id']}"},
        })
        for record in trace["spans"]:
            event = {
                "name": record["name"],
                "ph": "X",
                "ts": record["start_s"] * 1e6,
                "dur": record["duration_s"] * 1e6,
                "pid": pid,
                "tid": record.get("depth", 0),
                "args": dict(record.get("meta", {})),
            }
            if "error" in record:
                event["args"]["error"] = record["error"]
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_jsonl_lines(traces: "list[dict]") -> "list[str]":
    """One JSON line per span, trace id inlined — grep-friendly."""
    lines = []
    for trace in traces:
        for record in trace["spans"]:
            row = {"trace_id": trace["trace_id"]}
            row.update(record)
            lines.append(json.dumps(row, sort_keys=True))
    return lines
