"""Structured event log: the system narrating its own state changes.

Metrics answer "how much", traces answer "where did the time go" — the
event log answers "what happened": server start/stop, store lifecycle,
consolidations, alert transitions, slow-query captures.  Each event is
one JSON-serializable dict with a wall-clock timestamp and a ``kind``.

Two sinks, both optional and both bounded:

- an in-memory drop-oldest ring (``tail()``) surfaced over the stats
  frame so a remote operator sees recent history without log access;
- an append-only JSONL file (``path`` or ``REPRO_EVENT_LOG``) for
  durable post-mortems.  File errors are counted, never raised — an
  unwritable disk must not fail a query.

``emit`` is safe from any thread and never throws.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Environment knob: path of the append-only JSONL event sink.
ENV_EVENT_LOG = "REPRO_EVENT_LOG"

#: Default in-memory tail capacity of an :class:`EventLog`.
DEFAULT_EVENT_CAPACITY = 512


class EventLog:
    """Bounded in-memory event ring with an optional JSONL file sink."""

    def __init__(
        self,
        capacity: int = DEFAULT_EVENT_CAPACITY,
        *,
        path: "str | None" = None,
        registry=None,
        clock=time.time,
    ) -> None:
        self.capacity = max(1, int(capacity))
        if path is None:
            path = os.environ.get(ENV_EVENT_LOG, "").strip() or None
        self.path = path
        #: A MetricsRegistry, a zero-arg callable returning one, or None.
        self.registry = registry
        self._clock = clock
        self._ring: "list[dict]" = []
        self._emitted = 0
        self._evicted = 0
        self._write_errors = 0
        self._sink = None
        self._lock = threading.Lock()

    def _resolve_registry(self):
        registry = self.registry
        if registry is not None and callable(registry):
            registry = registry()
        return registry

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the record.  Never raises."""
        record = {"ts_s": self._clock(), "kind": str(kind)}
        record.update(fields)
        with self._lock:
            self._emitted += 1
            self._ring.append(record)
            if len(self._ring) > self.capacity:
                overflow = len(self._ring) - self.capacity
                del self._ring[:overflow]
                self._evicted += overflow
            if self.path is not None:
                try:
                    if self._sink is None:
                        self._sink = open(self.path, "a", encoding="utf-8")
                    self._sink.write(
                        json.dumps(record, sort_keys=True, default=str) + "\n"
                    )
                    self._sink.flush()
                except OSError:
                    self._write_errors += 1
        registry = self._resolve_registry()
        if registry is not None:
            registry.counter("events.emitted").inc()
        return record

    def tail(self, limit: int = 0) -> "list[dict]":
        """The most recent ``limit`` events (all retained when 0)."""
        with self._lock:
            events = list(self._ring)
        if limit and limit > 0:
            events = events[-limit:]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (not just those still in the ring)."""
        return self._emitted

    @property
    def evicted(self) -> int:
        return self._evicted

    @property
    def write_errors(self) -> int:
        return self._write_errors

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    self._write_errors += 1
                self._sink = None
