"""``RangeStore`` — the library's front door.

One object composes the three layers an application actually wants:

- a registry scheme (``"logarithmic-src-i"`` by default — the paper's
  best security/efficiency trade-off) providing encrypted range search;
- the forward-private :class:`~repro.updates.manager.BatchUpdateManager`
  providing inserts and deletes (each flushed batch becomes a static
  index under fresh keys, consolidated LSM-style);
- a pluggable :class:`~repro.storage.StorageBackend` the server-side
  state persists through (memory, SQLite file, or hash-sharded).

Usage::

    from repro import RangeStore

    store = RangeStore.open("logarithmic-src-i", domain_size=1 << 16)
    store.insert(101, 2_310)
    store.insert(102, 47_000)
    outcome = store.search(2_000, 3_000)   # -> QueryOutcome
    store.save("checkpoint.rsse", passphrase="s3cret")
    ...
    store = RangeStore.open_snapshot("checkpoint.rsse", passphrase="s3cret")

Writes are buffered owner-side and flushed as one batch before any
search, save, or explicit :meth:`flush` — matching the paper's batched
update model (and amortizing per-batch index builds).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.registry import make_scheme
from repro.core.scheme import QueryOutcome
from repro.errors import IndexStateError, IntegrityError
from repro.io import keystore
from repro.storage.backend import PrefixedBackend, StorageBackend
from repro.updates import manager as _manager
from repro.updates.batch import UpdateOp, delete as _delete_op, insert as _insert_op

_STORE_MAGIC = b"RSSESTORE1"


class RangeStore:
    """Encrypted range store: scheme + update manager + storage backend.

    Construct through :meth:`open` (fresh store) or
    :meth:`open_snapshot`/:meth:`load` (from a saved checkpoint).
    """

    def __init__(
        self,
        *,
        scheme: str,
        domain_size: int,
        backend: "StorageBackend | None" = None,
        consolidation_step: int = 4,
        rng: "random.Random | None" = None,
        _adopt_backend: bool = False,
        **scheme_kwargs,
    ) -> None:
        if backend is not None and not _adopt_backend:
            # A second store on the same raw backend would silently
            # clobber the first one's namespaces — refuse up front.
            # (:meth:`load` adopts deliberately: it replaces all state.)
            held = [
                ns
                for ns in backend.namespaces()
                if ns.startswith(("scheme/", "mgr/"))
            ]
            if held:
                raise IndexStateError(
                    "backend already holds RangeStore state "
                    f"(e.g. {held[0]!r}); open each store on its own "
                    "backend or a PrefixedBackend slice, or reopen a "
                    "checkpoint with RangeStore.load()"
                )
        self.scheme_name = scheme
        self.domain_size = domain_size
        self._backend = backend
        self._rng = rng
        self._scheme_kwargs = dict(scheme_kwargs)
        self._scheme_seq = 0  # monotone prefix counter for per-batch schemes
        self._pending: list[UpdateOp] = []
        self._manager = _manager.BatchUpdateManager(
            self._make_scheme,
            consolidation_step=consolidation_step,
            rng=rng,
            backend=(
                PrefixedBackend(backend, "mgr/") if backend is not None else None
            ),
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def open(
        cls,
        scheme: str = "logarithmic-src-i",
        *,
        domain_size: int,
        backend: "StorageBackend | None" = None,
        consolidation_step: int = 4,
        rng: "random.Random | None" = None,
        **scheme_kwargs,
    ) -> "RangeStore":
        """Open a fresh store for ``domain_size`` values under ``scheme``.

        ``backend`` hosts all server-side state (in-memory when
        omitted); extra keyword arguments (``sse_factory``,
        ``intersection_policy``, …) reach every per-batch scheme.
        """
        return cls(
            scheme=scheme,
            domain_size=domain_size,
            backend=backend,
            consolidation_step=consolidation_step,
            rng=rng,
            **scheme_kwargs,
        )

    def _make_scheme(self):
        """Fresh scheme (fresh keys) on its own backend slice."""
        self._scheme_seq += 1
        sub = (
            PrefixedBackend(self._backend, f"scheme/{self._scheme_seq}/")
            if self._backend is not None
            else None
        )
        kwargs = dict(self._scheme_kwargs)
        if self._rng is not None:
            kwargs["rng"] = self._rng
        return make_scheme(self.scheme_name, self.domain_size, backend=sub, **kwargs)

    # -- writes --------------------------------------------------------------

    def insert(self, record_id: int, value: int) -> None:
        """Buffer an insertion of tuple ``(record_id, value)``."""
        self._pending.append(_insert_op(record_id, value))

    def delete(self, record_id: int, value: int) -> None:
        """Buffer a deletion tombstone (``value`` as originally inserted)."""
        self._pending.append(_delete_op(record_id, value))

    def insert_many(self, records: "Iterable[tuple[int, int]]") -> None:
        """Buffer many insertions at once."""
        for record_id, value in records:
            self.insert(record_id, value)

    def flush(self) -> None:
        """Apply buffered operations as one batch (fresh keys, LSM merge).

        Each bulk write inside the batch (op log, scheme EDB, tuple
        store) commits as its own backend transaction.  Deliberately
        NOT one outer transaction: the update manager mutates in-memory
        state (active indexes, sequence counters) as it goes, and a
        whole-batch rollback would silently diverge from it.
        """
        if not self._pending:
            return
        ops, self._pending = self._pending, []
        self._manager.apply_batch(ops)

    # -- reads --------------------------------------------------------------

    def search(self, lo: int, hi: int) -> QueryOutcome:
        """Exact range query ``[lo, hi]`` (buffered writes flushed first)."""
        self.flush()
        return self._manager.query(lo, hi)

    #: Alias matching the scheme-level API.
    query = search

    # -- persistence ----------------------------------------------------------

    def save(self, path, passphrase: "str | None" = None) -> None:
        """Checkpoint the whole store (keys included!) to one file.

        Always pass a ``passphrase`` outside of tests — the snapshot
        contains every secret key.
        """
        self.flush()
        blob = b"".join(
            [
                _STORE_MAGIC,
                len(self.scheme_name).to_bytes(2, "big"),
                self.scheme_name.encode(),
                self.domain_size.to_bytes(8, "big"),
                self._scheme_seq.to_bytes(8, "big"),
                _manager.dump_manager(self._manager),
            ]
        )
        if passphrase is not None:
            blob = keystore.wrap(blob, passphrase)
        with open(path, "wb") as fh:
            fh.write(blob)

    @classmethod
    def load(
        cls,
        path,
        passphrase: "str | None" = None,
        *,
        backend: "StorageBackend | None" = None,
        rng: "random.Random | None" = None,
        **scheme_kwargs,
    ) -> "RangeStore":
        """Reopen a checkpoint, rehydrating into ``backend`` (or memory)."""
        with open(path, "rb") as fh:
            blob = fh.read()
        if passphrase is not None:
            blob = keystore.unwrap(blob, passphrase)
        if not blob.startswith(_STORE_MAGIC):
            raise IntegrityError("not a RangeStore snapshot")
        offset = len(_STORE_MAGIC)
        name_len = int.from_bytes(blob[offset : offset + 2], "big")
        offset += 2
        scheme_name = blob[offset : offset + name_len].decode()
        offset += name_len
        domain_size = int.from_bytes(blob[offset : offset + 8], "big")
        scheme_seq = int.from_bytes(blob[offset + 8 : offset + 16], "big")
        offset += 16
        if backend is not None:
            # The checkpoint is the source of truth: clear any state a
            # previous incarnation of this store left in the backend —
            # one transaction, so a failed load can't leave a half-wiped
            # backend behind.
            with backend.transaction():
                for ns in backend.namespaces():
                    if ns.startswith(("scheme/", "mgr/")):
                        backend.drop(ns)
        store = cls(
            scheme=scheme_name,
            domain_size=domain_size,
            backend=backend,
            rng=rng,
            _adopt_backend=True,
            **scheme_kwargs,
        )
        store._scheme_seq = scheme_seq

        def scheme_backend():
            store._scheme_seq += 1
            if backend is None:
                return None
            return PrefixedBackend(backend, f"scheme/{store._scheme_seq}/")

        store._manager = _manager.restore_manager(
            blob[offset:],
            store._make_scheme,
            rng=rng,
            backend=(
                PrefixedBackend(backend, "mgr/") if backend is not None else None
            ),
            scheme_backend_factory=scheme_backend,
            # Restored indexes search through the same engine future
            # batches will (scheme_kwargs carries any executor=).
            executor=scheme_kwargs.get("executor"),
        )
        return store

    #: Readable alias for the common reopen flow.
    open_snapshot = load

    def close(self) -> None:
        """Release backend resources (file handles, connections)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "RangeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    @property
    def pending_ops(self) -> int:
        """Operations buffered but not yet flushed into an index."""
        return len(self._pending)

    @property
    def active_indexes(self) -> int:
        """Live static indexes in the LSM forest."""
        return self._manager.active_indexes

    def index_bytes(self) -> int:
        """Combined EDB footprint across active indexes."""
        return self._manager.total_index_bytes()

    @property
    def stats(self):
        """Batch/consolidation bookkeeping from the update manager."""
        return self._manager.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RangeStore(scheme={self.scheme_name!r}, m={self.domain_size}, "
            f"indexes={self.active_indexes}, pending={self.pending_ops})"
        )
