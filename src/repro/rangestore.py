"""``RangeStore`` — the library's front door.

One object composes the three layers an application actually wants:

- a registry scheme (``"logarithmic-src-i"`` by default — the paper's
  best security/efficiency trade-off) providing encrypted range search;
- the forward-private :class:`~repro.updates.manager.BatchUpdateManager`
  providing inserts and deletes (each flushed batch becomes a static
  index under fresh keys, consolidated LSM-style);
- a pluggable :class:`~repro.storage.StorageBackend` the server-side
  state persists through (memory, SQLite file, or hash-sharded).

Usage::

    from repro import RangeStore

    store = RangeStore.open("logarithmic-src-i", domain_size=1 << 16)
    store.insert(101, 2_310)
    store.insert(102, 47_000)
    outcome = store.search(2_000, 3_000)   # -> QueryOutcome
    store.save("checkpoint.rsse", passphrase="s3cret")
    ...
    store = RangeStore.open_snapshot("checkpoint.rsse", passphrase="s3cret")

Writes are buffered owner-side and flushed as one batch before any
search, save, or explicit :meth:`flush` — matching the paper's batched
update model (and amortizing per-batch index builds).
"""

from __future__ import annotations

import random
import struct
from typing import Iterable

from repro.core.registry import make_scheme
from repro.core.scheme import QueryOutcome
from repro.errors import IndexStateError, IntegrityError
from repro.io import keystore
from repro.storage.backend import PrefixedBackend, StorageBackend
from repro.updates import manager as _manager
from repro.updates.batch import (
    OpKind,
    UpdateOp,
    delete as _delete_op,
    insert as _insert_op,
)

_STORE_MAGIC = b"RSSESTORE1"
_HYBRID_MAGIC = b"RSSEHYB1"
#: Cost-model weights on the wire: six unit seconds, the kernel
#: offload crossover + two offload-lane rates, and the calibrated
#: flag.  ``inf`` (serial kernels: offload never pays) packs fine.
_COST_MODEL_PACK = struct.Struct(">9dB")


class RangeStore:
    """Encrypted range store: scheme + update manager + storage backend.

    Construct through :meth:`open` (fresh store) or
    :meth:`open_snapshot`/:meth:`load` (from a saved checkpoint).
    """

    def __init__(
        self,
        *,
        scheme: str,
        domain_size: int,
        backend: "StorageBackend | None" = None,
        consolidation_step: int = 4,
        rng: "random.Random | None" = None,
        _adopt_backend: bool = False,
        **scheme_kwargs,
    ) -> None:
        if backend is not None and not _adopt_backend:
            # A second store on the same raw backend would silently
            # clobber the first one's namespaces — refuse up front.
            # (:meth:`load` adopts deliberately: it replaces all state.)
            held = [
                ns
                for ns in backend.namespaces()
                if ns.startswith(("scheme/", "mgr/"))
            ]
            if held:
                raise IndexStateError(
                    "backend already holds RangeStore state "
                    f"(e.g. {held[0]!r}); open each store on its own "
                    "backend or a PrefixedBackend slice, or reopen a "
                    "checkpoint with RangeStore.load()"
                )
        self.scheme_name = scheme
        self.domain_size = domain_size
        self._backend = backend
        self._rng = rng
        self._scheme_kwargs = dict(scheme_kwargs)
        self._scheme_seq = 0  # monotone prefix counter for per-batch schemes
        self._pending: list[UpdateOp] = []
        self._manager = _manager.BatchUpdateManager(
            self._make_scheme,
            consolidation_step=consolidation_step,
            rng=rng,
            backend=(
                PrefixedBackend(backend, "mgr/") if backend is not None else None
            ),
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def open(
        cls,
        scheme: str = "logarithmic-src-i",
        *,
        domain_size: int,
        backend: "StorageBackend | None" = None,
        consolidation_step: int = 4,
        rng: "random.Random | None" = None,
        **scheme_kwargs,
    ) -> "RangeStore":
        """Open a fresh store for ``domain_size`` values under ``scheme``.

        ``backend`` hosts all server-side state (in-memory when
        omitted); extra keyword arguments (``sse_factory``,
        ``intersection_policy``, …) reach every per-batch scheme.
        """
        return cls(
            scheme=scheme,
            domain_size=domain_size,
            backend=backend,
            consolidation_step=consolidation_step,
            rng=rng,
            **scheme_kwargs,
        )

    def _make_scheme(self):
        """Fresh scheme (fresh keys) on its own backend slice."""
        self._scheme_seq += 1
        sub = (
            PrefixedBackend(self._backend, f"scheme/{self._scheme_seq}/")
            if self._backend is not None
            else None
        )
        kwargs = dict(self._scheme_kwargs)
        if self._rng is not None:
            kwargs["rng"] = self._rng
        return make_scheme(self.scheme_name, self.domain_size, backend=sub, **kwargs)

    # -- writes --------------------------------------------------------------

    def insert(self, record_id: int, value: int) -> None:
        """Buffer an insertion of tuple ``(record_id, value)``."""
        self._pending.append(_insert_op(record_id, value))

    def delete(self, record_id: int, value: int) -> None:
        """Buffer a deletion tombstone (``value`` as originally inserted)."""
        self._pending.append(_delete_op(record_id, value))

    def insert_many(self, records: "Iterable[tuple[int, int]]") -> None:
        """Buffer many insertions at once."""
        for record_id, value in records:
            self.insert(record_id, value)

    def apply_ops(self, ops: "Iterable[UpdateOp]") -> None:
        """Buffer already-materialized operations (wire ingest path).

        The network server hands decoded
        :class:`~repro.updates.batch.UpdateOp` sequences straight
        through here, so an update frame and the equivalent
        ``insert``/``delete`` calls take exactly the same code path.
        """
        self._pending.extend(ops)

    def flush(self) -> None:
        """Apply buffered operations as one batch (fresh keys, LSM merge).

        Each bulk write inside the batch (op log, scheme EDB, tuple
        store) commits as its own backend transaction.  Deliberately
        NOT one outer transaction: the update manager mutates in-memory
        state (active indexes, sequence counters) as it goes, and a
        whole-batch rollback would silently diverge from it.
        """
        if not self._pending:
            return
        ops, self._pending = self._pending, []
        self._manager.apply_batch(ops)

    # -- reads --------------------------------------------------------------

    def search(self, lo: int, hi: int) -> QueryOutcome:
        """Exact range query ``[lo, hi]`` (buffered writes flushed first)."""
        self.flush()
        outcome = self._manager.query(lo, hi)
        # A fixed-scheme store is a one-lane dispatch: name the lane so
        # outcome consumers never need to special-case hybrid stores.
        outcome.scheme_chosen = self.scheme_name
        return outcome

    #: Alias matching the scheme-level API.
    query = search

    # -- persistence ----------------------------------------------------------

    def _dump_blob(self) -> bytes:
        """The raw (unwrapped) checkpoint bytes — shared by
        :meth:`save` and the per-lane serialization of
        :meth:`HybridRangeStore.save`."""
        self.flush()
        return b"".join(
            [
                _STORE_MAGIC,
                len(self.scheme_name).to_bytes(2, "big"),
                self.scheme_name.encode(),
                self.domain_size.to_bytes(8, "big"),
                self._scheme_seq.to_bytes(8, "big"),
                _manager.dump_manager(self._manager),
            ]
        )

    def save(self, path, passphrase: "str | None" = None) -> None:
        """Checkpoint the whole store (keys included!) to one file.

        Always pass a ``passphrase`` outside of tests — the snapshot
        contains every secret key.
        """
        blob = self._dump_blob()
        if passphrase is not None:
            blob = keystore.wrap(blob, passphrase)
        with open(path, "wb") as fh:
            fh.write(blob)

    @classmethod
    def load(
        cls,
        path,
        passphrase: "str | None" = None,
        *,
        backend: "StorageBackend | None" = None,
        rng: "random.Random | None" = None,
        **scheme_kwargs,
    ) -> "RangeStore":
        """Reopen a checkpoint, rehydrating into ``backend`` (or memory)."""
        with open(path, "rb") as fh:
            blob = fh.read()
        if passphrase is not None:
            blob = keystore.unwrap(blob, passphrase)
        return cls._restore_blob(
            blob, backend=backend, rng=rng, **scheme_kwargs
        )

    @classmethod
    def _restore_blob(
        cls,
        blob: bytes,
        *,
        backend: "StorageBackend | None" = None,
        rng: "random.Random | None" = None,
        **scheme_kwargs,
    ) -> "RangeStore":
        """Rebuild a store from :meth:`_dump_blob` output."""
        if not blob.startswith(_STORE_MAGIC):
            raise IntegrityError("not a RangeStore snapshot")
        offset = len(_STORE_MAGIC)
        name_len = int.from_bytes(blob[offset : offset + 2], "big")
        offset += 2
        scheme_name = blob[offset : offset + name_len].decode()
        offset += name_len
        domain_size = int.from_bytes(blob[offset : offset + 8], "big")
        scheme_seq = int.from_bytes(blob[offset + 8 : offset + 16], "big")
        offset += 16
        if backend is not None:
            # The checkpoint is the source of truth: clear any state a
            # previous incarnation of this store left in the backend —
            # one transaction, so a failed load can't leave a half-wiped
            # backend behind.
            with backend.transaction():
                for ns in backend.namespaces():
                    if ns.startswith(("scheme/", "mgr/")):
                        backend.drop(ns)
        store = cls(
            scheme=scheme_name,
            domain_size=domain_size,
            backend=backend,
            rng=rng,
            _adopt_backend=True,
            **scheme_kwargs,
        )
        store._scheme_seq = scheme_seq

        def scheme_backend():
            store._scheme_seq += 1
            if backend is None:
                return None
            return PrefixedBackend(backend, f"scheme/{store._scheme_seq}/")

        store._manager = _manager.restore_manager(
            blob[offset:],
            store._make_scheme,
            rng=rng,
            backend=(
                PrefixedBackend(backend, "mgr/") if backend is not None else None
            ),
            scheme_backend_factory=scheme_backend,
            # Restored indexes search through the same engine future
            # batches will (scheme_kwargs carries any executor=).
            executor=scheme_kwargs.get("executor"),
        )
        return store

    #: Readable alias for the common reopen flow.
    open_snapshot = load

    def close(self) -> None:
        """Release backend resources (file handles, connections)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "RangeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    @property
    def pending_ops(self) -> int:
        """Operations buffered but not yet flushed into an index."""
        return len(self._pending)

    @property
    def active_indexes(self) -> int:
        """Live static indexes in the LSM forest."""
        return self._manager.active_indexes

    def index_bytes(self) -> int:
        """Combined EDB footprint across active indexes."""
        return self._manager.total_index_bytes()

    @property
    def stats(self):
        """Batch/consolidation bookkeeping from the update manager."""
        return self._manager.stats

    @property
    def consolidations(self) -> int:
        """Hierarchical merges performed so far (monotone counter)."""
        return self._manager.stats.consolidations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RangeStore(scheme={self.scheme_name!r}, m={self.domain_size}, "
            f"indexes={self.active_indexes}, pending={self.pending_ops})"
        )


class HybridRangeStore:
    """Adaptive store: several scheme lanes, one cost-picked per query.

    The paper's Table 1 trade-off made operational: the store maintains
    one full :class:`RangeStore` lane per configured scheme — same
    plaintext ingest, independent keys and encrypted indexes, each on
    its own slice of the shared backend — and routes every query
    through a :class:`~repro.exec.dispatch.CostDispatcher` that scores
    all lanes with :func:`~repro.exec.plan.plan_range` and runs only
    the cheapest.  Writes fan out to every lane (the storage overhead
    *is* the price of adaptivity); reads pay one lane plus a few
    microseconds of planning.

    The dispatcher is backend-aware (it reads the backend's advertised
    ``probe_batch`` and, after :meth:`calibrate`, measured unit costs)
    and data-aware (an owner-side :class:`~repro.exec.dispatch.ValueHistogram`
    prices SRC false positives under skew — the owner sees every
    plaintext value it encrypts, so the sketch adds zero leakage).

    Usage::

        from repro import HybridRangeStore

        store = HybridRangeStore(domain_size=1 << 16)   # brc + src lanes
        store.insert_many((i, v) for i, v in data)
        store.calibrate()                  # fit unit costs to the backend
        outcome = store.search(lo, hi)
        outcome.scheme_chosen              # e.g. "logarithmic-src"
        outcome.plans_considered           # ((scheme, est_seconds), ...)
        store.dispatch = "logarithmic-brc"  # pin a lane ("auto" unpins)

    Each query's :class:`~repro.core.scheme.QueryOutcome` carries the
    decision (``scheme_chosen``/``plans_considered``/``est_cost_chosen``).
    :meth:`save`/:meth:`load` checkpoint the whole store — every lane's
    keys and indexes, the value histogram, the calibrated cost model
    and any pinned dispatch — to one file.
    """

    def __init__(
        self,
        *,
        domain_size: int,
        schemes: "tuple[str, ...] | list[str] | None" = None,
        backend: "StorageBackend | None" = None,
        dispatch: str = "auto",
        consolidation_step: int = 4,
        rng: "random.Random | None" = None,
        cost_model=None,
        _lane_blobs: "dict[str, bytes] | None" = None,
        **scheme_kwargs,
    ) -> None:
        from repro.exec.dispatch import (
            DEFAULT_HYBRID_SCHEMES,
            CostDispatcher,
            ValueHistogram,
        )

        schemes = tuple(schemes) if schemes is not None else DEFAULT_HYBRID_SCHEMES
        if len(schemes) < 2 or len(set(schemes)) != len(schemes):
            raise IndexStateError(
                "a hybrid store needs >= 2 distinct scheme lanes (no "
                "duplicates); use RangeStore for a single scheme"
            )
        self.domain_size = domain_size
        self.schemes = schemes
        self._backend = backend
        self._lanes: "dict[str, RangeStore]" = {}
        for name in schemes:
            kwargs = dict(scheme_kwargs)
            if name.startswith("constant"):
                # Lanes share one query history by construction; the
                # intersection guard is the application's concern here.
                kwargs.setdefault("intersection_policy", "allow")
            lane_backend = (
                PrefixedBackend(backend, f"lane/{name}/")
                if backend is not None
                else None
            )
            if _lane_blobs is not None:
                # Checkpoint restore (:meth:`load`): the lane comes back
                # from its serialized manager state, adopting whatever
                # the backend slice held.
                restored = RangeStore._restore_blob(
                    _lane_blobs[name],
                    backend=lane_backend,
                    rng=rng,
                    **kwargs,
                )
                if restored.scheme_name != name:
                    raise IntegrityError(
                        f"hybrid snapshot lane {name!r} carries a "
                        f"{restored.scheme_name!r} store"
                    )
                self._lanes[name] = restored
            else:
                self._lanes[name] = RangeStore.open(
                    name,
                    domain_size=domain_size,
                    backend=lane_backend,
                    consolidation_step=consolidation_step,
                    rng=rng,
                    **kwargs,
                )
        self.histogram = ValueHistogram(domain_size)
        self._dispatcher = CostDispatcher(
            domain_size,
            schemes,
            cost_model=cost_model,
            probe_batch=getattr(backend, "probe_batch", 1),
            density=self.histogram.expected_matches,
            forced=dispatch,
        )
        #: The decision behind the most recent :meth:`search`.
        self.last_decision = None

    # -- dispatch control ----------------------------------------------------

    @property
    def dispatch(self) -> str:
        """``"auto"`` or the lane every query is currently pinned to."""
        from repro.exec.dispatch import HINT_AUTO

        return self._dispatcher.forced or HINT_AUTO

    @dispatch.setter
    def dispatch(self, mode: str) -> None:
        self._dispatcher.force(mode)

    @property
    def dispatcher(self):
        """The live :class:`~repro.exec.dispatch.CostDispatcher`."""
        return self._dispatcher

    def calibrate(self, **kwargs):
        """Fit the cost model to this store's backend (measured probe run)."""
        return self._dispatcher.recalibrate(self._backend, **kwargs)

    # -- writes (fan out to every lane) --------------------------------------

    def insert(self, record_id: int, value: int) -> None:
        """Buffer an insertion into every lane."""
        self.histogram.add(value)
        for lane in self._lanes.values():
            lane.insert(record_id, value)

    def delete(self, record_id: int, value: int) -> None:
        """Buffer a deletion tombstone into every lane."""
        self.histogram.remove(value)
        for lane in self._lanes.values():
            lane.delete(record_id, value)

    def insert_many(self, records) -> None:
        """Buffer many insertions at once."""
        for record_id, value in records:
            self.insert(record_id, value)

    def apply_ops(self, ops: "Iterable[UpdateOp]") -> None:
        """Buffer already-materialized operations (wire ingest path).

        Routed through :meth:`insert`/:meth:`delete` so the owner-side
        value histogram the dispatcher prices SRC lanes with stays in
        sync with the fanned-out lane state.
        """
        for op in ops:
            if op.kind is OpKind.INSERT:
                self.insert(op.record_id, op.value)
            else:
                self.delete(op.record_id, op.value)

    def flush(self) -> None:
        """Flush every lane's buffered batch."""
        for lane in self._lanes.values():
            lane.flush()

    # -- reads ---------------------------------------------------------------

    def search(self, lo: int, hi: int) -> QueryOutcome:
        """Dispatch ``[lo, hi]`` to the cheapest lane and run it there."""
        self.flush()
        decision = self._dispatcher.choose(lo, hi)
        self.last_decision = decision
        outcome = self._lanes[decision.scheme].search(lo, hi)
        outcome.scheme_chosen = decision.scheme
        outcome.plans_considered = decision.summary()
        outcome.est_cost_chosen = decision.est_cost
        return outcome

    #: Alias matching the scheme-level API.
    query = search

    # -- persistence ----------------------------------------------------------

    def save(self, path, passphrase: "str | None" = None) -> None:
        """Checkpoint every lane plus the dispatch state to one file.

        The snapshot carries each lane's full :class:`RangeStore` state
        (keys included — pass a ``passphrase``), the owner-side value
        histogram, the cost model (calibrated weights survive
        restarts), and a pinned dispatch lane if any.
        """
        from repro.io.snapshot import _chunk

        self.flush()
        model = self._dispatcher.cost_model
        model_blob = _COST_MODEL_PACK.pack(
            model.expand_seconds,
            model.derive_seconds,
            model.probe_seconds,
            model.round_seconds,
            model.fetch_seconds,
            model.rtt_seconds,
            model.offload_crossover,
            model.expand_offload_seconds,
            model.derive_offload_seconds,
            1 if model.calibrated else 0,
        )
        histogram_blob = b"".join(
            [self.histogram.buckets.to_bytes(8, "big")]
            + [c.to_bytes(8, "big") for c in self.histogram.dump_counts()]
        )
        parts = [
            _HYBRID_MAGIC,
            _chunk(self.domain_size.to_bytes(8, "big")),
            _chunk(self.dispatch.encode()),
            _chunk(model_blob),
            _chunk(histogram_blob),
            _chunk(len(self.schemes).to_bytes(8, "big")),
        ]
        for name in self.schemes:
            parts.append(_chunk(name.encode()))
            parts.append(_chunk(self._lanes[name]._dump_blob()))
        blob = b"".join(parts)
        if passphrase is not None:
            blob = keystore.wrap(blob, passphrase)
        with open(path, "wb") as fh:
            fh.write(blob)

    @classmethod
    def load(
        cls,
        path,
        passphrase: "str | None" = None,
        *,
        backend: "StorageBackend | None" = None,
        rng: "random.Random | None" = None,
        **scheme_kwargs,
    ) -> "HybridRangeStore":
        """Reopen a hybrid checkpoint, rehydrating into ``backend``.

        Every lane restores onto its own ``lane/<scheme>/`` slice of
        the backend (whatever a previous incarnation left there is
        wiped, per lane); the dispatcher comes back with the snapshot's
        histogram, cost model and pin, so the very first query after a
        restart routes exactly as the last one before it.
        """
        from repro.exec.dispatch import CostModel
        from repro.io.snapshot import _Reader

        with open(path, "rb") as fh:
            blob = fh.read()
        if passphrase is not None:
            blob = keystore.unwrap(blob, passphrase)
        if not blob.startswith(_HYBRID_MAGIC):
            raise IntegrityError("not a HybridRangeStore snapshot")
        reader = _Reader(blob[len(_HYBRID_MAGIC) :])
        domain_size = int.from_bytes(reader.chunk(), "big")
        dispatch = reader.chunk().decode()
        fields = _COST_MODEL_PACK.unpack(reader.chunk())
        cost_model = CostModel(
            expand_seconds=fields[0],
            derive_seconds=fields[1],
            probe_seconds=fields[2],
            round_seconds=fields[3],
            fetch_seconds=fields[4],
            rtt_seconds=fields[5],
            offload_crossover=fields[6],
            expand_offload_seconds=fields[7],
            derive_offload_seconds=fields[8],
            calibrated=bool(fields[9]),
        )
        histogram_blob = reader.chunk()
        buckets = int.from_bytes(histogram_blob[:8], "big")
        if len(histogram_blob) != 8 + 8 * buckets:
            # Without this check a truncated chunk would decode as
            # zeroed trailing buckets and silently misprice dispatch.
            raise IntegrityError("hybrid snapshot histogram truncated")
        counts = [
            int.from_bytes(histogram_blob[8 + 8 * i : 16 + 8 * i], "big")
            for i in range(buckets)
        ]
        lane_count = int.from_bytes(reader.chunk(), "big")
        lane_blobs: "dict[str, bytes]" = {}
        schemes: "list[str]" = []
        for _ in range(lane_count):
            name = reader.chunk().decode()
            schemes.append(name)
            lane_blobs[name] = reader.chunk()
        if not reader.done():
            raise IntegrityError("trailing bytes after hybrid snapshot")
        store = cls(
            domain_size=domain_size,
            schemes=tuple(schemes),
            backend=backend,
            dispatch=dispatch,
            rng=rng,
            cost_model=cost_model,
            _lane_blobs=lane_blobs,
            **scheme_kwargs,
        )
        store.histogram.restore_counts(counts)
        return store

    #: Readable alias for the common reopen flow.
    open_snapshot = load

    # -- introspection & lifecycle -------------------------------------------

    def lane(self, scheme: str) -> RangeStore:
        """The underlying per-scheme store (diagnostics/tests)."""
        return self._lanes[scheme]

    @property
    def pending_ops(self) -> int:
        """Operations buffered but not yet flushed (max across lanes)."""
        return max(lane.pending_ops for lane in self._lanes.values())

    @property
    def active_indexes(self) -> int:
        """Live static indexes (max across lanes; lanes ingest the same
        batches, so their LSM forests are the same shape)."""
        return max(lane.active_indexes for lane in self._lanes.values())

    @property
    def consolidations(self) -> int:
        """Hierarchical merges performed so far, summed over lanes."""
        return sum(lane.consolidations for lane in self._lanes.values())

    def index_bytes(self) -> "dict[str, int]":
        """Per-lane EDB footprint — the storage price of adaptivity."""
        return {name: lane.index_bytes() for name, lane in self._lanes.items()}

    def close(self) -> None:
        """Release backend resources (shared backend closed once)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "HybridRangeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HybridRangeStore(schemes={list(self.schemes)}, "
            f"m={self.domain_size}, dispatch={self.dispatch!r})"
        )
