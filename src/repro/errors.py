"""Exception hierarchy shared across the RSSE library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing the precise failure mode when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DomainError(ReproError, ValueError):
    """A value or range does not fit the configured attribute domain."""


class InvalidRangeError(DomainError):
    """A query range is malformed (e.g. ``lo > hi`` or out of domain)."""


class KeyError_(ReproError):
    """A cryptographic key has the wrong size or type.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`, which has entirely different semantics.
    """


class TokenError(ReproError):
    """A search token is malformed, truncated, or from a foreign key."""


class IntegrityError(ReproError):
    """Authenticated decryption failed: the ciphertext was tampered with."""


class QueryIntersectionError(ReproError):
    """Constant-BRC/URC received a query intersecting an earlier query.

    The paper proves the Constant schemes secure only for non-intersecting
    adaptive queries (an inherent DPRF limitation); the client enforces the
    constraint at the application level and raises this error.
    """


class IndexStateError(ReproError):
    """An operation was issued against an index in the wrong lifecycle
    state (e.g. searching before :meth:`build_index`)."""


class UpdateError(ReproError):
    """The batch-update manager was driven with inconsistent operations."""


class TransportError(ReproError):
    """A network transport failed: connect/reconnect exhausted, a
    request timed out, or the peer vanished mid-exchange."""


class ClusterError(TransportError):
    """A cluster operation failed after exhausting a shard's retries.

    Raised by the scatter-gather router when one shard lane stays
    unreachable (or keeps failing) through its bounded backoff budget —
    the cluster-level analogue of :class:`TransportError`, naming the
    shard so operators know *which* node to bootstrap or replace.
    """


class StaleTopologyError(ClusterError):
    """A shard map older than (or conflicting with) the router's current
    one was applied.  Topology changes are versioned precisely so a
    router can refuse to regress to a map that no longer describes the
    cluster."""


class FramingError(TransportError):
    """The byte stream does not frame: a garbage or oversized length
    header, or trailing bytes that can never complete a frame.

    Framing errors are connection-fatal by design — once the stream
    position is untrustworthy, every later byte is too — but they must
    never take down the server or any *other* connection.
    """


class RemoteError(ReproError):
    """The server answered with an error the client cannot map onto a
    more specific :class:`ReproError` subclass (e.g. an internal server
    failure, or an error code from a newer peer)."""
