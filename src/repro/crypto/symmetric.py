"""Semantically secure symmetric encryption.

The paper encrypts tuples and index payloads with AES-128-CBC via
JavaX.crypto.  This module provides the same *primitive class* — an
IND-CPA secure symmetric cipher with optional authentication — behind a
single small API:

``SemanticCipher``
    Randomized encryption (fresh nonce per call) in encrypt-then-MAC
    composition.  Uses AES-128-CTR from the locally installed
    ``cryptography`` wheel when importable; otherwise falls back to a
    pure-stdlib stream cipher whose keystream is HMAC-SHA-512 in counter
    mode (a PRF in CTR mode is the textbook IND-CPA construction).

The fallback keeps the library runnable on a bare CPython, and the two
backends are byte-compatible in *shape* (nonce ‖ ciphertext ‖ tag), so
index-size measurements do not depend on which backend is active.

Substitution note (DESIGN.md §5): CBC vs CTR is irrelevant to every
experiment in the paper — both are per-byte symmetric encryption and all
schemes share the same cipher, so relative comparisons are preserved.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.crypto.prf import KEY_LEN, derive_subkey
from repro.errors import IntegrityError, KeyError_

try:  # pragma: no cover - exercised implicitly by the active backend
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    _HAVE_CRYPTOGRAPHY = True
except Exception:  # pragma: no cover
    _HAVE_CRYPTOGRAPHY = False

#: Nonce length in bytes (AES block / CTR IV size).
NONCE_LEN = 16

#: Authentication tag length in bytes (truncated HMAC-SHA-256).
TAG_LEN = 16


def _aes_ctr_xor(key16: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-128-CTR keystream XOR via the ``cryptography`` backend."""
    cipher = Cipher(algorithms.AES(key16), modes.CTR(nonce))
    enc = cipher.encryptor()
    return enc.update(data) + enc.finalize()


def _hmac_ctr_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """PRF-in-CTR-mode keystream XOR using HMAC-SHA-512 (stdlib only)."""
    out = bytearray(len(data))
    block = 64  # SHA-512 digest size
    for i in range(0, len(data), block):
        counter = (i // block).to_bytes(8, "big")
        ks = hmac.new(key, nonce + counter, hashlib.sha512).digest()
        chunk = data[i : i + block]
        for j, byte in enumerate(chunk):
            out[i + j] = byte ^ ks[j]
    return bytes(out)


class SemanticCipher:
    """Randomized authenticated encryption keyed by a 32-byte master key.

    The master key is split (via the PRF) into an encryption subkey and a
    MAC subkey, so a single key suffices at the call site.

    Parameters
    ----------
    key:
        Master key of :data:`repro.crypto.prf.KEY_LEN` bytes.
    authenticated:
        When ``True`` (default) every ciphertext carries a 16-byte
        encrypt-then-MAC tag and :meth:`decrypt` raises
        :class:`~repro.errors.IntegrityError` on tampering.  Schemes that
        only need IND-CPA (e.g. EDB payloads already bound to labels) may
        disable it to shave ``TAG_LEN`` bytes per entry.
    rng:
        Optional ``randbytes``-bearing source for nonces; defaults to the
        OS CSPRNG.  Injected by tests for determinism.
    """

    def __init__(self, key: bytes, *, authenticated: bool = True, rng=None) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) != KEY_LEN:
            raise KeyError_(f"cipher key must be {KEY_LEN} bytes")
        key = bytes(key)
        self._enc_key = derive_subkey(key, b"semantic-cipher.enc")
        self._mac_key = derive_subkey(key, b"semantic-cipher.mac")
        self._authenticated = authenticated
        self._rng = rng

    # -- internals -------------------------------------------------------

    def _nonce(self) -> bytes:
        if self._rng is None:
            return secrets.token_bytes(NONCE_LEN)
        return self._rng.randbytes(NONCE_LEN)

    def _keystream_xor(self, nonce: bytes, data: bytes) -> bytes:
        if _HAVE_CRYPTOGRAPHY:
            return _aes_ctr_xor(self._enc_key[:16], nonce, data)
        return _hmac_ctr_xor(self._enc_key, nonce, data)

    def _tag(self, nonce: bytes, ct: bytes) -> bytes:
        return hmac.new(self._mac_key, nonce + ct, hashlib.sha256).digest()[:TAG_LEN]

    # -- public API ------------------------------------------------------

    @property
    def overhead(self) -> int:
        """Ciphertext expansion in bytes over the plaintext length."""
        return NONCE_LEN + (TAG_LEN if self._authenticated else 0)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt with a fresh nonce; layout ``nonce ‖ ct [‖ tag]``."""
        nonce = self._nonce()
        ct = self._keystream_xor(nonce, bytes(plaintext))
        if self._authenticated:
            return nonce + ct + self._tag(nonce, ct)
        return nonce + ct

    def decrypt(self, blob: bytes) -> bytes:
        """Decrypt a blob produced by :meth:`encrypt`.

        Raises
        ------
        IntegrityError
            If the blob is too short or (in authenticated mode) the MAC
            does not verify.
        """
        blob = bytes(blob)
        tag_len = TAG_LEN if self._authenticated else 0
        if len(blob) < NONCE_LEN + tag_len:
            raise IntegrityError("ciphertext too short")
        nonce = blob[:NONCE_LEN]
        if self._authenticated:
            ct, tag = blob[NONCE_LEN:-TAG_LEN], blob[-TAG_LEN:]
            if not hmac.compare_digest(tag, self._tag(nonce, ct)):
                raise IntegrityError("MAC verification failed")
        else:
            ct = blob[NONCE_LEN:]
        return self._keystream_xor(nonce, ct)


def active_backend() -> str:
    """Name of the cipher backend in use (``aes-ctr`` or ``hmac-ctr``)."""
    return "aes-ctr" if _HAVE_CRYPTOGRAPHY else "hmac-ctr"
