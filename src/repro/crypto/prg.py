"""GGM length-doubling pseudorandom generator.

The DPRF of Kiayias et al. (CCS'13), which the Constant-BRC/URC schemes
rely on, is built from the seminal GGM construction: a PRG
``G : {0,1}^λ → {0,1}^{2λ}`` whose output splits into halves ``G0`` and
``G1``.  Successive applications of ``G0``/``G1`` along the bit path of a
domain value turn a single seed into an exponentially large PRF tree.

Following the paper's implementation notes we realize ``G`` with
HMAC-SHA-512: the 64-byte digest of the seed keyed on a fixed label
splits exactly into two λ = 32-byte halves.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.prf import KEY_LEN
from repro.errors import KeyError_

#: Seed length λ in bytes.  One HMAC-SHA-512 call emits exactly 2λ bytes.
SEED_LEN = KEY_LEN

_G_LABEL = b"repro.ggm.prg"


def _expand(seed: bytes) -> bytes:
    if not isinstance(seed, (bytes, bytearray)) or len(seed) != SEED_LEN:
        raise KeyError_(f"GGM seed must be {SEED_LEN} bytes")
    # One-shot HMAC fast path: a delegated range expands one PRG call
    # per GGM subtree node, so per-call construction overhead compounds.
    return hmac.digest(bytes(seed), _G_LABEL, hashlib.sha512)


def g(seed: bytes) -> tuple[bytes, bytes]:
    """Apply the PRG: return ``(G0(seed), G1(seed))``, each λ bytes."""
    out = _expand(seed)
    return out[:SEED_LEN], out[SEED_LEN:]


def g_many(seeds) -> "list[tuple[bytes, bytes]]":
    """Apply the PRG to many seeds: ``[(G0(s), G1(s)) for s in seeds]``.

    Byte-identical to mapping :func:`g`; exists so bulk callers (the
    crypto kernel's subtree jobs) have an array-in/array-out entry
    point on this module's seam.
    """
    out = []
    for seed in seeds:
        both = _expand(seed)
        out.append((both[:SEED_LEN], both[SEED_LEN:]))
    return out


def g0(seed: bytes) -> bytes:
    """Left half of the PRG output (the ``0`` child in the GGM tree)."""
    return _expand(seed)[:SEED_LEN]


def g1(seed: bytes) -> bytes:
    """Right half of the PRG output (the ``1`` child in the GGM tree)."""
    return _expand(seed)[SEED_LEN:]


def g_bit(seed: bytes, bit: int) -> bytes:
    """Apply ``G_bit``; ``bit`` must be 0 or 1."""
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    out = _expand(seed)
    return out[:SEED_LEN] if bit == 0 else out[SEED_LEN:]


def g_path(seed: bytes, bits: "list[int] | tuple[int, ...]") -> bytes:
    """Apply the PRG along a bit path, most significant bit first.

    ``g_path(k, [b_{ℓ-1}, …, b_0])`` equals
    ``G_{b_0}(…(G_{b_{ℓ-1}}(k)))`` — the GGM evaluation of the value whose
    binary expansion is ``b_{ℓ-1} … b_0`` (paper Section 2.2).
    """
    out = bytes(seed)
    for bit in bits:
        out = g_bit(out, bit)
    return out
