"""Delegatable PRF (DPRF) over the GGM tree (Kiayias et al., CCS'13).

A DPRF lets the secret-key holder hand an untrusted party a *small* set
of intermediate GGM seeds ("tokens") from which that party can derive
the PRF values of every domain point in a delegated range — and nothing
outside it.  The Constant-BRC/URC schemes use exactly this: the owner
ships ``O(log R)`` tokens, the server expands them into the ``R``
leaf-level DPRF values that unlock the matching SSE entries.

Construction (paper Section 2.2): the PRF value of an ℓ-bit domain value
``a_{ℓ-1} … a_0`` is ``G_{a_0}(…(G_{a_{ℓ-1}}(k)))`` — a root-to-leaf
GGM walk.  A token for a dyadic node is the seed at that node of the GGM
tree, paired with the node's level so the receiver knows how many
further expansions produce leaves.  The token-generation function ``T``
decomposes a range with BRC or URC; the evaluation function ``C``
expands tokens to leaf values.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass

from repro.covers.brc import best_range_cover
from repro.covers.dyadic import DomainTree, Node
from repro.covers.urc import uniform_range_cover
from repro.crypto import prg
from repro.errors import InvalidRangeError, KeyError_, TokenError

#: Supported range-covering strategies for token generation.
COVER_BRC = "brc"
COVER_URC = "urc"


@dataclass(frozen=True)
class DelegationToken:
    """One GGM seed delegating a dyadic subtree.

    ``seed`` is the GGM value at the subtree root; ``level`` is the
    subtree height (0 = the seed *is* a leaf DPRF value).  Deliberately
    carries no positional information — the paper's tokens reveal levels
    but never indexes.
    """

    seed: bytes
    level: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise TokenError(f"token level must be >= 0, got {self.level}")
        if len(self.seed) != prg.SEED_LEN:
            raise TokenError(
                f"token seed must be {prg.SEED_LEN} bytes, got {len(self.seed)}"
            )

    @property
    def leaf_count(self) -> int:
        """Number of leaf DPRF values this token expands to: ``2^level``."""
        return 1 << self.level

    def serialized_size(self) -> int:
        """Wire size in bytes: seed plus a one-byte level tag."""
        return len(self.seed) + 1

    def descriptor(self) -> "tuple[bytes, int]":
        """The token as a plain ``(seed, level)`` descriptor.

        The :mod:`~repro.crypto.kernel` batch currency: descriptors are
        pure data, so a batch of them crosses a process boundary with
        one cheap pickle — no token objects ever ship to workers.
        """
        return (self.seed, self.level)


class GgmDprf:
    """GGM-based DPRF over a domain of ``domain_size`` values.

    Parameters
    ----------
    domain_size:
        Size of the input domain ``{0, …, domain_size-1}``; the GGM tree
        height is ``ceil(log2 domain_size)``.
    """

    def __init__(self, domain_size: int) -> None:
        self.tree = DomainTree(domain_size)
        self.height = self.tree.height

    # -- secret-key-holder operations -------------------------------------

    @staticmethod
    def generate_key(rng=None) -> bytes:
        """Sample a fresh DPRF key (a GGM root seed)."""
        if rng is None:
            return secrets.token_bytes(prg.SEED_LEN)
        return rng.randbytes(prg.SEED_LEN)

    def evaluate(self, key: bytes, value: int) -> bytes:
        """Direct DPRF evaluation ``f_k(value)`` by the key holder."""
        self._check_key(key)
        return prg.g_path(key, self.tree.value_bits(value))

    def node_seed(self, key: bytes, node: Node) -> bytes:
        """GGM seed of an arbitrary dyadic node (key holder only).

        The path to a node at level ℓ is the top ``height - ℓ`` bits of
        any value below it.
        """
        self._check_key(key)
        if not self.tree.node_in_tree(node):
            raise InvalidRangeError(f"{node!r} outside GGM tree of height {self.height}")
        depth = self.height - node.level
        bits = [(node.index >> i) & 1 for i in range(depth - 1, -1, -1)]
        return prg.g_path(key, bits)

    def delegate(
        self,
        key: bytes,
        lo: int,
        hi: int,
        *,
        cover: str = COVER_BRC,
        shuffle_rng: "random.Random | None" = None,
    ) -> list[DelegationToken]:
        """Token generation ``T``: delegate the range ``[lo, hi]``.

        Decomposes the range with BRC or URC, emits one token per cover
        node, and randomly permutes the tokens (paper: the trapdoor hides
        node order).

        Parameters
        ----------
        cover:
            ``"brc"`` or ``"urc"``.
        shuffle_rng:
            Randomness for the permutation; defaults to a fresh
            :class:`random.SystemRandom`-seeded shuffle.  Tests inject a
            seeded generator.
        """
        self.tree.check_range(lo, hi)
        if cover == COVER_BRC:
            nodes = best_range_cover(lo, hi)
        elif cover == COVER_URC:
            nodes = uniform_range_cover(lo, hi)
        else:
            raise ValueError(f"unknown cover strategy {cover!r}")
        tokens = [DelegationToken(self.node_seed(key, n), n.level) for n in nodes]
        rng = shuffle_rng if shuffle_rng is not None else random.SystemRandom()
        rng.shuffle(tokens)
        return tokens

    # -- untrusted-party operations ----------------------------------------

    @staticmethod
    def iter_leaves(token: DelegationToken):
        """Lazily yield a token's leaf DPRF values, left to right.

        Adjacent leaves share their path prefix inside the delegated
        subtree; the walk keeps the current root-to-node path on an
        explicit stack and re-derives only the suffix below the common
        ancestor when stepping from one leaf to the next — never a leaf
        from the subtree root.  Each internal seed is expanded exactly
        once (``2^level - 1`` PRG calls total, the information-theoretic
        floor), and memory stays ``O(level)`` instead of materializing
        whole tree levels, which is what lets the exec engine stream
        4096-leaf expansions without building intermediate lists.
        """
        stack = [(token.seed, token.level)]
        while stack:
            seed, level = stack.pop()
            if level == 0:
                yield seed
                continue
            left, right = prg.g(seed)
            # Right child pushed first so the left subtree pops first:
            # in-subtree left-to-right order, same as the old BFS.
            stack.append((right, level - 1))
            stack.append((left, level - 1))

    @classmethod
    def expand_token(cls, token: DelegationToken, *, kernel=None) -> list[bytes]:
        """Evaluation ``C``: expand one token to its leaf DPRF values.

        Anyone holding the token can do this — ``G`` is public and the
        level says how deep to recurse.  Output order is the in-subtree
        left-to-right order, which carries no global position.  With a
        :class:`~repro.crypto.kernel.CryptoKernel` the expansion runs
        as one kernel batch (byte-identical output).
        """
        if kernel is not None:
            return kernel.expand_subtrees([token.descriptor()])[0]
        return list(cls.iter_leaves(token))

    @classmethod
    def expand_all(
        cls, tokens: "list[DelegationToken]", *, kernel=None
    ) -> list[bytes]:
        """Expand a token vector into the concatenated leaf values.

        With a kernel the whole vector rides one batch — the shape the
        pooled backend can chunk across workers.
        """
        if kernel is not None:
            values: list[bytes] = []
            for leaves in kernel.expand_subtrees(
                [token.descriptor() for token in tokens]
            ):
                values.extend(leaves)
            return values
        values = []
        for token in tokens:
            values.extend(cls.expand_token(token))
        return values

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) != prg.SEED_LEN:
            raise KeyError_(f"DPRF key must be {prg.SEED_LEN} bytes")
