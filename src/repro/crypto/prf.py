"""Pseudorandom function (PRF) substrate.

The paper implements PRF and GGM evaluations with HMAC-SHA-512 and hash
computations with SHA-1 (Section 8, Setup).  We mirror that choice: the
PRF family here is HMAC-SHA-512 keyed with a ``KEY_LEN``-byte secret, and
the convenience digest used for non-cryptographic fingerprinting is SHA-1.

All functions operate on :class:`bytes`.  Higher layers are responsible
for canonical serialization of structured inputs (see
:mod:`repro.sse.encoding`).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.errors import KeyError_

#: Length, in bytes, of PRF keys and of GGM seeds (λ = 256 bits doubled to
#: the 64-byte HMAC-SHA-512 block output; we keep full 32-byte security).
KEY_LEN = 32

#: Length, in bytes, of a single PRF output (SHA-512 digest size).
PRF_OUT_LEN = 64


def generate_key(rng: "secrets.SystemRandom | None" = None) -> bytes:
    """Sample a fresh uniformly random PRF key.

    Parameters
    ----------
    rng:
        Optional :class:`random.Random`-compatible source with a
        ``randbytes`` method.  When ``None`` (the default and the only
        choice appropriate for production keys), the operating system
        CSPRNG is used via :func:`secrets.token_bytes`.  Tests inject a
        seeded generator for reproducibility.
    """
    if rng is None:
        return secrets.token_bytes(KEY_LEN)
    return rng.randbytes(KEY_LEN)


def check_key(key: bytes) -> bytes:
    """Validate a PRF key, returning it unchanged.

    Raises
    ------
    KeyError_
        If ``key`` is not ``bytes`` of length :data:`KEY_LEN`.
    """
    if not isinstance(key, (bytes, bytearray)):
        raise KeyError_(f"PRF key must be bytes, got {type(key).__name__}")
    if len(key) != KEY_LEN:
        raise KeyError_(f"PRF key must be {KEY_LEN} bytes, got {len(key)}")
    return bytes(key)


def prf(key: bytes, message: bytes) -> bytes:
    """Evaluate the PRF: ``HMAC-SHA-512(key, message)`` (64 bytes).

    Uses the one-shot :func:`hmac.digest` fast path — identical output
    to ``hmac.new(...).digest()`` without per-call object construction,
    which matters at exec-engine scale (thousands of evaluations per
    delegated range query).
    """
    check_key(key)
    return hmac.digest(key, message, hashlib.sha512)


def prf_many(key: bytes, messages) -> "list[bytes]":
    """Bulk PRF evaluation under one key, in message order.

    The array-in/array-out counterpart of :func:`prf`: the key is
    validated once and each evaluation takes the same one-shot
    ``hmac.digest`` path, so output is byte-identical to mapping
    :func:`prf`.  The batch shape is what lets
    :class:`~repro.crypto.kernel.PooledKernel` ship the key to a worker
    once per chunk instead of once per message.
    """
    check_key(key)
    return [hmac.digest(key, message, hashlib.sha512) for message in messages]


def prf_truncated(key: bytes, message: bytes, out_len: int) -> bytes:
    """Evaluate the PRF and truncate the output to ``out_len`` bytes.

    Truncating an HMAC output preserves pseudorandomness; this is the
    standard way to obtain short labels (e.g. 16-byte EDB labels) from a
    64-byte digest without a second primitive.
    """
    if not 0 < out_len <= PRF_OUT_LEN:
        raise ValueError(f"out_len must be in (0, {PRF_OUT_LEN}], got {out_len}")
    return prf(key, message)[:out_len]


def derive_subkey(key: bytes, purpose: bytes) -> bytes:
    """Derive an independent :data:`KEY_LEN`-byte subkey for ``purpose``.

    Distinct ``purpose`` strings yield computationally independent keys,
    letting a scheme split one master key into per-component keys (e.g.
    one for EDB labels, one for value encryption) without storing extra
    key material.
    """
    return prf(key, b"repro.subkey|" + purpose)[:KEY_LEN]


def fingerprint(data: bytes) -> bytes:
    """Non-secret SHA-1 fingerprint (the paper's auxiliary hash)."""
    return hashlib.sha1(data).digest()
