"""Cryptographic substrate: PRF, GGM PRG, DPRF, symmetric encryption.

These are the only primitives the paper's constructions need — all
schemes are built from PRF evaluations (HMAC-SHA-512), the GGM
pseudorandom generator, the delegatable PRF of Kiayias et al., and an
IND-CPA symmetric cipher.
"""

from repro.crypto.dprf import COVER_BRC, COVER_URC, DelegationToken, GgmDprf
from repro.crypto.kernel import (
    CryptoKernel,
    PooledKernel,
    SerialKernel,
    configure_default_kernel,
    default_kernel,
    make_kernel,
)
from repro.crypto.prf import (
    KEY_LEN,
    PRF_OUT_LEN,
    derive_subkey,
    fingerprint,
    generate_key,
    prf,
    prf_many,
    prf_truncated,
)
from repro.crypto.prg import SEED_LEN, g, g0, g1, g_bit, g_many, g_path
from repro.crypto.symmetric import NONCE_LEN, TAG_LEN, SemanticCipher, active_backend

__all__ = [
    "COVER_BRC",
    "COVER_URC",
    "CryptoKernel",
    "DelegationToken",
    "GgmDprf",
    "KEY_LEN",
    "NONCE_LEN",
    "PRF_OUT_LEN",
    "PooledKernel",
    "SEED_LEN",
    "SemanticCipher",
    "SerialKernel",
    "TAG_LEN",
    "active_backend",
    "configure_default_kernel",
    "default_kernel",
    "derive_subkey",
    "fingerprint",
    "g",
    "g0",
    "g1",
    "g_bit",
    "g_many",
    "g_path",
    "generate_key",
    "make_kernel",
    "prf",
    "prf_many",
    "prf_truncated",
]
