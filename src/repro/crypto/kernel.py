"""Batch-first crypto kernel: the bulk PRF/GGM evaluation seam.

Every crypto hot path in the engine — GGM subtree expansion, leaf
subkey derivation, Π_bas label derivation — is GIL-bound: each unit of
work is one small-input ``hmac.digest`` holding the GIL, so thread
pools cannot scale it and a single server caps out regardless of
client count (the PR-3/PR-5 ceiling).  This module turns those paths
into *batches* behind one pluggable API so the heavy lane can escape
the GIL entirely:

``CryptoKernel``
    The contract.  Batch inputs are plain data — ``(seed, level)``
    subtree *descriptors*, ``(label_key, counter)`` label items, raw
    byte messages — never Python token objects, so a batch can cross a
    process boundary with one cheap pickle.  Batch outputs are arrays
    in input order, byte-identical across backends.

``SerialKernel``
    Today's one-shot ``hmac.digest`` loop, run inline on the calling
    thread.  The zero-overhead default: no pool, no pickling, no
    threshold — just the same loop the engine used to inline.

``PooledKernel``
    A ``ProcessPoolExecutor`` worker lane (``"spawn"`` context — the
    engine runs thread pools and asyncio servers, which fork cannot
    survive).  Large batches are split into per-worker chunks weighted
    by leaf count; keys/descriptors pickle once per chunk and workers
    answer flat byte blobs the parent slices, so serialization cost is
    ~32 bytes per leaf each way.  Batches under the configured
    crossover (``offload_min_units``, in HMAC-equivalents) stay on the
    serial path — process offload has a real floor (~0.5–1 ms
    round-trip) that small batches can never amortize.  A crashed or
    killed worker is detected (``BrokenProcessPool``/pipe errors), the
    pool is torn down for lazy recreation, and the *whole batch* is
    recomputed serially — the query completes, nothing hangs, and the
    fallback is counted.

Capacity simulation (bench-only): ``sim_hmac_s`` models each HMAC as a
fixed service time, exactly like ``net.server``'s ``sim_core_*`` knobs
— serial batches sleep holding one process-global lock (the GIL: one
serial crypto core per process), offloaded batches sleep holding one
of ``workers`` semaphore lanes (independent cores).  Results are still
computed inline and stay byte-identical; only the *time* is simulated.
This is what lets ``bench_crypto_kernel.py`` demonstrate worker-count
scaling on a single-core CI box; real-pool correctness is covered by
the differential tests and the ungated real-lane numbers.

Configuration: ``REPRO_CRYPTO_WORKERS`` (unset/``0`` → serial; ``N`` →
``PooledKernel(N)``), ``REPRO_CRYPTO_CROSSOVER`` (offload threshold in
HMAC-equivalents), ``REPRO_CRYPTO_SIM_HMAC_US`` (simulated µs per
HMAC, bench harnesses only).  The process-wide default kernel mirrors
the default-executor pattern: ``default_kernel()`` /
``configure_default_kernel()``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.crypto import prf as _prf
from repro.crypto import prg as _prg
from repro.obs.tracing import span as _span

#: Environment knobs.
ENV_CRYPTO_WORKERS = "REPRO_CRYPTO_WORKERS"
ENV_CRYPTO_CROSSOVER = "REPRO_CRYPTO_CROSSOVER"
ENV_CRYPTO_SIM = "REPRO_CRYPTO_SIM_HMAC_US"

#: Default offload crossover in HMAC-equivalents.  Below this a batch
#: runs serially even on a pooled kernel: one HMAC is ~2–3 µs while a
#: process round-trip costs hundreds of µs, so the breakeven sits in
#: the few-hundred-HMAC range.  Deployments refit it with
#: :func:`fit_offload_crossover` (the dispatch calibrator does).
DEFAULT_OFFLOAD_MIN_UNITS = 1024

#: Exceptions that mean "the worker lane is gone", not "the batch is
#: bad": a killed/crashed worker surfaces as BrokenProcessPool on the
#: future (or on submit), or as a raw pipe error mid-shuttle.
_POOL_FAILURES = (BrokenProcessPool, OSError, EOFError)

#: One per process: the simulated GIL.  Serial crypto work from any
#: kernel instance serializes here in sim mode, because that is what
#: the real GIL does to real serial HMAC loops.
_SIM_GIL = threading.Lock()


# ---------------------------------------------------------------------------
# Serial batch primitives (shared by SerialKernel, the pooled fallback
# path, and the worker jobs)
# ---------------------------------------------------------------------------


def check_descriptor(descriptor) -> "tuple[bytes, int]":
    """Validate one ``(seed, level)`` subtree descriptor."""
    from repro.crypto.dprf import DelegationToken

    seed, level = descriptor
    # DelegationToken's own validation is the single source of truth
    # for what a well-formed (seed, level) pair is.
    DelegationToken(bytes(seed), int(level))
    return bytes(seed), int(level)


def descriptor_leaves(descriptors) -> int:
    """Total leaf count of a descriptor batch (its unit weight)."""
    return sum(1 << level for _, level in descriptors)


def _serial_expand_blob(descriptors) -> bytes:
    """Concatenated leaf seeds of a descriptor batch (DFS order)."""
    expand = _prg._expand
    seed_len = _prg.SEED_LEN
    out = bytearray()
    for seed, level in descriptors:
        stack = [(seed, level)]
        while stack:
            node, lvl = stack.pop()
            if lvl == 0:
                out += node
                continue
            both = expand(node)
            stack.append((both[seed_len:], lvl - 1))
            stack.append((both[:seed_len], lvl - 1))
    return bytes(out)


def _serial_subkeys_blob(descriptors) -> bytes:
    """Concatenated per-leaf ``label_key‖value_key`` of a batch.

    Fuses expansion and subkey derivation in one pass so the
    intermediate leaf list never materializes — this is the single
    hottest loop in the whole system.
    """
    import hashlib
    import hmac

    from repro.sse.base import TOKEN_DERIVE_LABEL

    expand = _prg._expand
    seed_len = _prg.SEED_LEN
    digest = hmac.digest
    sha512 = hashlib.sha512
    out = bytearray()
    for seed, level in descriptors:
        stack = [(seed, level)]
        while stack:
            node, lvl = stack.pop()
            if lvl == 0:
                # Inline subkeys_from_secret: a GGM leaf is always
                # exactly KEY_LEN bytes, so the pad path never fires.
                out += digest(node, TOKEN_DERIVE_LABEL, sha512)[:32]
                continue
            both = expand(node)
            stack.append((both[seed_len:], lvl - 1))
            stack.append((both[:seed_len], lvl - 1))
    return bytes(out)


#: Lazily bound ``posting_label`` (imported on first use: ``sse`` pulls
#: in :mod:`repro.crypto`, so a module-level import would be circular).
_posting_label = None


def _get_posting_label():
    global _posting_label
    if _posting_label is None:
        from repro.sse.pibas import posting_label

        _posting_label = posting_label
    return _posting_label


def _serial_labels_blob(items) -> bytes:
    """Concatenated posting labels for ``(label_key, counter)`` items."""
    posting_label = _get_posting_label()
    return b"".join(posting_label(key, counter) for key, counter in items)


def _serial_prf_blob(key: bytes, messages) -> bytes:
    """Concatenated PRF outputs of one key over many messages."""
    import hashlib
    import hmac

    return b"".join(hmac.digest(key, msg, hashlib.sha512) for msg in messages)


def _serial_prg_blob(seeds) -> bytes:
    """Concatenated PRG expansions (``G0‖G1``, 64 bytes per seed)."""
    expand = _prg._expand
    return b"".join(expand(seed) for seed in seeds)


def _slice_subkeys(blob: bytes, descriptors) -> "list[tuple]":
    """Regroup a subkey blob into per-descriptor leaf pair tuples."""
    out = []
    offset = 0
    for _, level in descriptors:
        leaves = 1 << level
        pairs = tuple(
            (blob[o : o + 16], blob[o + 16 : o + 32])
            for o in range(offset, offset + 32 * leaves, 32)
        )
        out.append(pairs)
        offset += 32 * leaves
    return out


def _slice_expand(blob: bytes, descriptors) -> "list[list[bytes]]":
    """Regroup a leaf-seed blob into per-descriptor leaf lists."""
    seed_len = _prg.SEED_LEN
    out = []
    offset = 0
    for _, level in descriptors:
        leaves = 1 << level
        out.append(
            [
                blob[o : o + seed_len]
                for o in range(offset, offset + seed_len * leaves, seed_len)
            ]
        )
        offset += seed_len * leaves
    return out


def _chunk_by_weight(items, weights, chunks: int) -> "list[list]":
    """Split ``items`` into <= ``chunks`` contiguous runs of near-equal
    total weight (contiguous so chunk blobs concatenate back in input
    order with no index bookkeeping)."""
    total = sum(weights)
    if chunks <= 1 or len(items) <= 1:
        return [list(items)]
    target = total / chunks
    out: "list[list]" = []
    current: list = []
    acc = 0.0
    for item, weight in zip(items, weights):
        current.append(item)
        acc += weight
        if acc >= target and len(out) < chunks - 1:
            out.append(current)
            current = []
            acc = 0.0
    if current:
        out.append(current)
    return out


# ---------------------------------------------------------------------------
# The kernel contract
# ---------------------------------------------------------------------------


class CryptoKernel:
    """Batch crypto evaluation: array-in/array-out, backend-pluggable.

    Subclasses implement the five bulk primitives; this base owns the
    shared counters, the capacity-simulation plumbing and the stats
    surface every ops layer (server stats frame, cluster health
    rollup) reads.
    """

    #: Backend tag reported in stats ("serial" / "pooled").
    name = "kernel"
    #: Worker-lane width (0 = no offload lane exists).
    workers = 0

    def __init__(self, *, sim_hmac_s: float = 0.0) -> None:
        self.sim_hmac_s = max(0.0, float(sim_hmac_s))
        self._stats_lock = threading.Lock()
        self.batches_offloaded = 0
        self.batches_serial = 0
        self.serial_fallbacks = 0
        self.leaves_expanded = 0
        self.labels_derived = 0

    # -- the five bulk primitives ------------------------------------------

    def prf_many(self, key: bytes, messages) -> "list[bytes]":
        """Bulk PRF: ``[prf(key, m) for m in messages]``, key shipped once."""
        raise NotImplementedError

    def prg_many(self, seeds) -> "list[bytes]":
        """Bulk PRG: the 64-byte ``G0‖G1`` expansion of each seed."""
        raise NotImplementedError

    def expand_subtrees(self, descriptors) -> "list[list[bytes]]":
        """Expand ``(seed, level)`` descriptors to per-descriptor leaf
        arrays (in-subtree left-to-right order, same as
        ``GgmDprf.iter_leaves``)."""
        raise NotImplementedError

    def derive_leaf_subkeys(self, descriptors) -> "list[tuple]":
        """Expand descriptors straight to per-leaf ``(label_key,
        value_key)`` pairs — the exec engine's DPRF hot path, fusing
        the PRG walk with the leaf token derivation."""
        raise NotImplementedError

    def derive_labels(self, items) -> "list[bytes]":
        """Bulk Π_bas label derivation for ``(label_key, counter)``
        items — the coalesced counter walk's per-round batch."""
        raise NotImplementedError

    # -- accounting / simulation -------------------------------------------

    def _traced(self, op: str, units: int):
        """A ``kernel.batch`` span for one bulk call — a shared no-op
        (one contextvar read) outside a traced request, so the
        always-on instrumentation stays inside the overhead gate."""
        return _span("kernel.batch", backend=self.name, op=op, units=units)

    def _count(self, units: int, *, offloaded: bool, leaves: int = 0,
               labels: int = 0, fallback: bool = False) -> None:
        with self._stats_lock:
            if fallback:
                self.serial_fallbacks += 1
                self.batches_serial += 1
            elif offloaded:
                self.batches_offloaded += 1
            else:
                self.batches_serial += 1
            self.leaves_expanded += leaves
            self.labels_derived += labels
        if self.sim_hmac_s and units:
            self._sim_occupy(units, offloaded=offloaded and not fallback)

    def _sim_occupy(self, units: int, *, offloaded: bool) -> None:
        """Model the batch's service time (see module docstring)."""
        with _SIM_GIL:
            time.sleep(units * self.sim_hmac_s)

    def stats(self) -> dict:
        """Counters snapshot for the stats frame / health rollup."""
        with self._stats_lock:
            offloaded = self.batches_offloaded
            serial = self.batches_serial
            stats = {
                "backend": self.name,
                "workers": self.workers,
                "batches_offloaded": offloaded,
                "batches_serial": serial,
                "serial_fallbacks": self.serial_fallbacks,
                "leaves_expanded": self.leaves_expanded,
                "labels_derived": self.labels_derived,
            }
        total = offloaded + serial
        stats["offload_ratio"] = offloaded / total if total else 0.0
        return stats

    def close(self) -> None:
        """Release backend resources (idempotent; serial is a no-op)."""


class SerialKernel(CryptoKernel):
    """The zero-overhead default: inline one-shot ``hmac.digest`` loops.

    Exactly the code the engine inlined before the kernel seam existed
    — no pool, no pickling, no thresholds — so configuring zero
    workers costs nothing over the pre-refactor paths (the ≤1.05×
    bench gate pins this).
    """

    name = "serial"
    workers = 0

    def prf_many(self, key: bytes, messages) -> "list[bytes]":
        messages = list(messages)
        blob = _serial_prf_blob(_prf.check_key(key), messages)
        self._count(len(messages), offloaded=False)
        n = _prf.PRF_OUT_LEN
        return [blob[o : o + n] for o in range(0, len(blob), n)]

    def prg_many(self, seeds) -> "list[bytes]":
        seeds = list(seeds)
        blob = _serial_prg_blob(seeds)
        self._count(len(seeds), offloaded=False)
        return [blob[o : o + 64] for o in range(0, len(blob), 64)]

    def expand_subtrees(self, descriptors) -> "list[list[bytes]]":
        descriptors = [check_descriptor(d) for d in descriptors]
        leaves = descriptor_leaves(descriptors)
        with self._traced("expand_subtrees", leaves):
            blob = _serial_expand_blob(descriptors)
        self._count(leaves, offloaded=False, leaves=leaves)
        return _slice_expand(blob, descriptors)

    def derive_leaf_subkeys(self, descriptors) -> "list[tuple]":
        descriptors = [check_descriptor(d) for d in descriptors]
        leaves = descriptor_leaves(descriptors)
        with self._traced("derive_leaf_subkeys", 2 * leaves):
            blob = _serial_subkeys_blob(descriptors)
        self._count(2 * leaves, offloaded=False, leaves=leaves)
        return _slice_subkeys(blob, descriptors)

    def derive_labels(self, items) -> "list[bytes]":
        # Straight to the output list — the blob round-trip exists for
        # process shuttling, and paying join+reslice here would be pure
        # overhead on the default path the ≤1.05× bench gate protects.
        posting_label = _get_posting_label()
        with self._traced("derive_labels", len(items)):
            out = [posting_label(key, counter) for key, counter in items]
        self._count(len(out), offloaded=False, labels=len(out))
        return out


class PooledKernel(CryptoKernel):
    """Process-pool worker lane for bulk batches, serial below crossover.

    Parameters
    ----------
    workers:
        Worker-process count (>= 1).
    offload_min_units:
        Crossover threshold in HMAC-equivalents (one PRG application,
        one subkey derivation and one label each count 1); batches
        below it run serially inline.  ``REPRO_CRYPTO_CROSSOVER``
        overrides the default.
    sim_hmac_s:
        Bench-only simulated service time per HMAC (see module
        docstring); computation happens inline, worker lanes are
        modeled by a semaphore.
    """

    name = "pooled"

    def __init__(
        self,
        workers: int = 2,
        *,
        offload_min_units: "int | None" = None,
        sim_hmac_s: float = 0.0,
    ) -> None:
        super().__init__(sim_hmac_s=sim_hmac_s)
        self.workers = max(1, int(workers))
        if offload_min_units is None:
            offload_min_units = _env_int(
                ENV_CRYPTO_CROSSOVER, DEFAULT_OFFLOAD_MIN_UNITS
            )
        self.offload_min_units = max(1, int(offload_min_units))
        self._pool: "ProcessPoolExecutor | None" = None
        self._pool_lock = threading.Lock()
        # Worker lanes for the capacity simulation: an offloaded batch
        # occupies one of `workers` lanes for its simulated service
        # time instead of the process-global serial lock.
        self._sim_lanes = threading.BoundedSemaphore(self.workers)

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                import multiprocessing

                # "spawn", never fork: the parent runs thread pools and
                # asyncio servers, and forking a threaded process leaves
                # the child's locks in undefined states.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            return self._pool

    def _discard_pool(self) -> None:
        """Tear down a broken pool; the next offload lazily rebuilds."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def worker_pids(self) -> "list[int]":
        """Live worker PIDs (crash-drill hook; spins the pool up)."""
        pool = self._ensure_pool()
        # Submitting a no-op forces worker creation under spawn.
        pool.submit(_job_ping).result()
        return [p.pid for p in pool._processes.values()]

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- offload plumbing --------------------------------------------------

    def _sim_occupy(self, units: int, *, offloaded: bool) -> None:
        if offloaded:
            with self._sim_lanes:
                time.sleep(units * self.sim_hmac_s)
        else:
            with _SIM_GIL:
                time.sleep(units * self.sim_hmac_s)

    def _offload_blobs(self, job, chunks) -> "bytes | None":
        """Run ``job(chunk)`` across the pool; ``None`` means the worker
        lane died (caller recomputes serially)."""
        if self.sim_hmac_s:
            # Simulation: compute inline (results must stay real and
            # byte-identical); only the service time takes the lane.
            return b"".join(job(chunk) for chunk in chunks)
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(job, chunk) for chunk in chunks]
            return b"".join(f.result() for f in futures)
        except _POOL_FAILURES:
            self._discard_pool()
            return None

    def _run(self, units, serial_fn, job, chunks, finish, *, leaves=0, labels=0):
        """One batch through the crossover/offload/fallback state machine."""
        if units < self.offload_min_units:
            result = serial_fn()
            self._count(units, offloaded=False, leaves=leaves, labels=labels)
            return finish(result)
        blob = self._offload_blobs(job, chunks)
        if blob is None:
            result = serial_fn()
            self._count(
                units, offloaded=False, leaves=leaves, labels=labels,
                fallback=True,
            )
            return finish(result)
        self._count(units, offloaded=True, leaves=leaves, labels=labels)
        return finish(blob)

    # -- the five primitives ----------------------------------------------

    def prf_many(self, key: bytes, messages) -> "list[bytes]":
        key = _prf.check_key(key)
        messages = [bytes(m) for m in messages]
        n = _prf.PRF_OUT_LEN
        return self._run(
            len(messages),
            lambda: _serial_prf_blob(key, messages),
            _job_prf_blob,
            [
                (key, chunk)
                for chunk in _chunk_by_weight(
                    messages, [1] * len(messages), self.workers
                )
            ],
            lambda blob: [blob[o : o + n] for o in range(0, len(blob), n)],
        )

    def prg_many(self, seeds) -> "list[bytes]":
        seeds = [bytes(s) for s in seeds]
        return self._run(
            len(seeds),
            lambda: _serial_prg_blob(seeds),
            _job_prg_blob,
            _chunk_by_weight(seeds, [1] * len(seeds), self.workers),
            lambda blob: [blob[o : o + 64] for o in range(0, len(blob), 64)],
        )

    def expand_subtrees(self, descriptors) -> "list[list[bytes]]":
        descriptors = [check_descriptor(d) for d in descriptors]
        weights = [1 << level for _, level in descriptors]
        leaves = sum(weights)
        with self._traced("expand_subtrees", leaves):
            return self._run(
                leaves,
                lambda: _serial_expand_blob(descriptors),
                _job_expand_blob,
                _chunk_by_weight(descriptors, weights, self.workers),
                lambda blob: _slice_expand(blob, descriptors),
                leaves=leaves,
            )

    def derive_leaf_subkeys(self, descriptors) -> "list[tuple]":
        descriptors = [check_descriptor(d) for d in descriptors]
        weights = [1 << level for _, level in descriptors]
        leaves = sum(weights)
        with self._traced("derive_leaf_subkeys", 2 * leaves):
            return self._run(
                2 * leaves,
                lambda: _serial_subkeys_blob(descriptors),
                _job_subkeys_blob,
                _chunk_by_weight(descriptors, weights, self.workers),
                lambda blob: _slice_subkeys(blob, descriptors),
                leaves=leaves,
            )

    def derive_labels(self, items) -> "list[bytes]":
        items = [(bytes(key), int(counter)) for key, counter in items]
        if not items:
            return []

        def finish(blob: bytes) -> "list[bytes]":
            step = len(blob) // len(items)
            return [blob[o : o + step] for o in range(0, len(blob), step)]

        with self._traced("derive_labels", len(items)):
            return self._run(
                len(items),
                lambda: _serial_labels_blob(items),
                _job_labels_blob,
                _chunk_by_weight(items, [1] * len(items), self.workers),
                finish,
                labels=len(items),
            )


# ---------------------------------------------------------------------------
# Worker jobs (top-level: must pickle under the spawn context)
# ---------------------------------------------------------------------------


def _job_ping() -> bool:
    return True


def _job_expand_blob(descriptors) -> bytes:
    return _serial_expand_blob(descriptors)


def _job_subkeys_blob(descriptors) -> bytes:
    return _serial_subkeys_blob(descriptors)


def _job_labels_blob(items) -> bytes:
    return _serial_labels_blob(items)


def _job_prf_blob(key_and_messages) -> bytes:
    key, messages = key_and_messages
    return _serial_prf_blob(key, messages)


def _job_prg_blob(seeds) -> bytes:
    return _serial_prg_blob(seeds)


# ---------------------------------------------------------------------------
# Crossover fitting (the dispatch calibrator's offload probe)
# ---------------------------------------------------------------------------


def fit_offload_crossover(
    kernel: CryptoKernel,
    *,
    levels: "tuple[int, ...]" = (8, 10, 12),
    repeats: int = 2,
) -> "tuple[float, float]":
    """Measure where offloading beats the serial loop on this machine.

    Returns ``(crossover_units, offload_speedup)``: the smallest probed
    batch size (in HMAC-equivalents) at which the pooled lane is at
    least as fast as the serial loop, and the serial/pooled time ratio
    observed there.  ``(inf, 1.0)`` for serial kernels, simulated
    kernels (their timing is synthetic) and machines where no probed
    size ever wins — offload then simply never pays.
    """
    import time as _time

    if kernel.workers < 1 or getattr(kernel, "sim_hmac_s", 0.0):
        return float("inf"), 1.0

    def best_of(fn) -> float:
        samples = []
        for _ in range(max(1, repeats)):
            t0 = _time.perf_counter()
            fn()
            samples.append(_time.perf_counter() - t0)
        return min(samples)

    serial = SerialKernel()
    saved = kernel.offload_min_units
    kernel.offload_min_units = 1  # force every probe batch onto the pool
    try:
        for level in levels:
            descriptors = [(bytes([level]) * _prg.SEED_LEN, level)]
            pooled_s = best_of(lambda: kernel.derive_leaf_subkeys(descriptors))
            serial_s = best_of(lambda: serial.derive_leaf_subkeys(descriptors))
            if pooled_s <= serial_s:
                return float(2 * (1 << level)), serial_s / max(pooled_s, 1e-9)
    finally:
        kernel.offload_min_units = saved
    return float("inf"), 1.0


# ---------------------------------------------------------------------------
# The process-wide default kernel
# ---------------------------------------------------------------------------


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _env_sim_hmac_s() -> float:
    raw = os.environ.get(ENV_CRYPTO_SIM, "").strip()
    if not raw:
        return 0.0
    try:
        return max(0.0, float(raw)) * 1e-6
    except ValueError:
        raise ValueError(
            f"{ENV_CRYPTO_SIM} must be a number (µs), got {raw!r}"
        ) from None


def make_kernel(workers: "int | None" = None) -> CryptoKernel:
    """Build a kernel: ``workers`` (``None`` → ``REPRO_CRYPTO_WORKERS``,
    default ``0``) picks serial (``<= 0``) or pooled."""
    if workers is None:
        workers = _env_int(ENV_CRYPTO_WORKERS, 0)
    sim = _env_sim_hmac_s()
    if workers <= 0:
        return SerialKernel(sim_hmac_s=sim)
    return PooledKernel(workers, sim_hmac_s=sim)


_default_lock = threading.Lock()
_default: "CryptoKernel | None" = None


def default_kernel() -> CryptoKernel:
    """The shared kernel used by every executor not given a private one."""
    global _default
    with _default_lock:
        if _default is None:
            _default = make_kernel()
        return _default


def configure_default_kernel(workers: "int | None" = None) -> CryptoKernel:
    """Replace the default kernel (CLI ``--crypto-workers``).

    Executors constructed earlier keep their kernel; only future
    ``default_kernel()`` lookups see the new one.  The old kernel's
    pool is shut down.
    """
    global _default
    with _default_lock:
        old, _default = _default, make_kernel(workers)
    if old is not None:
        old.close()
    return _default


__all__ = [
    "CryptoKernel",
    "DEFAULT_OFFLOAD_MIN_UNITS",
    "ENV_CRYPTO_CROSSOVER",
    "ENV_CRYPTO_SIM",
    "ENV_CRYPTO_WORKERS",
    "PooledKernel",
    "SerialKernel",
    "check_descriptor",
    "configure_default_kernel",
    "default_kernel",
    "descriptor_leaves",
    "fit_offload_crossover",
    "make_kernel",
]
