"""Passphrase-based protection for owner-side state at rest.

The owner's keys must survive process restarts without living in
plaintext on disk.  This module wraps arbitrary secret blobs under a
key derived from a passphrase with PBKDF2-HMAC-SHA-512 (stdlib), then
encrypts with the library's authenticated :class:`SemanticCipher` —
wrong passphrases and tampered files fail loudly via
:class:`~repro.errors.IntegrityError`.
"""

from __future__ import annotations

import hashlib
import secrets

from repro.crypto.prf import KEY_LEN
from repro.crypto.symmetric import SemanticCipher
from repro.errors import IntegrityError

#: PBKDF2 iteration count — low enough for tests, high enough to matter;
#: callers hardening for production should raise it.
DEFAULT_ITERATIONS = 100_000

_SALT_LEN = 16
_MAGIC = b"RSSEKS1"


def _derive(passphrase: str, salt: bytes, iterations: int) -> bytes:
    return hashlib.pbkdf2_hmac(
        "sha512", passphrase.encode("utf-8"), salt, iterations, dklen=KEY_LEN
    )


def wrap(
    secret: bytes, passphrase: str, *, iterations: int = DEFAULT_ITERATIONS
) -> bytes:
    """Encrypt ``secret`` under ``passphrase``; returns a self-describing
    blob (magic ‖ iterations ‖ salt ‖ authenticated ciphertext)."""
    salt = secrets.token_bytes(_SALT_LEN)
    cipher = SemanticCipher(_derive(passphrase, salt, iterations))
    return (
        _MAGIC
        + iterations.to_bytes(4, "big")
        + salt
        + cipher.encrypt(bytes(secret))
    )


def unwrap(blob: bytes, passphrase: str) -> bytes:
    """Inverse of :func:`wrap`.

    Raises
    ------
    IntegrityError
        On a wrong passphrase, tampering, or a non-keystore blob.
    """
    blob = bytes(blob)
    if not blob.startswith(_MAGIC):
        raise IntegrityError("not a keystore blob")
    offset = len(_MAGIC)
    iterations = int.from_bytes(blob[offset : offset + 4], "big")
    offset += 4
    salt = blob[offset : offset + _SALT_LEN]
    offset += _SALT_LEN
    cipher = SemanticCipher(_derive(passphrase, salt, iterations))
    return cipher.decrypt(blob[offset:])
