"""Explicit (pickle-free) snapshots of built RSSE schemes.

A downstream deployment builds an index once and reopens it across
restarts.  ``save_scheme``/``load_scheme`` serialize a built scheme —
secret keys, encrypted tuple/payload stores, EDB(s), and
scheme-specific state — into one tagged binary blob, optionally
passphrase-wrapped through :mod:`repro.io.keystore`.

Server-side state flows through the trust-boundary seam
(:meth:`~repro.core.scheme.RangeScheme.export_server_state` /
:meth:`~repro.core.scheme.RangeScheme.import_server_state`), so the
snapshot layer never reaches into a scheme's stores; restoring accepts
an optional :class:`~repro.storage.StorageBackend` to rehydrate into
(e.g. a SQLite file).  Rehydration rides the seam's bulk path: the
whole snapshot lands through ``put_many`` inside one backend
transaction (one commit per restore, never a half-restored store).

The format is explicit field-by-field serialization, not pickling:
loading a snapshot can execute nothing but our own parsers, so a
hostile snapshot file degrades to an :class:`IntegrityError`/
:class:`TokenError`, never code execution.
"""

from __future__ import annotations

import random
import struct

from repro.core.constant import ConstantBrc, ConstantScheme, ConstantUrc
from repro.core.log_src import LogarithmicSrc
from repro.core.log_src_i import LogarithmicSrcI
from repro.core.logarithmic import LogarithmicBrc, LogarithmicUrc
from repro.core.scheme import RangeScheme
from repro.core.split import ServerState
from repro.covers.tdag import Tdag
from repro.errors import IndexStateError, IntegrityError
from repro.io import keystore
from repro.storage.backend import StorageBackend

_MAGIC = b"RSSESNAP2"

#: Scheme registry: name ↔ class (only schemes with snapshot support).
_BY_NAME = {
    cls.name: cls
    for cls in (
        ConstantBrc,
        ConstantUrc,
        LogarithmicBrc,
        LogarithmicUrc,
        LogarithmicSrc,
        LogarithmicSrcI,
    )
}


def _chunk(data: bytes) -> bytes:
    return len(data).to_bytes(8, "big") + data


class _Reader:
    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._offset = 0

    def chunk(self) -> bytes:
        if self._offset + 8 > len(self._blob):
            raise IntegrityError("truncated snapshot")
        length = int.from_bytes(self._blob[self._offset : self._offset + 8], "big")
        self._offset += 8
        end = self._offset + length
        if end > len(self._blob):
            raise IntegrityError("truncated snapshot chunk")
        data = self._blob[self._offset : end]
        self._offset = end
        return data

    def u64(self) -> int:
        return int.from_bytes(self.chunk(), "big")

    def done(self) -> bool:
        return self._offset == len(self._blob)


def _serialize_store(entries: "list[tuple[int, bytes]]") -> bytes:
    entries = sorted(entries)
    parts = [len(entries).to_bytes(8, "big")]
    for rid, blob in entries:
        parts.append(struct.pack(">Q", rid))
        parts.append(_chunk(blob))
    return b"".join(parts)


def _parse_store(data: bytes) -> "list[tuple[int, bytes]]":
    reader = _Reader(data)
    # store count is a raw u64 prefix, then (id, chunk) pairs
    count = int.from_bytes(data[:8], "big")
    reader._offset = 8
    entries: list[tuple[int, bytes]] = []
    for _ in range(count):
        if reader._offset + 8 > len(data):
            raise IntegrityError("truncated snapshot store")
        rid = struct.unpack_from(">Q", data, reader._offset)[0]
        reader._offset += 8
        entries.append((rid, reader.chunk()))
    return entries


def dump_scheme(scheme: RangeScheme) -> bytes:
    """Serialize a built scheme to a plaintext (unwrapped) snapshot."""
    if not scheme._built:
        raise IndexStateError("only built schemes can be snapshotted")
    name = scheme.name
    if name not in _BY_NAME:
        raise IndexStateError(f"scheme {name!r} has no snapshot support")
    state = scheme.export_server_state()
    parts = [
        _MAGIC,
        _chunk(name.encode()),
        _chunk(scheme.domain_size.to_bytes(8, "big")),
        _chunk(scheme._n.to_bytes(8, "big")),
        _chunk(scheme._record_key),
        _chunk(_serialize_store(state.tuples)),
        _chunk(_serialize_store(state.payloads)),
    ]
    if isinstance(scheme, ConstantScheme):
        parts.append(_chunk(scheme._dprf_key))
        parts.append(_chunk(state.indexes["edb"]))
        # Persist the intersection guard: policy plus query history, so a
        # restored scheme keeps enforcing the non-intersection constraint
        # across restarts.
        policy = b"\x00" if scheme.guard.policy == "raise" else b"\x01"
        history = b"".join(
            lo.to_bytes(8, "big") + hi.to_bytes(8, "big")
            for lo, hi in scheme.guard._history
        )
        parts.append(_chunk(policy + history))
    elif isinstance(scheme, LogarithmicSrcI):
        parts.append(_chunk(scheme._key1))
        parts.append(_chunk(scheme._key2))
        parts.append(_chunk(state.indexes["edb1"]))
        parts.append(_chunk(state.indexes["edb2"]))
        parts.append(_chunk(scheme.distinct_values.to_bytes(8, "big")))
        parts.append(_chunk(scheme.tdag2.domain_size.to_bytes(8, "big")))
    else:  # Logarithmic-BRC/URC/SRC share the single-key layout
        parts.append(_chunk(scheme._master_key))
        parts.append(_chunk(state.indexes["edb"]))
    return b"".join(parts)


def restore_scheme(
    blob: bytes,
    *,
    rng: "random.Random | None" = None,
    backend: "StorageBackend | None" = None,
    executor=None,
) -> RangeScheme:
    """Reconstruct a scheme from :func:`dump_scheme` output.

    ``backend`` optionally rehydrates the restored server-side state
    into persistent storage instead of memory; ``executor`` wires the
    restored scheme to a specific query engine (the process default
    when omitted).
    """
    blob = bytes(blob)
    if not blob.startswith(_MAGIC):
        raise IntegrityError("not an RSSE snapshot")
    reader = _Reader(blob[len(_MAGIC) :])
    name = reader.chunk().decode()
    cls = _BY_NAME.get(name)
    if cls is None:
        raise IntegrityError(f"snapshot names unknown scheme {name!r}")
    domain_size = int.from_bytes(reader.chunk(), "big")
    n = int.from_bytes(reader.chunk(), "big")
    record_key = reader.chunk()
    tuples = _parse_store(reader.chunk())
    payloads = _parse_store(reader.chunk())

    kwargs = {}
    if rng is not None:
        kwargs["rng"] = rng
    if backend is not None:
        kwargs["backend"] = backend
    if executor is not None:
        kwargs["executor"] = executor
    scheme = cls(domain_size, **kwargs)
    scheme._install_record_key(record_key)
    state = ServerState(tuples=tuples, payloads=payloads)

    if issubclass(cls, ConstantScheme):
        scheme._dprf_key = reader.chunk()
        state.indexes["edb"] = reader.chunk()
        guard_blob = reader.chunk()
        scheme.guard.policy = "raise" if guard_blob[0] == 0 else "allow"
        body = guard_blob[1:]
        scheme.guard._history = [
            (
                int.from_bytes(body[i : i + 8], "big"),
                int.from_bytes(body[i + 8 : i + 16], "big"),
            )
            for i in range(0, len(body), 16)
        ]
    elif cls is LogarithmicSrcI:
        scheme._key1 = reader.chunk()
        scheme._key2 = reader.chunk()
        from repro.sse.base import PrfKeyDeriver

        scheme._sse1 = scheme._sse_factory(PrfKeyDeriver(scheme._key1))
        scheme._sse2 = scheme._sse_factory(PrfKeyDeriver(scheme._key2))
        state.indexes["edb1"] = reader.chunk()
        state.indexes["edb2"] = reader.chunk()
        scheme.distinct_values = int.from_bytes(reader.chunk(), "big")
        scheme.tdag2 = Tdag(int.from_bytes(reader.chunk(), "big"))
    else:
        master = reader.chunk()
        scheme._master_key = master
        from repro.sse.base import PrfKeyDeriver

        scheme._sse = scheme._sse_factory(PrfKeyDeriver(master))
        state.indexes["edb"] = reader.chunk()
    if not reader.done():
        raise IntegrityError("trailing bytes after snapshot payload")
    scheme.import_server_state(state)
    scheme._n = n
    return scheme


def save_scheme(scheme: RangeScheme, path, passphrase: "str | None" = None) -> None:
    """Snapshot ``scheme`` to ``path``; wrapped when a passphrase given."""
    blob = dump_scheme(scheme)
    if passphrase is not None:
        blob = keystore.wrap(blob, passphrase)
    with open(path, "wb") as fh:
        fh.write(blob)


def load_scheme(
    path,
    passphrase: "str | None" = None,
    *,
    rng=None,
    backend: "StorageBackend | None" = None,
    executor=None,
) -> RangeScheme:
    """Inverse of :func:`save_scheme`."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if passphrase is not None:
        blob = keystore.unwrap(blob, passphrase)
    return restore_scheme(blob, rng=rng, backend=backend, executor=executor)
