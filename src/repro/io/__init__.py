"""Persistence: passphrase keystore and pickle-free scheme snapshots."""

from repro.io.keystore import unwrap, wrap
from repro.io.snapshot import dump_scheme, load_scheme, restore_scheme, save_scheme

__all__ = [
    "dump_scheme",
    "load_scheme",
    "restore_scheme",
    "save_scheme",
    "unwrap",
    "wrap",
]
