"""Single-keyword Searchable Symmetric Encryption substrate.

Two interchangeable EDB constructions (both Cash et al. NDSS'14 style):

- :class:`~repro.sse.pibas.PiBas` — one posting per entry, zero padding;
- :class:`~repro.sse.pipack.PiPack` — block packing, the paper's
  space-efficiency configuration.

RSSE schemes receive an ``sse_factory`` callable of signature
``(deriver) -> SseScheme`` and never depend on a concrete class.
"""

from repro.sse.base import (
    LABEL_LEN,
    SUBKEY_LEN,
    CallbackKeyDeriver,
    EncryptedIndex,
    KeyDeriver,
    KeywordToken,
    PrfKeyDeriver,
    SseScheme,
    token_from_secret,
)
from repro.sse.pi2lev import Pi2Lev
from repro.sse.pibas import PiBas
from repro.sse.pipack import DEFAULT_BLOCK_SIZE, PiPack

__all__ = [
    "CallbackKeyDeriver",
    "DEFAULT_BLOCK_SIZE",
    "EncryptedIndex",
    "KeyDeriver",
    "KeywordToken",
    "LABEL_LEN",
    "Pi2Lev",
    "PiBas",
    "PiPack",
    "PrfKeyDeriver",
    "SUBKEY_LEN",
    "SseScheme",
    "token_from_secret",
]
