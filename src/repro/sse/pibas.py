"""Π_bas — the basic dictionary-based SSE of Cash et al. (NDSS'14).

The encrypted index is a flat dictionary.  For keyword ``w`` with token
``(K1, K2)``, the c-th posting is stored as::

    label = F(K1, c)            (truncated PRF, 16 bytes)
    value = Enc(K2, payload)    (randomized, nonce ‖ ct)

Search walks counters ``c = 0, 1, 2, …`` until a label misses, so the
server touches exactly the postings of the queried keyword: search time
is ``O(r)`` with no padding, and nothing about other keywords is
revealed.  This is the construction the paper builds all RSSE schemes
on (it cites the Cash et al. line for its underlying SSE).

Postings are randomly permuted before insertion so that EDB entry order
carries no information about insertion order.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Iterable, Mapping

from repro.errors import TokenError
from repro.sse.base import (
    LABEL_LEN,
    EncryptedIndex,
    KeyDeriver,
    KeywordToken,
    SseScheme,
)
from repro.sse.encoding import encode_counter


def posting_label(label_key: bytes, counter: int) -> bytes:
    """EDB label for the ``counter``-th posting of a keyword.

    Public because label derivation is part of the server-side search
    contract: anyone holding a token can derive labels — the protocol
    server and the exec engine's coalesced walk both do.
    """
    return hmac.digest(label_key, encode_counter(counter), hashlib.sha256)[
        :LABEL_LEN
    ]


#: Backwards-compatible private alias (pre-exec-engine name).
_label = posting_label


def posting_labels(label_key: bytes, counters) -> "list[bytes]":
    """Bulk :func:`posting_label` for one keyword, in counter order.

    Byte-identical to mapping the scalar function.  The array shape is
    the crypto kernel's label-batch currency; build and search walks
    use it so their label loops have one derivation seam.
    """
    digest = hmac.digest
    sha256 = hashlib.sha256
    return [
        digest(label_key, encode_counter(counter), sha256)[:LABEL_LEN]
        for counter in counters
    ]


def _xor_pad(value_key: bytes, counter: int, data: bytes) -> bytes:
    """One-posting stream encryption keyed by (value_key, counter).

    Each (keyword, counter) pair is used once, so a PRF-derived pad is a
    secure one-time pad; this keeps per-posting overhead at zero bytes,
    matching the space-efficiency configuration the paper uses.
    """
    pad = b""
    block = 0
    while len(pad) < len(data):
        pad += hmac.digest(
            value_key, encode_counter(counter) + bytes([block]), hashlib.sha512
        )
        block += 1
    # Constant-time-ish whole-int XOR beats a per-byte generator.
    n = len(data)
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(pad[:n], "big")
    ).to_bytes(n, "big")


class PiBas(SseScheme):
    """Dictionary SSE with per-posting labels (search time ``O(r)``)."""

    name = "pibas"

    def __init__(self, deriver: KeyDeriver, *, shuffle_rng: "random.Random | None" = None) -> None:
        super().__init__(deriver)
        self._shuffle_rng = shuffle_rng if shuffle_rng is not None else random.SystemRandom()

    def build_index(self, multimap: Mapping[bytes, Iterable[bytes]]) -> EncryptedIndex:
        index = EncryptedIndex()
        for keyword in sorted(multimap):
            token = self._deriver.derive(keyword)
            payloads = list(multimap[keyword])
            self._shuffle_rng.shuffle(payloads)
            labels = posting_labels(token.label_key, range(len(payloads)))
            for counter, payload in enumerate(payloads):
                length = len(payload).to_bytes(4, "big")
                ct = _xor_pad(token.value_key, counter, length + payload)
                index.put(labels[counter], ct)
        return index

    def search(self, index: EncryptedIndex, token: KeywordToken) -> list[bytes]:
        return search(index, token)


#: Probe batches grow geometrically up to this many labels per round.
_WALK_CHUNK_MAX = 256


def decode_posting_raw(value_key: bytes, counter: int, ct: bytes) -> bytes:
    """Decrypt one posting from the raw value subkey (engine hot path)."""
    plain = _xor_pad(value_key, counter, ct)
    length = int.from_bytes(plain[:4], "big")
    if length > len(plain) - 4:
        raise TokenError("corrupt EDB entry or mismatched token")
    return plain[4 : 4 + length]


def decode_posting(token: KeywordToken, counter: int, ct: bytes) -> bytes:
    """Decrypt one posting given its token and counter (search contract)."""
    return decode_posting_raw(token.value_key, counter, ct)


#: Backwards-compatible private alias (pre-exec-engine name).
_decode_posting = decode_posting


def search(index: EncryptedIndex, token: KeywordToken) -> "list[bytes]":
    """The public Π_bas search algorithm.

    Module-level because the algorithm needs no secret state — anyone
    holding a token can run it, which is precisely the SSE server's
    position (see :class:`repro.protocol.server.RsseServer`).

    Labels are deterministic in the counter, so against a
    backend-resident index (``probe_batch > 1``, i.e.
    :class:`~repro.core.split.BackendIndex`) the walk probes them in
    geometrically growing batches through ``get_many`` — ``O(log r)``
    storage round-trips per keyword instead of one per posting.
    Dict-backed indexes keep the textbook per-counter walk: their
    ``get`` is free, so speculative batches would only waste label
    derivations.
    """
    get_many = getattr(index, "get_many", None)
    batch = getattr(index, "probe_batch", 1)
    results: list[bytes] = []
    counter = 0
    if get_many is None or batch <= 1:
        while True:
            ct = index.get(_label(token.label_key, counter))
            if ct is None:
                break
            results.append(_decode_posting(token, counter, ct))
            counter += 1
        return results
    chunk = max(batch, 2)
    while True:
        labels = posting_labels(token.label_key, range(counter, counter + chunk))
        for offset, ct in enumerate(get_many(labels)):
            if ct is None:
                return results
            results.append(_decode_posting(token, counter + offset, ct))
        counter += chunk
        chunk = min(chunk * 2, _WALK_CHUNK_MAX)
