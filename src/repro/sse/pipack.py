"""Π_pack — block-packed SSE (the space-efficiency variant).

The paper configures its underlying SSE (Cash et al.) with the
recommended space-efficiency parameters (S = 6000, K = 1.1), whose point
is to amortize per-entry overhead by packing several postings per stored
block.  Π_pack (also from Cash et al., NDSS'14) captures exactly that
knob: up to ``block_size`` payloads share one EDB entry, cutting label
overhead by the packing factor at the cost of up to one partially-empty
block per keyword.

Layout of one block plaintext::

    count (1 byte) ‖ payload_0 ‖ … ‖ payload_{count-1} ‖ zero padding

All payloads of one multimap must share a fixed length for packing; the
RSSE layers satisfy this (8-byte ids or 24-byte triples).
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Iterable, Mapping

from repro.errors import TokenError
from repro.sse.base import (
    LABEL_LEN,
    EncryptedIndex,
    KeyDeriver,
    KeywordToken,
    SseScheme,
)
from repro.sse.encoding import encode_counter

#: Default payloads per block; chosen so that an 8-byte-id block is close
#: to a cache-line-sized record, mirroring the paper's packed setting.
DEFAULT_BLOCK_SIZE = 8


def _label(label_key: bytes, counter: int) -> bytes:
    return hmac.new(label_key, b"P" + encode_counter(counter), hashlib.sha256).digest()[
        :LABEL_LEN
    ]


def _xor_pad(value_key: bytes, counter: int, data: bytes) -> bytes:
    pad = b""
    block = 0
    while len(pad) < len(data):
        pad += hmac.new(
            value_key, b"P" + encode_counter(counter) + bytes([block]), hashlib.sha512
        ).digest()
        block += 1
    return bytes(a ^ b for a, b in zip(data, pad))


class PiPack(SseScheme):
    """Packed dictionary SSE: ``block_size`` postings per EDB entry."""

    name = "pipack"

    def __init__(
        self,
        deriver: KeyDeriver,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        shuffle_rng: "random.Random | None" = None,
    ) -> None:
        super().__init__(deriver)
        if not 1 <= block_size <= 255:
            raise ValueError(f"block_size must be in [1, 255], got {block_size}")
        self.block_size = block_size
        self._shuffle_rng = shuffle_rng if shuffle_rng is not None else random.SystemRandom()

    def build_index(self, multimap: Mapping[bytes, Iterable[bytes]]) -> EncryptedIndex:
        index = EncryptedIndex()
        for keyword in sorted(multimap):
            token = self._deriver.derive(keyword)
            payloads = list(multimap[keyword])
            if not payloads:
                continue
            payload_len = len(payloads[0])
            if any(len(p) != payload_len for p in payloads):
                raise TokenError("PiPack requires fixed-length payloads per multimap")
            self._shuffle_rng.shuffle(payloads)
            for counter, start in enumerate(range(0, len(payloads), self.block_size)):
                chunk = payloads[start : start + self.block_size]
                body = bytes([len(chunk)]) + b"".join(chunk)
                body += b"\x00" * (1 + payload_len * self.block_size - len(body))
                ct = _xor_pad(token.value_key, counter, bytes([payload_len]) + body)
                index.put(_label(token.label_key, counter), ct)
        return index

    def search(self, index: EncryptedIndex, token: KeywordToken) -> list[bytes]:
        results: list[bytes] = []
        counter = 0
        while True:
            ct = index.get(_label(token.label_key, counter))
            if ct is None:
                break
            plain = _xor_pad(token.value_key, counter, ct)
            payload_len, count = plain[0], plain[1]
            if payload_len == 0 or count > self.block_size:
                raise TokenError("corrupt EDB block or mismatched token")
            offset = 2
            for _ in range(count):
                results.append(plain[offset : offset + payload_len])
                offset += payload_len
            counter += 1
        return results
