"""Canonical byte encodings shared by the SSE and RSSE layers.

SSE schemes index opaque byte payloads under byte keywords.  This module
pins down the encodings so that indexes are deterministic, sizes are
measurable, and round-trips are exact:

- tuple identifiers: unsigned 64-bit big-endian (8 bytes);
- domain values used as keywords: ``V:`` prefix + 8-byte value;
- (value, position-range) triples for Logarithmic-SRC-i's first index:
  three 8-byte integers (24 bytes);
- counters inside EDB label derivation: 8-byte big-endian.
"""

from __future__ import annotations

import struct

from repro.errors import TokenError

#: Size in bytes of an encoded tuple identifier.
ID_LEN = 8

#: Size in bytes of an encoded (value, pos_lo, pos_hi) triple.
TRIPLE_LEN = 24

_U64 = struct.Struct(">Q")
_TRIPLE = struct.Struct(">QQQ")


def encode_id(doc_id: int) -> bytes:
    """Encode a tuple identifier as 8 big-endian bytes."""
    if not 0 <= doc_id < 1 << 64:
        raise ValueError(f"id {doc_id} outside unsigned 64-bit range")
    return _U64.pack(doc_id)


def decode_id(payload: bytes) -> int:
    """Inverse of :func:`encode_id`."""
    if len(payload) != ID_LEN:
        raise TokenError(f"id payload must be {ID_LEN} bytes, got {len(payload)}")
    return _U64.unpack(payload)[0]


def encode_counter(counter: int) -> bytes:
    """Encode an EDB entry counter for label derivation."""
    return _U64.pack(counter)


def value_keyword(value: int) -> bytes:
    """Keyword label for a raw domain value (Constant schemes)."""
    return b"V:" + _U64.pack(value)


def range_keyword(lo: int, hi: int) -> bytes:
    """Keyword label for an explicit subrange (Quadratic scheme)."""
    return b"Q:" + _U64.pack(lo) + _U64.pack(hi)


def encode_triple(value: int, pos_lo: int, pos_hi: int) -> bytes:
    """Encode a (domain value, tuple-position range) document (SRC-i I1)."""
    return _TRIPLE.pack(value, pos_lo, pos_hi)


def decode_triple(payload: bytes) -> tuple[int, int, int]:
    """Inverse of :func:`encode_triple`."""
    if len(payload) != TRIPLE_LEN:
        raise TokenError(
            f"triple payload must be {TRIPLE_LEN} bytes, got {len(payload)}"
        )
    return _TRIPLE.unpack(payload)


def encode_record(doc_id: int, value: int) -> bytes:
    """Serialize a full tuple ``(id, a)`` for semantic encryption at rest."""
    return _U64.pack(doc_id) + _U64.pack(value)


def decode_record(payload: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_record`."""
    if len(payload) != 16:
        raise TokenError(f"record payload must be 16 bytes, got {len(payload)}")
    return _U64.unpack_from(payload, 0)[0], _U64.unpack_from(payload, 8)[0]
