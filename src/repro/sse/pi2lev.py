"""Π_2lev — the two-level SSE of Cash et al. (NDSS'14).

This is the construction the paper actually configures for its
experiments ("the construction by Cash et al., setting its parameters
to the values recommended for space-efficiency (S = 6000, K = 1.1)").
The idea: posting lists are stored in a *packed array* of fixed-size
blocks; a dictionary maps each keyword to its postings, inlined when
the list is short, or to encrypted *pointers* into array blocks when it
is long.  The two levels amortize dictionary overhead for heavy
keywords while keeping light keywords one lookup away.

Layout here (faithful in structure, simplified in disk layout):

- array blocks of ``block_factor`` payload slots each, every block
  encrypted under a per-keyword key and stored in the EDB under a
  pointer label;
- dictionary entries (one per keyword chunk, counter-chained like
  Π_bas) containing either ``0x00 ‖ packed payloads`` (short list) or
  ``0x01 ‖ block pointer`` (long list).

Search cost stays O(r / block_factor + 1) EDB lookups; storage gains
come from the same packing economics the paper's S/K values tune.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Iterable, Mapping

from repro.errors import TokenError
from repro.sse.base import (
    LABEL_LEN,
    EncryptedIndex,
    KeyDeriver,
    KeywordToken,
    SseScheme,
)
from repro.sse.encoding import encode_counter

#: Slots per array block (the role of the paper's S parameter).
DEFAULT_BLOCK_FACTOR = 8

#: Lists up to this many payloads inline into the dictionary directly.
DEFAULT_INLINE_LIMIT = 2

_INLINE = 0
_POINTER = 1


def _dict_label(label_key: bytes, counter: int) -> bytes:
    return hmac.new(label_key, b"D" + encode_counter(counter), hashlib.sha256).digest()[
        :LABEL_LEN
    ]


def _block_label(label_key: bytes, block_id: int) -> bytes:
    return hmac.new(label_key, b"A" + encode_counter(block_id), hashlib.sha256).digest()[
        :LABEL_LEN
    ]


def _pad(value_key: bytes, domain: bytes, counter: int, data: bytes) -> bytes:
    pad = b""
    block = 0
    while len(pad) < len(data):
        pad += hmac.new(
            value_key, domain + encode_counter(counter) + bytes([block]), hashlib.sha512
        ).digest()
        block += 1
    return bytes(a ^ b for a, b in zip(data, pad))


def _pack_payloads(chunk: "list[bytes]", payload_len: int, capacity: int) -> bytes:
    body = bytes([payload_len, len(chunk)]) + b"".join(chunk)
    body += b"\x00" * (2 + payload_len * capacity - len(body))
    return body


def _unpack_payloads(body: bytes) -> "list[bytes]":
    payload_len, count = body[0], body[1]
    if payload_len == 0:
        raise TokenError("corrupt Π_2lev body")
    out = []
    offset = 2
    for _ in range(count):
        out.append(body[offset : offset + payload_len])
        offset += payload_len
    return out


class Pi2Lev(SseScheme):
    """Two-level dictionary + packed-array SSE."""

    name = "pi2lev"

    def __init__(
        self,
        deriver: KeyDeriver,
        *,
        block_factor: int = DEFAULT_BLOCK_FACTOR,
        inline_limit: int = DEFAULT_INLINE_LIMIT,
        shuffle_rng: "random.Random | None" = None,
    ) -> None:
        super().__init__(deriver)
        if not 1 <= block_factor <= 255:
            raise ValueError(f"block_factor must be in [1, 255], got {block_factor}")
        if not 0 <= inline_limit <= block_factor:
            raise ValueError("inline_limit must be in [0, block_factor]")
        self.block_factor = block_factor
        self.inline_limit = inline_limit
        self._shuffle_rng = (
            shuffle_rng if shuffle_rng is not None else random.SystemRandom()
        )

    def build_index(self, multimap: Mapping[bytes, Iterable[bytes]]) -> EncryptedIndex:
        index = EncryptedIndex()
        for keyword in sorted(multimap):
            token = self._deriver.derive(keyword)
            payloads = list(multimap[keyword])
            if not payloads:
                continue
            payload_len = len(payloads[0])
            if any(len(p) != payload_len for p in payloads):
                raise TokenError("Pi2Lev requires fixed-length payloads per multimap")
            self._shuffle_rng.shuffle(payloads)
            if len(payloads) <= self.inline_limit:
                body = bytes([_INLINE]) + _pack_payloads(
                    payloads, payload_len, self.inline_limit
                )
                ct = _pad(token.value_key, b"D", 0, body)
                index.put(_dict_label(token.label_key, 0), ct)
                continue
            # Long list: spill blocks into the array level, then write one
            # dictionary entry per block pointer.
            block_ids = list(range((len(payloads) + self.block_factor - 1) // self.block_factor))
            for counter, block_id in enumerate(block_ids):
                chunk = payloads[
                    block_id * self.block_factor : (block_id + 1) * self.block_factor
                ]
                block_body = _pack_payloads(chunk, payload_len, self.block_factor)
                index.put(
                    _block_label(token.label_key, block_id),
                    _pad(token.value_key, b"A", block_id, block_body),
                )
                pointer_body = bytes([_POINTER]) + block_id.to_bytes(8, "big")
                index.put(
                    _dict_label(token.label_key, counter),
                    _pad(token.value_key, b"D", counter, pointer_body),
                )
        return index

    def search(self, index: EncryptedIndex, token: KeywordToken) -> list[bytes]:
        results: list[bytes] = []
        counter = 0
        while True:
            ct = index.get(_dict_label(token.label_key, counter))
            if ct is None:
                break
            body = _pad(token.value_key, b"D", counter, ct)
            if body[0] == _INLINE:
                results.extend(_unpack_payloads(body[1:]))
                break  # inline entries are always the whole (short) list
            if body[0] != _POINTER:
                raise TokenError("corrupt Π_2lev dictionary entry")
            block_id = int.from_bytes(body[1:9], "big")
            block_ct = index.get(_block_label(token.label_key, block_id))
            if block_ct is None:
                raise TokenError("dangling Π_2lev block pointer")
            results.extend(
                _unpack_payloads(_pad(token.value_key, b"A", block_id, block_ct))
            )
            counter += 1
        return results
