"""Abstract single-keyword SSE interface and the keyword-key seam.

The paper's central engineering claim is that *any* secure SSE scheme
can be used as a black box by an RSSE construction.  This module defines
that black-box boundary:

``SseScheme``
    ``build_index`` turns a keyword → payload multimap into an
    ``EncryptedIndex`` (the EDB handed to the server); ``trapdoor`` maps
    a keyword to a :class:`KeywordToken`; ``search`` runs server-side on
    the EDB and a token.

``KeyDeriver``
    The one seam the Constant schemes need: how per-keyword secret
    material is derived.  The default :class:`PrfKeyDeriver` is the
    textbook ``F(k, w)``; :class:`DprfKeyDeriver` derives the same
    material from a GGM/DPRF leaf so that the *server* can re-derive
    tokens from delegated seeds (see :mod:`repro.core.constant`).

Security note: the token exposes only per-keyword pseudorandom keys; the
master key never leaves the owner.
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.crypto.prf import KEY_LEN, derive_subkey, prf
from repro.errors import TokenError

#: Length of the per-keyword label and value subkeys inside a token.
SUBKEY_LEN = 16

#: Length of an EDB label (truncated PRF output).
LABEL_LEN = 16


@dataclass(frozen=True)
class KeywordToken:
    """Per-keyword search token ``(label_key, value_key)``.

    ``label_key`` drives EDB label derivation (the K1 of Cash et al.);
    ``value_key`` decrypts the matching payloads (K2).  Exposing the pair
    lets the server retrieve exactly this keyword's postings and nothing
    else.
    """

    label_key: bytes
    value_key: bytes

    def __post_init__(self) -> None:
        if len(self.label_key) != SUBKEY_LEN or len(self.value_key) != SUBKEY_LEN:
            raise TokenError(
                f"keyword token subkeys must be {SUBKEY_LEN} bytes each"
            )

    def serialized_size(self) -> int:
        """Wire size in bytes of this token."""
        return len(self.label_key) + len(self.value_key)


#: Domain-separation label of per-keyword token derivation.  ONE place:
#: owner-side trapdoors and the exec engine's server-side leaf
#: expansion must derive identical subkeys or searches silently miss.
TOKEN_DERIVE_LABEL = b"repro.sse.token"


def subkeys_from_secret(secret: bytes) -> "tuple[bytes, bytes]":
    """Raw ``(label_key, value_key)`` pair for per-keyword secret bytes.

    The allocation-free core of :func:`token_from_secret`, used directly
    on the exec engine's hot path (one call per expanded GGM leaf).  It
    takes the one-shot HMAC fast path; the common case — a leaf value is
    already exactly ``KEY_LEN`` bytes — skips the pad too.  Output is
    identical to ``prf(...)`` on the padded secret.
    """
    if len(secret) != KEY_LEN:
        secret = secret.ljust(KEY_LEN, b"\x00")[:KEY_LEN]
    expanded = hmac.digest(secret, TOKEN_DERIVE_LABEL, hashlib.sha512)
    return expanded[:SUBKEY_LEN], expanded[SUBKEY_LEN : 2 * SUBKEY_LEN]


def subkeys_from_secret_many(secrets) -> "list[tuple[bytes, bytes]]":
    """Bulk :func:`subkeys_from_secret`, in input order.

    Byte-identical to mapping the scalar function; the batch shape is
    what the crypto kernel's worker jobs consume when deriving leaf
    tokens for thousands of expanded GGM leaves at once.
    """
    digest = hmac.digest
    sha512 = hashlib.sha512
    out = []
    for secret in secrets:
        if len(secret) != KEY_LEN:
            secret = secret.ljust(KEY_LEN, b"\x00")[:KEY_LEN]
        expanded = digest(secret, TOKEN_DERIVE_LABEL, sha512)
        out.append((expanded[:SUBKEY_LEN], expanded[SUBKEY_LEN : 2 * SUBKEY_LEN]))
    return out


def token_from_secret(secret: bytes) -> KeywordToken:
    """Publicly derive a :class:`KeywordToken` from per-keyword secret bytes.

    Used in two places: the PRF deriver feeds it ``F(k, w)``; the
    Constant schemes feed it an expanded DPRF *leaf* value.  Anyone who
    knows the secret can derive the token — that is exactly the DPRF
    delegation contract.
    """
    return KeywordToken(*subkeys_from_secret(secret))


class KeyDeriver(ABC):
    """Strategy mapping a keyword to its per-keyword token."""

    @abstractmethod
    def derive(self, keyword: bytes) -> KeywordToken:
        """Return the token for ``keyword``."""


class PrfKeyDeriver(KeyDeriver):
    """Standard PRF-based derivation: token = H(F(k, w))."""

    def __init__(self, master_key: bytes) -> None:
        self._key = derive_subkey(master_key, b"sse.keyword")

    def derive(self, keyword: bytes) -> KeywordToken:
        return token_from_secret(prf(self._key, keyword)[:KEY_LEN])


class CallbackKeyDeriver(KeyDeriver):
    """Adapter turning any ``keyword -> secret bytes`` callable into a deriver.

    The Constant schemes use this with ``dprf.evaluate`` so that index
    construction and delegated search derive identical tokens.
    """

    def __init__(self, secret_fn) -> None:
        self._secret_fn = secret_fn

    def derive(self, keyword: bytes) -> KeywordToken:
        return token_from_secret(self._secret_fn(keyword))


class EncryptedIndex:
    """The server-side EDB: an opaque label → ciphertext dictionary.

    Knows nothing about keywords or ranges; supports exact size
    accounting and full (de)serialization so experiments can measure true
    index bytes.
    """

    def __init__(self, entries: "dict[bytes, bytes] | None" = None) -> None:
        self._entries: dict[bytes, bytes] = dict(entries or {})

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: bytes) -> bool:
        return label in self._entries

    #: How many counter labels a Π_bas walk should probe per round.
    #: A dict-backed index answers ``get`` for free, so speculative
    #: batches would only waste label derivations; backend-resident
    #: indexes (:class:`~repro.core.split.BackendIndex`) raise this to
    #: amortize storage round-trips.
    probe_batch = 1

    def get(self, label: bytes) -> "bytes | None":
        """Fetch one ciphertext by label (``None`` when absent)."""
        return self._entries.get(label)

    def get_many(self, labels) -> "list[bytes | None]":
        """Fetch many ciphertexts at once (same contract as the storage
        seam's ``get_many``: request order, ``None`` where absent)."""
        return [self._entries.get(label) for label in labels]

    def items(self):
        """Iterate ``(label, ciphertext)`` pairs (storage-seam hook)."""
        return self._entries.items()

    def put(self, label: bytes, ciphertext: bytes) -> None:
        """Insert an entry; duplicate labels indicate a broken build."""
        if label in self._entries:
            raise TokenError("duplicate EDB label: PRF collision or misuse")
        self._entries[label] = ciphertext

    def serialized_size(self) -> int:
        """Exact byte size of the EDB contents (labels + ciphertexts)."""
        return sum(len(k) + len(v) for k, v in self._entries.items())

    def to_bytes(self) -> bytes:
        """Serialize the whole EDB (length-prefixed entries)."""
        parts = [len(self._entries).to_bytes(8, "big")]
        for label in sorted(self._entries):
            ct = self._entries[label]
            parts.append(len(label).to_bytes(4, "big"))
            parts.append(label)
            parts.append(len(ct).to_bytes(4, "big"))
            parts.append(ct)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EncryptedIndex":
        """Inverse of :meth:`to_bytes`."""
        count = int.from_bytes(blob[:8], "big")
        entries: dict[bytes, bytes] = {}
        offset = 8
        for _ in range(count):
            klen = int.from_bytes(blob[offset : offset + 4], "big")
            offset += 4
            label = blob[offset : offset + klen]
            offset += klen
            vlen = int.from_bytes(blob[offset : offset + 4], "big")
            offset += 4
            entries[label] = blob[offset : offset + vlen]
            offset += vlen
        return cls(entries)

    def tamper(self, position: int = 0) -> None:
        """Flip one ciphertext byte (failure-injection hook for tests)."""
        for label in sorted(self._entries):
            ct = bytearray(self._entries[label])
            ct[position % len(ct)] ^= 0xFF
            self._entries[label] = bytes(ct)
            return


class SseScheme(ABC):
    """Black-box single-keyword SSE: BuildIndex / Trpdr / Search.

    ``Setup`` is the constructor: a scheme instance binds a master key
    (through its :class:`KeyDeriver`) at creation time.
    """

    #: Human-readable scheme name (reported by the harness).
    name: str = "sse"

    def __init__(self, deriver: KeyDeriver) -> None:
        self._deriver = deriver

    @abstractmethod
    def build_index(self, multimap: Mapping[bytes, Iterable[bytes]]) -> EncryptedIndex:
        """Encrypt a keyword → payloads multimap into an EDB."""

    def trapdoor(self, keyword: bytes) -> KeywordToken:
        """Owner-side token generation for one keyword."""
        return self._deriver.derive(keyword)

    @abstractmethod
    def search(self, index: EncryptedIndex, token: KeywordToken) -> list[bytes]:
        """Server-side retrieval of all payloads under the token's keyword."""
