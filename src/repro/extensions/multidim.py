"""Multi-dimensional range search — the paper's stated future work.

Section 9: "In our future work, we plan to focus on the considerably
harder setting of multi-dimensional (i.e., multi-attribute) range
queries."  This module provides the natural first construction in the
RSSE framework: **per-dimension composition** — one independent
single-attribute RSSE instance (fresh keys) per attribute, with the
owner intersecting the per-dimension id sets during refinement.

Security statement (be honest about it): the composition leaks the
*per-dimension* access and structural patterns of each conjunct — i.e.
the server learns which tuples match each 1-D projection of the query,
a strict superset of the final intersection's access pattern.  That is
exactly why the paper calls the multi-dimensional setting "considerably
harder"; this composition is the practical baseline such future work
would have to beat, not a claim of equal security to the 1-D schemes.

Costs for d dimensions: index d× the chosen base scheme; query = d
trapdoors; refinement intersects at the owner.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

from repro.core.scheme import QueryOutcome, RangeScheme
from repro.errors import DomainError, IndexStateError


class MultiDimScheme:
    """d-dimensional range search by per-dimension RSSE composition.

    Parameters
    ----------
    scheme_factories:
        One zero-argument factory per dimension, each returning a fresh
        (un-built) :class:`~repro.core.scheme.RangeScheme`.  Fresh keys
        per dimension are required — reuse would correlate the indexes.
    """

    def __init__(self, scheme_factories: "Sequence[Callable[[], RangeScheme]]") -> None:
        if not scheme_factories:
            raise DomainError("need at least one dimension")
        self.schemes: "list[RangeScheme]" = [factory() for factory in scheme_factories]
        self.dimensions = len(self.schemes)
        self._built = False

    def build_index(self, records: "Iterable[tuple]") -> None:
        """Index tuples ``(id, v_1, …, v_d)`` across all dimensions."""
        materialized = list(records)
        for rec in materialized:
            if len(rec) != self.dimensions + 1:
                raise DomainError(
                    f"record {rec!r} must have 1 id + {self.dimensions} values"
                )
        for dim, scheme in enumerate(self.schemes):
            scheme.build_index([(rec[0], rec[1 + dim]) for rec in materialized])
        self._built = True

    def query(self, ranges: "Sequence[tuple]") -> QueryOutcome:
        """Conjunctive range query: one ``(lo, hi)`` per dimension.

        Runs each dimension's full 1-D protocol and intersects the
        refined per-dimension answers at the owner.
        """
        if not self._built:
            raise IndexStateError("call build_index() before querying")
        if len(ranges) != self.dimensions:
            raise DomainError(
                f"need {self.dimensions} ranges, got {len(ranges)}"
            )
        trapdoor_seconds = server_seconds = 0.0
        token_bytes = rounds = raw_total = 0
        result: "frozenset | None" = None
        for scheme, (lo, hi) in zip(self.schemes, ranges):
            outcome = scheme.query(lo, hi)
            trapdoor_seconds += outcome.trapdoor_seconds
            server_seconds += outcome.server_seconds
            token_bytes += outcome.token_bytes
            rounds += outcome.rounds
            raw_total += len(outcome.raw_ids)
            result = outcome.ids if result is None else result & outcome.ids
        assert result is not None
        return QueryOutcome(
            ids=result,
            raw_ids=tuple(sorted(result)),
            false_positives=raw_total - len(result),
            token_bytes=token_bytes,
            rounds=rounds,
            trapdoor_seconds=trapdoor_seconds,
            server_seconds=server_seconds,
        )

    def index_size_bytes(self) -> int:
        """Combined index footprint across dimensions."""
        return sum(scheme.index_size_bytes() for scheme in self.schemes)
