"""Extensions beyond the paper's core: its stated future-work direction."""

from repro.extensions.multidim import MultiDimScheme

__all__ = ["MultiDimScheme"]
