"""Regeneration of every table and figure in the paper's evaluation.

Each ``figN``/``tableN`` function reproduces the corresponding artifact
of Section 8 / Appendix A at laptop scale (scale factors documented in
DESIGN.md §3 and recorded in EXPERIMENTS.md).  They return
:class:`~repro.harness.metrics.Series` objects; the CLI renders them as
the same rows/series the paper plots.

Scheme grouping follows the paper exactly: BRC and URC variants of the
same family have identical index costs (Figures 5, Table 2) and are
reported as one curve there, but appear separately in Figure 8 where the
cover technique changes the token count.
"""

from __future__ import annotations

import random
import time

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.baselines.sse_floor import SseFloor
from repro.core.registry import make_scheme
from repro.covers.brc import best_range_cover
from repro.covers.tdag import Tdag
from repro.covers.urc import uniform_range_cover
from repro.harness.metrics import Series, mib, timed
from repro.updates import BatchUpdateManager, insert
from repro.workloads.datasets import usps_like, with_distinct_fraction
from repro.workloads.queries import fixed_size_ranges, percent_of_domain_ranges

#: Default laptop-scale parameters (the paper's originals in comments).
FIG5_SIZES = (500, 1000, 1500, 2000, 2500)  # paper: 0.5M … 5M
FIG5_DOMAIN = 1 << 20  # paper: 103,017,914 (~2^27)
FIG67_N = 3000  # paper: full datasets
FIG67_GOWALLA_DOMAIN = 1 << 18  # scaled with n; range % is what matters
FIG67_QUERIES_PER_POINT = 5  # paper: 200K total
FIG6_QUERIES_PER_POINT = 20  # FP-rate averaging is cheap; use more
FIG8_DOMAIN = 1 << 20  # paper: 2^20 (identical!)
FIG8_QUERIES_PER_SIZE = 50  # paper: 1000
USPS_N = 2000  # paper: 389,032


def _gowalla(n: int, domain: int = FIG5_DOMAIN, seed: int = 42):
    return with_distinct_fraction(n, domain, 0.95, skew=0.0, seed=seed)


def _usps(n: int = USPS_N, seed: int = 42):
    return usps_like(n, seed=seed)


def _fresh(name: str, domain: int, seed: int = 7, **kwargs):
    scheme_kwargs = dict(rng=random.Random(seed))
    if name.startswith("constant"):
        scheme_kwargs["intersection_policy"] = "allow"
    scheme_kwargs.update(kwargs)
    return make_scheme(name, domain, **scheme_kwargs)


# ---------------------------------------------------------------------------
# Figure 5: index size and construction time vs dataset size (Gowalla)
# ---------------------------------------------------------------------------

#: One representative per cost-identical pair, exactly as the paper plots.
_FIG5_SCHEMES = (
    ("constant-brc/urc", "constant-brc"),
    ("logarithmic-brc/urc", "logarithmic-brc"),
    ("logarithmic-src", "logarithmic-src"),
    ("logarithmic-src-i", "logarithmic-src-i"),
)


def fig5(
    sizes: "tuple[int, ...]" = FIG5_SIZES,
    *,
    domain: int = FIG5_DOMAIN,
    include_pb: bool = True,
    seed: int = 42,
) -> "tuple[Series, Series]":
    """Figure 5(a) index size [MiB] and 5(b) construction time [s]."""
    size_series = Series("Fig 5(a) — Index size (Gowalla-like)", "n", "MiB")
    time_series = Series("Fig 5(b) — Construction time (Gowalla-like)", "n", "seconds")
    for n in sizes:
        records = _gowalla(n, domain, seed)
        sizes_row: dict[str, float] = {}
        times_row: dict[str, float] = {}
        for label, name in _FIG5_SCHEMES:
            scheme = _fresh(name, domain, seed)
            _, build_s = timed(scheme.build_index, records)
            sizes_row[label] = mib(scheme.index_size_bytes())
            times_row[label] = build_s
        if include_pb:
            pb = _fresh("pb", domain, seed)
            _, build_s = timed(pb.build_index, records)
            sizes_row["pb"] = mib(pb.index_size_bytes())
            times_row["pb"] = build_s
        size_series.add(n, sizes_row)
        time_series.add(n, times_row)
    return size_series, time_series


# ---------------------------------------------------------------------------
# Table 2: index costs on the skewed USPS-like dataset
# ---------------------------------------------------------------------------


def table2(
    n: int = USPS_N, *, include_pb: bool = True, seed: int = 42
) -> "list[tuple[str, float, float]]":
    """Table 2 rows: (scheme, index MiB, construction seconds)."""
    records = _usps(n, seed)
    domain = 276_841
    rows: list[tuple[str, float, float]] = []
    for label, name in _FIG5_SCHEMES:
        scheme = _fresh(name, domain, seed)
        _, build_s = timed(scheme.build_index, records)
        rows.append((label, mib(scheme.index_size_bytes()), build_s))
    if include_pb:
        pb = _fresh("pb", domain, seed)
        _, build_s = timed(pb.build_index, records)
        rows.append(("pb", mib(pb.index_size_bytes()), build_s))
    return rows


# ---------------------------------------------------------------------------
# Figure 6: false-positive rate vs range size (SRC vs SRC-i)
# ---------------------------------------------------------------------------


def fig6(
    dataset: str = "gowalla",
    *,
    n: int = FIG67_N,
    queries_per_point: int = FIG6_QUERIES_PER_POINT,
    percents: "tuple[float, ...]" = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    seed: int = 42,
) -> Series:
    """Figure 6(a)/(b): average FP rate per range-size percentage."""
    records, domain = _dataset(dataset, n, seed)
    series = Series(
        f"Fig 6 — False-positive rate ({dataset}-like)",
        "range % of domain",
        "FP rate",
    )
    schemes = {
        "logarithmic-src": _fresh("logarithmic-src", domain, seed),
        "logarithmic-src-i": _fresh("logarithmic-src-i", domain, seed),
    }
    for scheme in schemes.values():
        scheme.build_index(records)
    for i, percent in enumerate(percents):
        queries = percent_of_domain_ranges(
            domain, percent, queries_per_point, seed=seed + i
        )
        row: dict[str, float] = {}
        for label, scheme in schemes.items():
            rates = [scheme.query(lo, hi).false_positive_rate for lo, hi in queries]
            row[label] = sum(rates) / len(rates)
        series.add(percent, row)
    return series


# ---------------------------------------------------------------------------
# Figure 7: search time vs range size (all schemes + SSE floor)
# ---------------------------------------------------------------------------

_FIG7_SCHEMES = (
    ("constant-brc/urc", "constant-brc"),
    ("logarithmic-brc/urc", "logarithmic-brc"),
    ("logarithmic-src", "logarithmic-src"),
    ("logarithmic-src-i", "logarithmic-src-i"),
)


def fig7(
    dataset: str = "gowalla",
    *,
    n: int = FIG67_N,
    queries_per_point: int = FIG67_QUERIES_PER_POINT,
    percents: "tuple[float, ...]" = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    include_pb: bool = True,
    seed: int = 42,
) -> Series:
    """Figure 7(a)/(b): average server search seconds per range size."""
    records, domain = _dataset(dataset, n, seed)
    series = Series(
        f"Fig 7 — Search time ({dataset}-like)", "range % of domain", "seconds"
    )
    schemes = [(label, _fresh(name, domain, seed)) for label, name in _FIG7_SCHEMES]
    for _, scheme in schemes:
        scheme.build_index(records)
    pb = None
    if include_pb:
        pb = _fresh("pb", domain, seed)
        pb.build_index(records)
    oracle = PlaintextRangeIndex(records)
    floor = SseFloor(len(records), rng=random.Random(seed))
    for i, percent in enumerate(percents):
        queries = percent_of_domain_ranges(
            domain, percent, queries_per_point, seed=seed + i
        )
        row: dict[str, float] = {}
        for label, scheme in schemes:
            row[label] = sum(
                scheme.query(lo, hi).server_seconds for lo, hi in queries
            ) / len(queries)
        if pb is not None:
            row["pb"] = sum(
                pb.query(lo, hi).server_seconds for lo, hi in queries
            ) / len(queries)
        # The SSE floor: time to retrieve exactly r postings per query.
        floor_total = 0.0
        for lo, hi in queries:
            r = oracle.count(lo, hi)
            _, seconds = timed(floor.retrieve, r)
            floor_total += seconds
        row["sse-floor"] = floor_total / len(queries)
        series.add(percent, row)
    return series


# ---------------------------------------------------------------------------
# Figure 8: query size and query generation time at the owner
# ---------------------------------------------------------------------------


def fig8(
    *,
    domain: int = FIG8_DOMAIN,
    range_sizes: "tuple[int, ...]" = (1, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    queries_per_size: int = FIG8_QUERIES_PER_SIZE,
    seed: int = 42,
) -> "tuple[Series, Series]":
    """Figure 8(a) query bytes and 8(b) trapdoor generation seconds.

    Dataset-independent (the paper stresses this): only the covers and
    token formats matter, so schemes are built over a tiny dataset.
    """
    records = [(0, 0)]
    names = (
        ("constant-brc", "constant-brc"),
        ("constant-urc", "constant-urc"),
        ("logarithmic-brc", "logarithmic-brc"),
        ("logarithmic-urc", "logarithmic-urc"),
        ("logarithmic-src", "logarithmic-src"),
        ("logarithmic-src-i", "logarithmic-src-i"),
    )
    schemes = [(label, _fresh(name, domain, seed)) for label, name in names]
    for _, scheme in schemes:
        scheme.build_index(records)
    size_series = Series("Fig 8(a) — Query size", "range size", "bytes")
    time_series = Series("Fig 8(b) — Query generation time", "range size", "ms")
    for i, range_size in enumerate(range_sizes):
        queries = fixed_size_ranges(domain, range_size, queries_per_size, seed=seed + i)
        bytes_row: dict[str, float] = {}
        ms_row: dict[str, float] = {}
        for label, scheme in schemes:
            total_bytes = 0
            start = time.perf_counter()
            for lo, hi in queries:
                token = scheme.trapdoor(lo, hi)
                total_bytes += scheme.token_size_bytes(token)
            elapsed = time.perf_counter() - start
            if label == "logarithmic-src-i":
                # Interactive: the paper counts both rounds' tokens (2×24B);
                # the round-2 token has identical format and cost.
                total_bytes *= 2
                elapsed *= 2
            bytes_row[label] = total_bytes / len(queries)
            ms_row[label] = elapsed / len(queries) * 1000.0
        size_series.add(range_size, bytes_row)
        time_series.add(range_size, ms_row)
    return size_series, time_series


# ---------------------------------------------------------------------------
# Table 1: empirical validation of the asymptotic claims
# ---------------------------------------------------------------------------


def table1(
    *,
    n_small: int = 600,
    n_large: int = 2400,
    domain: int = 1 << 16,
    seed: int = 42,
) -> "list[tuple[str, str, float, str]]":
    """Empirical growth check of Table 1's storage column.

    Builds each scheme at two dataset sizes and reports the measured
    index growth factor against the asymptotic prediction for a 4×
    increase in n (storage is Θ(n·f(m)) for every scheme, so the factor
    must be ≈ 4).  Returns (scheme, claimed storage, measured factor,
    verdict) rows.
    """
    claims = {
        "constant-brc": "O(n)",
        "logarithmic-brc": "O(n log m)",
        "logarithmic-src": "O(n log m)",
        "logarithmic-src-i": "O(n log m)",
    }
    rows: list[tuple[str, str, float, str]] = []
    growth = n_large / n_small
    for name, claim in claims.items():
        sizes = []
        for n in (n_small, n_large):
            records = _gowalla(n, domain, seed)
            scheme = _fresh(name, domain, seed)
            scheme.build_index(records)
            sizes.append(scheme.index_size_bytes())
        factor = sizes[1] / sizes[0]
        verdict = "linear-in-n ok" if factor < growth * 1.25 else "SUPRALINEAR"
        rows.append((name, claim, factor, verdict))
    return rows


# ---------------------------------------------------------------------------
# Ablations (ours; DESIGN.md E-A1..E-A3)
# ---------------------------------------------------------------------------


def ablation_urc(
    *, domain: int = 1 << 20, range_sizes: "tuple[int, ...]" = (10, 100, 1000), trials: int = 200, seed: int = 42
) -> "list[tuple[int, int, int, int, int]]":
    """E-A1: BRC token-count variance vs URC canonical counts.

    Rows: (R, brc_min, brc_max, urc_min, urc_max) — URC min == max by
    construction, which is the whole point.
    """
    rng = random.Random(seed)
    rows = []
    for range_size in range_sizes:
        brc_counts, urc_counts = [], []
        for _ in range(trials):
            lo = rng.randrange(domain - range_size + 1)
            hi = lo + range_size - 1
            brc_counts.append(len(best_range_cover(lo, hi)))
            urc_counts.append(len(uniform_range_cover(lo, hi)))
        rows.append(
            (range_size, min(brc_counts), max(brc_counts), min(urc_counts), max(urc_counts))
        )
    return rows


def ablation_tdag(
    *, domain: int = 1 << 20, trials: int = 500, seed: int = 42
) -> "tuple[float, float]":
    """E-A2: measured SRC cover blow-up (subtree size / R); Lemma 1 says ≤ 4."""
    rng = random.Random(seed)
    tdag = Tdag(domain)
    worst = avg = 0.0
    for _ in range(trials):
        a, b = rng.randrange(domain), rng.randrange(domain)
        lo, hi = min(a, b), max(a, b)
        node = tdag.src_cover(lo, hi)
        ratio = node.size / (hi - lo + 1)
        worst = max(worst, ratio)
        avg += ratio / trials
    return avg, worst


def ablation_updates(
    *,
    steps: "tuple[int, ...]" = (2, 4, 8),
    batches: int = 16,
    batch_size: int = 64,
    domain: int = 1 << 16,
    seed: int = 42,
) -> "list[tuple[int, int, int, int]]":
    """E-A3: consolidation step s vs active indexes / merge work.

    Rows: (s, active_indexes_after_b_batches, consolidations,
    tuples_reencrypted).
    """
    rows = []
    for s in steps:
        rng = random.Random(seed)
        seeder = random.Random(seed + s)
        mgr = BatchUpdateManager(
            lambda: make_scheme(
                "logarithmic-brc", domain, rng=random.Random(seeder.randrange(2**62))
            ),
            consolidation_step=s,
            rng=rng,
        )
        next_id = 0
        for _ in range(batches):
            ops = []
            for _ in range(batch_size):
                ops.append(insert(next_id, rng.randrange(domain)))
                next_id += 1
            mgr.apply_batch(ops)
        rows.append(
            (s, mgr.active_indexes, mgr.stats.consolidations, mgr.stats.tuples_reencrypted)
        )
    return rows


def dispatch_demo(
    *,
    records: int = 320,
    domain: int = 1 << 10,
    dispatch: str = "auto",
    seed: int = 5,
) -> "tuple[list[list], dict[str, int]]":
    """Adaptive-dispatch demo: a hybrid store routing a mixed workload.

    Builds a :class:`~repro.rangestore.HybridRangeStore` (BRC + SRC
    lanes) over a skewed dataset — one hot value holds a quarter of the
    mass — runs a mix of point, narrow and wide queries, and reports
    one row per query: range, width, the scheme the cost dispatcher
    chose, its modeled cost, the measured latency, and the result size.
    ``dispatch`` is ``"auto"`` or a lane name to pin (the CLI's
    ``--dispatch`` override).

    Returns ``(rows, chosen_counts)``.
    """
    from repro.rangestore import HybridRangeStore

    rng = random.Random(seed)
    hot = domain // 3
    store = HybridRangeStore(
        domain_size=domain, dispatch=dispatch, rng=random.Random(seed + 1)
    )
    next_id = 0
    for _ in range(records // 4):
        store.insert(next_id, hot)
        next_id += 1
    while next_id < records:
        store.insert(next_id, rng.randrange(domain))
        next_id += 1
    store.flush()
    store.calibrate()

    queries: "list[tuple[int, int]]" = []
    for _ in range(4):  # points (one on the hot value)
        queries.append((rng.randrange(domain),) * 2)
    queries.append((hot, hot))
    for _ in range(4):  # narrow ranges in the sparse region
        lo = rng.randrange(domain - 32)
        queries.append((lo, lo + rng.randrange(1, 16)))
    for _ in range(3):  # wide ranges, some crossing the hot value
        lo = rng.randrange(domain // 2)
        queries.append((lo, min(domain - 1, lo + domain // 4)))

    rows: "list[list]" = []
    chosen: "dict[str, int]" = {}
    for lo, hi in queries:
        t0 = time.perf_counter()
        outcome = store.search(lo, hi)
        elapsed = time.perf_counter() - t0
        chosen[outcome.scheme_chosen] = chosen.get(outcome.scheme_chosen, 0) + 1
        rows.append(
            [
                f"[{lo}, {hi}]",
                hi - lo + 1,
                outcome.scheme_chosen + (" (forced)" if dispatch != "auto" else ""),
                round(outcome.est_cost_chosen * 1e6, 1),
                round(elapsed * 1e3, 3),
                outcome.result_size,
            ]
        )
    return rows, chosen


# ---------------------------------------------------------------------------


def _dataset(name: str, n: int, seed: int) -> "tuple[list, int]":
    """Resolve a dataset label to (records, domain)."""
    if name == "gowalla":
        domain = FIG67_GOWALLA_DOMAIN
        return with_distinct_fraction(n, domain, 0.95, skew=0.0, seed=seed), domain
    if name == "usps":
        return usps_like(n, seed=seed), 276_841
    raise ValueError(f"unknown dataset {name!r}; use 'gowalla' or 'usps'")
