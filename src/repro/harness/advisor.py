"""Scheme selection advisor: the paper's qualitative guidance, codified.

The paper closes each scheme section with a "qualitative comparison"
telling practitioners when to use what: SRC for uniform data, SRC-i
under skew, Logarithmic-BRC/URC when false positives are unacceptable,
Constant-* when storage dominates and queries never intersect,
Quadratic never (pedagogical).  ``recommend`` turns those paragraphs
into a deterministic decision with a human-readable justification, fed
by measured dataset statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class DatasetProfile:
    """The dataset statistics the recommendation conditions on."""

    n: int
    domain_size: int
    distinct_fraction: float
    #: Mass share of the single heaviest value (1/distinct ≈ uniform).
    max_value_share: float


@dataclass(frozen=True)
class WorkloadProfile:
    """What the application can and cannot tolerate."""

    #: Queries may overlap earlier queries (true for interactive use).
    intersecting_queries: bool = True
    #: False positives acceptable (client refinement affordable)?
    false_positives_ok: bool = True
    #: Hard cap on index expansion over the raw data (None = no cap).
    max_storage_factor: "float | None" = None
    #: Require hiding the result ordering/partitioning (highest privacy)?
    hide_order: bool = False
    #: Extra round trip acceptable?
    interactive_ok: bool = True


@dataclass(frozen=True)
class Recommendation:
    scheme: str
    reasons: "tuple[str, ...]"


def profile_dataset(records: "Iterable[tuple[int, int]]", domain_size: int) -> DatasetProfile:
    """Measure the statistics ``recommend`` needs."""
    from collections import Counter

    counts = Counter(value for _, value in records)
    n = sum(counts.values())
    return DatasetProfile(
        n=n,
        domain_size=domain_size,
        distinct_fraction=(len(counts) / n) if n else 0.0,
        max_value_share=(max(counts.values()) / n) if n else 0.0,
    )


#: Skew thresholds: below/above these the paper's USPS-vs-Gowalla
#: dichotomy kicks in (USPS: 5% distinct; Gowalla: 95%).
_SKEWED_DISTINCT_FRACTION = 0.3
_HEAVY_VALUE_SHARE = 0.05

#: Approximate index expansion factors over an O(n) baseline.
_STORAGE_FACTOR = {
    "constant": 1.0,
    "logarithmic": None,  # log2(m) + 1, computed per call
    "src": None,  # ~2 (log2(m) + 1)
}


def recommend(
    dataset: DatasetProfile, workload: "WorkloadProfile | None" = None
) -> Recommendation:
    """Pick a Table 1 scheme for this dataset and workload."""
    workload = workload or WorkloadProfile()
    reasons: list[str] = []
    log_m = max(1, dataset.domain_size - 1).bit_length()

    log_factor = log_m + 1
    src_factor = 2.0 * log_factor

    # Storage-capped and leakage-tolerant → Constant, if its functional
    # constraint (non-intersecting queries) holds.
    if (
        workload.max_storage_factor is not None
        and workload.max_storage_factor < log_factor
    ):
        if workload.intersecting_queries:
            reasons.append(
                f"storage cap {workload.max_storage_factor}x rules out the "
                f"Logarithmic family (needs ~{log_factor}x) but intersecting "
                "queries rule out Constant-*; relaxing the cap is required — "
                "recommending the smallest admissible Logarithmic scheme"
            )
            return Recommendation("logarithmic-brc", tuple(reasons))
        reasons.append(
            f"storage cap {workload.max_storage_factor}x admits only the "
            "O(n) Constant family"
        )
        reasons.append(
            "URC variant: position-independent token counts (security level "
            "2 > 1) at identical cost"
        )
        return Recommendation("constant-urc", tuple(reasons))

    if not workload.false_positives_ok:
        reasons.append("false positives forbidden → SRC family excluded")
        reasons.append(
            "URC variant: hides the range's position at no extra cost"
        )
        return Recommendation("logarithmic-urc", tuple(reasons))

    if workload.hide_order:
        skewed = (
            dataset.distinct_fraction < _SKEWED_DISTINCT_FRACTION
            or dataset.max_value_share > _HEAVY_VALUE_SHARE
        )
        if skewed and workload.interactive_ok:
            reasons.append(
                f"distinct fraction {dataset.distinct_fraction:.2f} / heaviest "
                f"value share {dataset.max_value_share:.2f} indicate skew: "
                "Logarithmic-SRC would flood with false positives (O(n) worst "
                "case); SRC-i bounds them at O(R + r)"
            )
            return Recommendation("logarithmic-src-i", tuple(reasons))
        if skewed:
            reasons.append(
                "data is skewed but the extra SRC-i round is not allowed: "
                "accepting Logarithmic-SRC's false-positive risk"
            )
            return Recommendation("logarithmic-src", tuple(reasons))
        reasons.append(
            "near-uniform data: single-index SRC is cheaper than SRC-i and "
            "its false positives stay O(R) (paper: 'SRC is preferable in "
            "non-skewed datasets')"
        )
        return Recommendation("logarithmic-src", tuple(reasons))

    # Default: exact answers, strong-but-not-maximal privacy, no extra
    # round — the paper's workhorse.
    reasons.append(
        "no hard constraints: Logarithmic-URC gives exact answers at "
        f"~{log_factor}x storage with only result-partitioning leakage"
    )
    return Recommendation("logarithmic-urc", tuple(reasons))
