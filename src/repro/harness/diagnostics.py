"""Index self-check — fsck for encrypted range indexes.

Long-lived deployments want to verify, without trusting the server,
that an index still answers correctly (e.g. after a snapshot restore, a
migration, or suspected tampering).  ``verify_scheme`` runs a battery of
randomized probes entirely owner-side:

1. **Refinement soundness** — every id a query returns decrypts to a
   record, and records claimed in-range actually are;
2. **Oracle agreement** — on demand (when the caller still holds the
   plaintext), query results match a plaintext scan exactly;
3. **Tamper canary** — authenticated record decryption converts silent
   server corruption into :class:`~repro.errors.IntegrityError`, which
   the check reports rather than raises.

Returns a :class:`DiagnosticsReport`; nothing is written or mutated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.scheme import RangeScheme
from repro.errors import IntegrityError, ReproError


@dataclass
class DiagnosticsReport:
    """Outcome of a self-check run."""

    queries_run: int = 0
    failures: "list[str]" = field(default_factory=list)
    integrity_errors: int = 0
    false_positive_total: int = 0

    @property
    def healthy(self) -> bool:
        return not self.failures and self.integrity_errors == 0


def verify_scheme(
    scheme: RangeScheme,
    *,
    probes: int = 20,
    oracle_records: "list[tuple[int, int]] | None" = None,
    rng: "random.Random | None" = None,
) -> DiagnosticsReport:
    """Probe a built scheme with random ranges and audit every answer."""
    rng = rng if rng is not None else random.Random()
    report = DiagnosticsReport()
    oracle = None
    if oracle_records is not None:
        from repro.baselines.plaintext import PlaintextRangeIndex

        oracle = PlaintextRangeIndex(oracle_records)
    for _ in range(probes):
        a, b = rng.randrange(scheme.domain_size), rng.randrange(scheme.domain_size)
        lo, hi = min(a, b), max(a, b)
        try:
            outcome = scheme.query(lo, hi)
        except IntegrityError:
            report.integrity_errors += 1
            report.queries_run += 1
            continue
        except ReproError as exc:
            report.failures.append(f"query [{lo},{hi}] raised {exc!r}")
            report.queries_run += 1
            continue
        report.queries_run += 1
        report.false_positive_total += outcome.false_positives
        # Soundness: every refined id decrypts to an in-range record.
        try:
            for rec in scheme.resolve(sorted(outcome.ids)):
                if not lo <= rec.value <= hi:
                    report.failures.append(
                        f"query [{lo},{hi}] returned out-of-range id {rec.id} "
                        f"(value {rec.value})"
                    )
        except ReproError as exc:
            report.failures.append(
                f"refinement for [{lo},{hi}] failed: {exc!r}"
            )
            continue
        if oracle is not None:
            expected = sorted(oracle.query(lo, hi))
            if sorted(outcome.ids) != expected:
                report.failures.append(
                    f"query [{lo},{hi}] disagrees with oracle: "
                    f"{len(outcome.ids)} ids vs {len(expected)}"
                )
        if not scheme.may_false_positive and outcome.false_positives:
            report.failures.append(
                f"scheme {scheme.name} promised no false positives but "
                f"query [{lo},{hi}] produced {outcome.false_positives}"
            )
    return report
