"""Prior-work comparison: RSSE vs OPE vs DET bucketization.

Not a paper figure — the paper dismisses these baselines analytically in
Section 2.1 — but the dismissal deserves numbers.  For one dataset this
experiment measures, per approach:

- operational costs: index bytes, average query wall-clock, false
  positives;
- surrendered information, using the attack suite: plaintext-order rank
  correlation recovered from the server's at-rest view, and histogram
  disclosure.

Run with ``rsse-experiments compare-baselines``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.baselines.det_bucket import DetBucketIndex
from repro.baselines.ope import OpeRangeIndex
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import make_scheme
from repro.crypto.prf import generate_key
from repro.leakage.baseline_attacks import det_histogram_attack, ope_rank_attack
from repro.workloads.datasets import with_distinct_fraction
from repro.workloads.queries import random_ranges


@dataclass
class ComparisonRow:
    """One approach's costs and measured leakage."""

    approach: str
    index_bytes: int
    avg_query_seconds: float
    avg_false_positives: float
    order_leak_correlation: float  # 1.0 = total order recovered at rest
    histogram_disclosed: bool


def compare_baselines(
    *,
    n: int = 1500,
    domain: int = 1 << 16,
    query_count: int = 12,
    seed: int = 42,
) -> "list[ComparisonRow]":
    """Measure RSSE (Logarithmic-SRC-i), OPE, and DET side by side."""
    records = with_distinct_fraction(n, domain, 0.6, skew=1.0, seed=seed)
    oracle = PlaintextRangeIndex(records)
    queries = random_ranges(domain, query_count, seed=seed + 1)
    values = dict(records)
    rows: list[ComparisonRow] = []

    # --- RSSE: Logarithmic-SRC-i -----------------------------------------
    scheme = make_scheme("logarithmic-src-i", domain, rng=random.Random(seed))
    scheme.build_index(records)
    total_s = total_fp = 0.0
    for lo, hi in queries:
        start = time.perf_counter()
        outcome = scheme.query(lo, hi)
        total_s += time.perf_counter() - start
        total_fp += outcome.false_positives
    rows.append(
        ComparisonRow(
            approach="rsse (logarithmic-src-i)",
            index_bytes=scheme.index_size_bytes(),
            avg_query_seconds=total_s / query_count,
            avg_false_positives=total_fp / query_count,
            order_leak_correlation=0.0,  # EDB at rest is pseudorandom
            histogram_disclosed=False,
        )
    )

    # --- OPE ----------------------------------------------------------------
    ope_index = OpeRangeIndex(generate_key(random.Random(seed)), domain)
    ope_index.build_index(records)
    total_s = 0.0
    for lo, hi in queries:
        start = time.perf_counter()
        ope_index.query(lo, hi)
        total_s += time.perf_counter() - start
    truth = [values[i] for i in ope_index._ids]
    attack = ope_rank_attack(
        ope_index.ciphertexts(), ope_index.ope.cipher_space, domain, truth
    )
    rows.append(
        ComparisonRow(
            approach="ope (sorted ciphertexts)",
            index_bytes=ope_index.index_size_bytes(),
            avg_query_seconds=total_s / query_count,
            avg_false_positives=0.0,
            order_leak_correlation=attack.rank_correlation,
            histogram_disclosed=True,  # DET property of OPE
        )
    )

    # --- DET bucketization ----------------------------------------------------
    det_index = DetBucketIndex(
        generate_key(random.Random(seed + 2)), domain, buckets=64
    )
    det_index.build_index(records)
    total_s = total_fp = 0.0
    for lo, hi in queries:
        start = time.perf_counter()
        returned = det_index.query(lo, hi)
        total_s += time.perf_counter() - start
        total_fp += len(returned) - oracle.count(lo, hi)
    occupancies = [len(ids) for ids in det_index._store.values()]
    det_attack = det_histogram_attack(occupancies, occupancies)
    rows.append(
        ComparisonRow(
            approach="det bucketization",
            index_bytes=det_index.index_size_bytes(),
            avg_query_seconds=total_s / query_count,
            avg_false_positives=total_fp / query_count,
            order_leak_correlation=0.0,
            histogram_disclosed=det_attack.histogram_distance == 0.0,
        )
    )
    return rows
