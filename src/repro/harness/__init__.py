"""Experiment harness: metrics, tables, figure/table regeneration,
scheme recommendation, and index self-checks."""

from repro.harness.advisor import (
    DatasetProfile,
    Recommendation,
    WorkloadProfile,
    profile_dataset,
    recommend,
)
from repro.harness.diagnostics import DiagnosticsReport, verify_scheme
from repro.harness.metrics import Series, SeriesPoint, Stopwatch, mib, timed
from repro.harness.tables import render_series, render_table, series_to_csv

__all__ = [
    "DatasetProfile",
    "DiagnosticsReport",
    "Recommendation",
    "Series",
    "SeriesPoint",
    "Stopwatch",
    "WorkloadProfile",
    "mib",
    "profile_dataset",
    "recommend",
    "render_series",
    "render_table",
    "series_to_csv",
    "timed",
    "verify_scheme",
]
