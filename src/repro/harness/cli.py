"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    rsse-experiments fig5a            # or: python -m repro.harness.cli fig5a
    rsse-experiments all --csv-dir results/

Every subcommand prints the same rows/series the paper reports; ``--csv``
additionally writes machine-readable output.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness import experiments
from repro.harness.tables import render_series, render_table, series_to_csv

_EXPERIMENTS = (
    "table1",
    "fig5a",
    "fig5b",
    "table2",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "ablation-urc",
    "ablation-tdag",
    "ablation-updates",
    "compare-baselines",
    "dispatch",
)


def _write_csv(csv_dir: "pathlib.Path | None", name: str, text: str) -> None:
    if csv_dir is None:
        return
    csv_dir.mkdir(parents=True, exist_ok=True)
    (csv_dir / f"{name}.csv").write_text(text)


def run_experiment(
    name: str,
    csv_dir: "pathlib.Path | None" = None,
    *,
    dispatch: str = "auto",
) -> str:
    """Run one experiment by CLI name, returning its rendered output.

    ``dispatch`` only affects the ``dispatch`` experiment: ``"auto"``
    lets the cost dispatcher choose per query, a scheme name pins every
    query to that lane.
    """
    if name == "dispatch":
        rows, chosen = experiments.dispatch_demo(dispatch=dispatch)
        _write_csv(
            csv_dir,
            name,
            "range,width,scheme,est_cost_us,measured_ms,results\n"
            + "\n".join(
                # The range cell contains a comma — quote it, or every
                # column after it shifts by one in any CSV reader.
                ",".join([f'"{row[0]}"'] + [str(c) for c in row[1:]])
                for row in rows
            ),
        )
        tally = ", ".join(f"{s}: {n}" for s, n in sorted(chosen.items()))
        return (
            "== Adaptive dispatch — hybrid store, mixed workload ==\n"
            + render_table(
                ["range", "width", "scheme chosen", "est cost us", "measured ms", "results"],
                rows,
            )
            + f"\nlane tally: {tally}"
        )
    if name in ("fig5a", "fig5b"):
        size_series, time_series = experiments.fig5()
        series = size_series if name == "fig5a" else time_series
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name == "table2":
        rows = experiments.table2()
        _write_csv(
            csv_dir,
            name,
            "scheme,index_mib,construction_s\n"
            + "\n".join(f"{s},{m},{t}" for s, m, t in rows),
        )
        return "== Table 2 — Index costs (USPS-like) ==\n" + render_table(
            ["scheme", "index MiB", "construction s"], [list(r) for r in rows]
        )
    if name in ("fig6a", "fig6b"):
        series = experiments.fig6("gowalla" if name == "fig6a" else "usps")
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name in ("fig7a", "fig7b"):
        series = experiments.fig7("gowalla" if name == "fig7a" else "usps")
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name in ("fig8a", "fig8b"):
        size_series, time_series = experiments.fig8()
        series = size_series if name == "fig8a" else time_series
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name == "table1":
        rows = experiments.table1()
        return "== Table 1 — Storage asymptotics check ==\n" + render_table(
            ["scheme", "claimed", "4x-n growth factor", "verdict"],
            [list(r) for r in rows],
        )
    if name == "ablation-urc":
        rows = experiments.ablation_urc()
        return "== Ablation — BRC vs URC token counts ==\n" + render_table(
            ["R", "brc min", "brc max", "urc min", "urc max"],
            [list(r) for r in rows],
        )
    if name == "ablation-tdag":
        avg, worst = experiments.ablation_tdag()
        return (
            "== Ablation — TDAG SRC blow-up (Lemma 1 bound: 4) ==\n"
            f"average cover/R ratio: {avg:.3f}\nworst   cover/R ratio: {worst:.3f}"
        )
    if name == "ablation-updates":
        rows = experiments.ablation_updates()
        return "== Ablation — consolidation step ==\n" + render_table(
            ["s", "active idx", "merges", "re-encrypted"], [list(r) for r in rows]
        )
    if name == "compare-baselines":
        from repro.harness.baseline_comparison import compare_baselines

        rows = compare_baselines()
        return (
            "== Prior-work comparison (Section 2.1 made quantitative) ==\n"
            + render_table(
                [
                    "approach",
                    "index B",
                    "avg query s",
                    "avg FPs",
                    "order leaked (rank corr.)",
                    "histogram leaked",
                ],
                [
                    [
                        r.approach,
                        r.index_bytes,
                        r.avg_query_seconds,
                        r.avg_false_positives,
                        r.order_leak_correlation,
                        "yes" if r.histogram_disclosed else "no",
                    ]
                    for r in rows
                ],
            )
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rsse-experiments",
        description="Regenerate the tables/figures of 'Practical Private "
        "Range Search Revisited' (SIGMOD 2016).",
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + ("all",),
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="also write CSV output into this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="exec-engine thread-pool width for every scheme the "
        "experiments build (1 = fully serial; default: "
        "REPRO_EXEC_WORKERS or CPU count, capped at 8)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the exec engine's GGM expansion cache",
    )
    parser.add_argument(
        "--dispatch",
        default="auto",
        metavar="auto|SCHEME",
        help="for the 'dispatch' experiment: 'auto' (cost-based, the "
        "default) or a scheme name pinning every query to that lane",
    )
    args = parser.parse_args(argv)
    if args.workers is not None or args.no_cache:
        from repro.exec import configure_default_executor

        configure_default_executor(
            workers=args.workers, cache=False if args.no_cache else None
        )
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(run_experiment(name, args.csv_dir, dispatch=args.dispatch))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
