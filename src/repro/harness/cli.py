"""Command-line entry point: experiments, plus the network service.

Usage::

    rsse-experiments fig5a            # or: python -m repro.harness.cli fig5a
    rsse-experiments all --csv-dir results/
    rsse-experiments serve --port 9471 --sqlite server.db
    rsse-experiments connect --port 9471 --records 500 --queries 20
    rsse-experiments ingest --ops 600 --scheme logarithmic-src-i
    rsse-experiments cluster --shards 4 --bootstrap
    rsse-experiments top --once --json
    rsse-experiments trace --queries 8 --format chrome --out trace.json
    rsse-experiments slow --json --threshold-ms 5
    rsse-experiments alerts --once --json

Every experiment subcommand prints the same rows/series the paper
reports; ``--csv-dir`` additionally writes machine-readable output.
``serve`` hosts an :class:`~repro.net.RsseNetServer` (key-free: it only
ever sees ciphertext); ``connect`` is the owner-side smoke client —
build, outsource over TCP, query, verify against the plaintext oracle,
and print latency plus the server's stats surface.  ``top`` is the live
cluster monitor (per-shard QPS/tail-latency table, with SLO states);
``trace`` captures cross-layer query traces and exports them as Chrome
trace or JSONL; ``slow`` pulls the slow-query flight recorder's
captures; ``alerts`` evaluates declarative SLOs headlessly (``--once
--json`` exits nonzero on a page state — the CI/cron hook).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness import experiments
from repro.harness.tables import render_series, render_table, series_to_csv

_EXPERIMENTS = (
    "table1",
    "fig5a",
    "fig5b",
    "table2",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "ablation-urc",
    "ablation-tdag",
    "ablation-updates",
    "compare-baselines",
    "dispatch",
)


def _add_crypto_workers_arg(parser: argparse.ArgumentParser) -> None:
    """The ``--crypto-workers`` knob, shared by every subcommand."""
    parser.add_argument(
        "--crypto-workers",
        type=int,
        default=None,
        metavar="N",
        help="crypto-kernel worker processes for bulk PRF/GGM batches "
        "(0 forces the serial kernel; default: REPRO_CRYPTO_WORKERS "
        "or serial)",
    )


def _apply_crypto_workers(crypto_workers: "int | None") -> None:
    """Reconfigure the default kernel before any engine resolves it."""
    if crypto_workers is not None:
        from repro.crypto.kernel import configure_default_kernel

        configure_default_kernel(crypto_workers)


def _write_csv(csv_dir: "pathlib.Path | None", name: str, text: str) -> None:
    if csv_dir is None:
        return
    csv_dir.mkdir(parents=True, exist_ok=True)
    (csv_dir / f"{name}.csv").write_text(text)


def run_experiment(
    name: str,
    csv_dir: "pathlib.Path | None" = None,
    *,
    dispatch: str = "auto",
) -> str:
    """Run one experiment by CLI name, returning its rendered output.

    ``dispatch`` only affects the ``dispatch`` experiment: ``"auto"``
    lets the cost dispatcher choose per query, a scheme name pins every
    query to that lane.
    """
    if name == "dispatch":
        rows, chosen = experiments.dispatch_demo(dispatch=dispatch)
        _write_csv(
            csv_dir,
            name,
            "range,width,scheme,est_cost_us,measured_ms,results\n"
            + "\n".join(
                # The range cell contains a comma — quote it, or every
                # column after it shifts by one in any CSV reader.
                ",".join([f'"{row[0]}"'] + [str(c) for c in row[1:]])
                for row in rows
            ),
        )
        tally = ", ".join(f"{s}: {n}" for s, n in sorted(chosen.items()))
        return (
            "== Adaptive dispatch — hybrid store, mixed workload ==\n"
            + render_table(
                ["range", "width", "scheme chosen", "est cost us", "measured ms", "results"],
                rows,
            )
            + f"\nlane tally: {tally}"
        )
    if name in ("fig5a", "fig5b"):
        size_series, time_series = experiments.fig5()
        series = size_series if name == "fig5a" else time_series
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name == "table2":
        rows = experiments.table2()
        _write_csv(
            csv_dir,
            name,
            "scheme,index_mib,construction_s\n"
            + "\n".join(f"{s},{m},{t}" for s, m, t in rows),
        )
        return "== Table 2 — Index costs (USPS-like) ==\n" + render_table(
            ["scheme", "index MiB", "construction s"], [list(r) for r in rows]
        )
    if name in ("fig6a", "fig6b"):
        series = experiments.fig6("gowalla" if name == "fig6a" else "usps")
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name in ("fig7a", "fig7b"):
        series = experiments.fig7("gowalla" if name == "fig7a" else "usps")
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name in ("fig8a", "fig8b"):
        size_series, time_series = experiments.fig8()
        series = size_series if name == "fig8a" else time_series
        _write_csv(csv_dir, name, series_to_csv(series))
        return render_series(series)
    if name == "table1":
        rows = experiments.table1()
        return "== Table 1 — Storage asymptotics check ==\n" + render_table(
            ["scheme", "claimed", "4x-n growth factor", "verdict"],
            [list(r) for r in rows],
        )
    if name == "ablation-urc":
        rows = experiments.ablation_urc()
        return "== Ablation — BRC vs URC token counts ==\n" + render_table(
            ["R", "brc min", "brc max", "urc min", "urc max"],
            [list(r) for r in rows],
        )
    if name == "ablation-tdag":
        avg, worst = experiments.ablation_tdag()
        return (
            "== Ablation — TDAG SRC blow-up (Lemma 1 bound: 4) ==\n"
            f"average cover/R ratio: {avg:.3f}\nworst   cover/R ratio: {worst:.3f}"
        )
    if name == "ablation-updates":
        rows = experiments.ablation_updates()
        return "== Ablation — consolidation step ==\n" + render_table(
            ["s", "active idx", "merges", "re-encrypted"], [list(r) for r in rows]
        )
    if name == "compare-baselines":
        from repro.harness.baseline_comparison import compare_baselines

        rows = compare_baselines()
        return (
            "== Prior-work comparison (Section 2.1 made quantitative) ==\n"
            + render_table(
                [
                    "approach",
                    "index B",
                    "avg query s",
                    "avg FPs",
                    "order leaked (rank corr.)",
                    "histogram leaked",
                ],
                [
                    [
                        r.approach,
                        r.index_bytes,
                        r.avg_query_seconds,
                        r.avg_false_positives,
                        r.order_leak_correlation,
                        "yes" if r.histogram_disclosed else "no",
                    ]
                    for r in rows
                ],
            )
        )
    raise ValueError(f"unknown experiment {name!r}")


def _serve_main(argv: "list[str]") -> int:
    """``rsse-experiments serve``: host the network server until ^C."""
    import asyncio

    from repro.net import RsseNetServer
    from repro.protocol import RsseServer
    from repro.storage import InMemoryBackend, SqliteBackend

    parser = argparse.ArgumentParser(
        prog="rsse-experiments serve",
        description="Host a key-free RSSE server over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=9471, help="0 picks a free port"
    )
    parser.add_argument(
        "--sqlite",
        metavar="PATH",
        default=None,
        help="persist uploaded state to this SQLite file "
        "(in-memory when omitted; existing handles rehydrate)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission bound: frames processed at once across all "
        "connections (backpressure beyond it)",
    )
    parser.add_argument(
        "--max-frame-mb",
        type=int,
        default=64,
        help="reject frames larger than this many MiB",
    )
    parser.add_argument(
        "--shard",
        default="",
        metavar="I/N",
        help="cluster shard label (e.g. 2/4) — rides the stats frame so "
        "a router's health view can title this node",
    )
    parser.add_argument(
        "--tls-cert",
        metavar="PEM",
        default=None,
        help="serve TLS with this certificate chain (requires --tls-key)",
    )
    parser.add_argument(
        "--tls-key",
        metavar="PEM",
        default=None,
        help="private key for --tls-cert",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="trace one in every N queries (always-on sampled tracing; "
        "default: REPRO_TRACE_SAMPLE or off)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="flight-record any query slower than this many ms "
        "(default: REPRO_SLOW_MS or off)",
    )
    parser.add_argument(
        "--slow-p99x",
        type=float,
        default=None,
        metavar="X",
        help="flight-record queries slower than X times the live per-op "
        "p99 (default: REPRO_SLOW_P99X or off)",
    )
    parser.add_argument(
        "--event-log",
        metavar="PATH",
        default=None,
        help="append structured lifecycle events to this JSONL file "
        "(default: REPRO_EVENT_LOG or in-memory only)",
    )
    _add_crypto_workers_arg(parser)
    args = parser.parse_args(argv)
    if bool(args.tls_cert) != bool(args.tls_key):
        parser.error("--tls-cert and --tls-key must be given together")
    # Before RsseServer construction: that is when the default engine —
    # and with it the default crypto kernel — gets resolved.
    _apply_crypto_workers(args.crypto_workers)
    ssl_context = None
    if args.tls_cert:
        import ssl as ssl_module

        ssl_context = ssl_module.SSLContext(ssl_module.PROTOCOL_TLS_SERVER)
        ssl_context.load_cert_chain(args.tls_cert, args.tls_key)
    backend = (
        SqliteBackend(args.sqlite) if args.sqlite else InMemoryBackend()
    )
    core_kwargs = {}
    if args.trace_sample is not None:
        from repro.obs import TraceSampler

        core_kwargs["trace_sampler"] = TraceSampler(args.trace_sample)
    if args.slow_ms is not None or args.slow_p99x is not None:
        from repro.obs import FlightRecorder

        core_kwargs["flight"] = FlightRecorder(
            threshold_s=None if args.slow_ms is None else args.slow_ms / 1e3,
            p99_factor=args.slow_p99x,
        )
    if args.event_log is not None:
        from repro.obs import EventLog

        core_kwargs["events"] = EventLog(path=args.event_log)
    server = RsseNetServer(
        RsseServer(backend, **core_kwargs),
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_frame_bytes=args.max_frame_mb << 20,
        ssl=ssl_context,
        shard=args.shard,
    )

    async def run() -> None:
        import signal

        await server.start()
        shard_note = f", shard {args.shard}" if args.shard else ""
        tls_note = ", tls" if ssl_context is not None else ""
        print(
            f"rsse-server listening on {args.host}:{server.port} "
            f"(backend: {'sqlite:' + args.sqlite if args.sqlite else 'memory'}, "
            f"max in-flight: {server.max_inflight}{shard_note}{tls_note})",
            flush=True,
        )
        # ^C/SIGTERM set an event instead of raising, so shutdown goes
        # through server.stop() — in-flight requests finish and flush
        # (the graceful drain the class promises), not task cancellation.
        stop_signal = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_signal.set)
            except (NotImplementedError, RuntimeError):  # non-POSIX loops
                pass
        await stop_signal.wait()
        await server.stop()

    drained = True
    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        drained = False  # signal handler unavailable — tasks were cancelled
    finally:
        backend.close()
    stats = server.stats
    print(
        f"\n{'drained' if drained else 'stopped (no drain)'}. "
        f"{stats.connections_total} connections, "
        f"{stats.frames_in} frames in, {stats.frames_out} out, "
        f"{stats.errors} errors"
    )
    return 0


def _connect_main(argv: "list[str]") -> int:
    """``rsse-experiments connect``: owner-side verification client."""
    import random
    import time

    from repro.baselines.plaintext import PlaintextRangeIndex
    from repro.core.registry import SCHEMES, make_scheme
    from repro.net import NetTransport
    from repro.protocol import RemoteRangeClient

    parser = argparse.ArgumentParser(
        prog="rsse-experiments connect",
        description="Outsource a seeded dataset to a running server, "
        "query it back over TCP and verify against the plaintext oracle.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9471)
    parser.add_argument(
        "--scheme",
        default="logarithmic-brc",
        choices=sorted(n for n in SCHEMES if n != "pb"),
    )
    parser.add_argument("--records", type=int, default=500)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--pool", type=int, default=2, metavar="N")
    parser.add_argument("--seed", type=int, default=7)
    _add_crypto_workers_arg(parser)
    args = parser.parse_args(argv)
    _apply_crypto_workers(args.crypto_workers)

    rng = random.Random(args.seed)
    records = [(i, rng.randrange(args.domain)) for i in range(args.records)]
    oracle = PlaintextRangeIndex(records)
    kwargs = (
        {"intersection_policy": "allow"}
        if args.scheme.startswith("constant")
        else {}
    )
    scheme = make_scheme(
        args.scheme, args.domain, rng=random.Random(args.seed + 1), **kwargs
    )
    with NetTransport(args.host, args.port, pool_size=args.pool) as transport:
        client = RemoteRangeClient(scheme, transport, rng=rng)
        t0 = time.perf_counter()
        client.outsource(records)
        upload_s = time.perf_counter() - t0
        print(
            f"outsourced {args.records} records ({args.scheme}) "
            f"in {upload_s * 1000:.1f} ms"
        )
        latencies = []
        mismatches = 0
        for _ in range(args.queries):
            lo = rng.randrange(args.domain)
            hi = rng.randrange(lo, args.domain)
            t0 = time.perf_counter()
            got = client.query(lo, hi)
            latencies.append(time.perf_counter() - t0)
            if got != frozenset(oracle.query(lo, hi)):
                mismatches += 1
                print(f"MISMATCH on [{lo}, {hi}]")
        mean_ms = sum(latencies) / len(latencies) * 1000 if latencies else 0.0
        max_ms = max(latencies) * 1000 if latencies else 0.0
        print(
            f"{args.queries} queries over TCP: mean {mean_ms:.2f} ms, "
            f"max {max_ms:.2f} ms, {mismatches} mismatches"
        )
        stats = transport.stats()
        net = stats.get("net", {})
        print(
            f"server: {net.get('frames_in', '?')} frames in / "
            f"{net.get('frames_out', '?')} out, "
            f"{net.get('connections_total', '?')} connections, "
            f"{stats.get('server', {}).get('stored_bytes', '?')} bytes stored"
        )
    return 1 if mismatches else 0


def _ingest_main(argv: "list[str]") -> int:
    """``rsse-experiments ingest``: live-ingest churn smoke client.

    Drives a mixed insert/delete update stream through a
    :class:`~repro.net.NetRangeStore` — batched update frames,
    server-side builds and logarithmic consolidation — interleaving
    searches that are verified against a plaintext dict oracle after
    every batch.  With no ``--host`` it self-hosts an in-thread server;
    point ``--host``/``--port`` at a running ``serve`` instance to
    exercise a real deployment.
    """
    import random
    import time

    from repro.core.registry import SCHEMES
    from repro.net import NetRangeStore

    parser = argparse.ArgumentParser(
        prog="rsse-experiments ingest",
        description="Churn a NetRangeStore over TCP (batched update "
        "frames, server-side consolidation) and verify every search "
        "against the plaintext oracle.",
    )
    parser.add_argument(
        "--host", default=None,
        help="server to connect to (default: self-host in-process)",
    )
    parser.add_argument("--port", type=int, default=9471)
    parser.add_argument(
        "--scheme",
        default="logarithmic-brc",
        choices=sorted(n for n in SCHEMES if n != "pb"),
    )
    parser.add_argument("--records", type=int, default=400,
                        help="bulk-loaded records before churn starts")
    parser.add_argument("--domain", type=int, default=1 << 12)
    parser.add_argument("--step", type=int, default=4,
                        help="consolidation step s")
    parser.add_argument("--batch", type=int, default=16,
                        help="update ops per batch frame")
    parser.add_argument("--ops", type=int, default=320,
                        help="churn ops total (half inserts, half deletes)")
    parser.add_argument("--delete-frac", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    _add_crypto_workers_arg(parser)
    args = parser.parse_args(argv)
    _apply_crypto_workers(args.crypto_workers)

    server = None
    if args.host is None:
        from repro.net import serve_in_thread

        server = serve_in_thread()
        host, port = server.host, server.port
        print(f"self-hosted server on {host}:{port}")
    else:
        host, port = args.host, args.port

    rng = random.Random(args.seed)
    oracle = {i: rng.randrange(args.domain) for i in range(args.records)}
    next_id = args.records
    mismatches = 0
    latencies: "list[float]" = []
    try:
        with NetRangeStore.connect(
            host, port,
            domain_size=args.domain,
            scheme=args.scheme,
            consolidation_step=args.step,
        ) as store:
            t0 = time.perf_counter()
            store.insert_many(oracle.items())
            store.flush()
            print(
                f"bulk-loaded {args.records} records ({args.scheme}, "
                f"s={args.step}) in "
                f"{(time.perf_counter() - t0) * 1000:.1f} ms"
            )

            def check() -> None:
                nonlocal mismatches
                lo = rng.randrange(args.domain)
                hi = rng.randrange(lo, args.domain)
                t0 = time.perf_counter()
                outcome = store.search(lo, hi)
                latencies.append(time.perf_counter() - t0)
                expected = frozenset(
                    rid for rid, v in oracle.items() if lo <= v <= hi
                )
                if outcome.ids != expected:
                    mismatches += 1
                    print(f"MISMATCH on [{lo}, {hi}]")

            ops_done = 0
            t0 = time.perf_counter()
            while ops_done < args.ops:
                for _ in range(min(args.batch, args.ops - ops_done)):
                    if oracle and rng.random() < args.delete_frac:
                        rid = rng.choice(list(oracle))
                        store.delete(rid, oracle.pop(rid))
                    else:
                        value = rng.randrange(args.domain)
                        oracle[next_id] = value
                        store.insert(next_id, value)
                        next_id += 1
                    ops_done += 1
                store.flush()
                check()
            elapsed = time.perf_counter() - t0

            lat = sorted(latencies)
            p50 = _percentile_ms(lat, 0.50)
            p99 = _percentile_ms(lat, 0.99)
            print(
                f"{ops_done} churn ops in {elapsed * 1000:.1f} ms "
                f"({ops_done / elapsed:.0f} ops/s), "
                f"{len(latencies)} verified searches: "
                f"p50 {p50:.2f} ms, p99 {p99:.2f} ms, "
                f"{mismatches} mismatches"
            )
            stats = store.transport.stats()
            store_stats = stats.get("server", {}).get("stores", {}).get(
                str(store.index_id), {}
            )
            print(
                f"store {store.index_id}: "
                f"{store_stats.get('consolidations', '?')} consolidations, "
                f"{store_stats.get('active_indexes', '?')} active indexes, "
                f"{store_stats.get('pending_ops', '?')} pending ops"
            )
            store.drop()
    finally:
        if server is not None:
            server.stop()
    return 1 if mismatches else 0


def _percentile_ms(sorted_latencies: "list[float]", q: float) -> float:
    if not sorted_latencies:
        return 0.0
    index = min(
        len(sorted_latencies) - 1, int(q * (len(sorted_latencies) - 1))
    )
    return sorted_latencies[index] * 1000.0


def _cluster_main(argv: "list[str]") -> int:
    """``rsse-experiments cluster``: self-hosted N-shard demo.

    Spins up N in-process shard servers, outsources a seeded dataset
    through the scatter-gather router (writing per-shard bootstrap
    snapshots), verifies cluster answers against the plaintext oracle,
    and prints the cluster health table.  With ``--bootstrap`` it then
    walks the full recovery story: kill one shard, show it DOWN,
    bootstrap a replacement node from the snapshot, bump the topology,
    and verify answers are back to byte-identical.
    """
    import random
    import tempfile
    import time

    from repro.baselines.plaintext import PlaintextRangeIndex
    from repro.cluster import (
        ClusterRouter,
        bootstrap_shard,
        make_shard_map,
        render_health,
        shard_snapshot_path,
    )
    from repro.core.registry import SCHEMES, make_scheme
    from repro.net import serve_in_thread

    parser = argparse.ArgumentParser(
        prog="rsse-experiments cluster",
        description="Host an N-shard cluster in-process, verify "
        "scatter-gather answers against the plaintext oracle, and "
        "optionally walk the kill/bootstrap recovery path.",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--scheme",
        default="logarithmic-brc",
        choices=sorted(n for n in SCHEMES if n != "pb"),
    )
    parser.add_argument("--records", type=int, default=400)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--bootstrap",
        action="store_true",
        help="also kill shard 0 and walk the snapshot-bootstrap recovery",
    )
    _add_crypto_workers_arg(parser)
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    _apply_crypto_workers(args.crypto_workers)

    rng = random.Random(args.seed)
    records = [(i, rng.randrange(args.domain)) for i in range(args.records)]
    oracle = PlaintextRangeIndex(records)
    ranges = []
    for _ in range(args.queries):
        lo = rng.randrange(args.domain)
        ranges.append((lo, rng.randrange(lo, args.domain)))
    kwargs = (
        {"intersection_policy": "allow"}
        if args.scheme.startswith("constant")
        else {}
    )

    def verify(router) -> int:
        got = router.query_many(ranges)
        return sum(
            1
            for (lo, hi), ids in zip(ranges, got)
            if ids != frozenset(oracle.query(lo, hi))
        )

    servers = [
        serve_in_thread(shard=f"{i}/{args.shards}")
        for i in range(args.shards)
    ]
    mismatches = 0
    with tempfile.TemporaryDirectory() as snapshot_dir:
        shard_map = make_shard_map([(s.host, s.port) for s in servers])
        schemes = [
            make_scheme(
                args.scheme, args.domain,
                rng=random.Random(args.seed + 1 + i), **kwargs,
            )
            for i in range(args.shards)
        ]
        router = ClusterRouter(schemes, shard_map)
        try:
            snapshot_ok = args.scheme != "quadratic"  # no snapshot support
            t0 = time.perf_counter()
            counts = router.outsource(
                records,
                snapshot_dir=snapshot_dir if snapshot_ok else None,
            )
            print(
                f"outsourced {args.records} records over {args.shards} "
                f"shards ({args.scheme}) in "
                f"{(time.perf_counter() - t0) * 1000:.1f} ms; "
                f"per-shard counts: {counts}"
            )
            mismatches = verify(router)
            print(
                f"{args.queries} scatter-gather queries: "
                f"{mismatches} oracle mismatches"
            )
            print(render_health(router.health()))
            if args.bootstrap and not snapshot_ok:
                print("(--bootstrap skipped: quadratic has no snapshots)")
            elif args.bootstrap:
                print("\n-- killing shard 0 --")
                servers[0].stop()
                print(render_health(router.health()))
                replacement = serve_in_thread(shard=f"0/{args.shards}")
                servers[0] = replacement
                new_map = router.shard_map.replace(
                    0, replacement.host, replacement.port
                )
                restored = bootstrap_shard(
                    shard_snapshot_path(snapshot_dir, 0),
                    new_map.shards[0],
                )
                router.apply_topology(new_map)
                print(
                    f"bootstrapped shard 0 onto "
                    f"{replacement.host}:{replacement.port} "
                    f"({restored} records); topology now v{new_map.version}"
                )
                recovered = verify(router)
                mismatches += recovered
                print(
                    f"{args.queries} post-recovery queries: "
                    f"{recovered} oracle mismatches"
                )
                print(render_health(router.health()))
        finally:
            router.close()
            for server in servers:
                server.stop()
    return 1 if mismatches else 0


def _spin_cluster(args, core_factory=None):
    """N in-thread shard servers plus a router with seeded data uploaded.

    Shared by the ``top``/``trace``/``slow``/``alerts`` subcommands'
    self-hosted demo modes.  ``core_factory`` (a zero-arg callable
    returning an :class:`~repro.protocol.RsseServer`) customizes each
    shard's core — how ``slow`` arms the flight recorder per shard.
    Returns ``(servers, router, rng)``; the caller owns teardown
    (``router.close()`` then ``server.stop()`` each).
    """
    import random

    from repro.cluster import ClusterRouter, make_shard_map
    from repro.core.registry import make_scheme
    from repro.net import serve_in_thread

    rng = random.Random(args.seed)
    records = [(i, rng.randrange(args.domain)) for i in range(args.records)]
    kwargs = (
        {"intersection_policy": "allow"}
        if args.scheme.startswith("constant")
        else {}
    )
    servers = [
        serve_in_thread(
            core_factory() if core_factory is not None else None,
            shard=f"{i}/{args.shards}",
        )
        for i in range(args.shards)
    ]
    try:
        shard_map = make_shard_map([(s.host, s.port) for s in servers])
        schemes = [
            make_scheme(
                args.scheme,
                args.domain,
                rng=random.Random(args.seed + 1 + i),
                **kwargs,
            )
            for i in range(args.shards)
        ]
        router = ClusterRouter(schemes, shard_map)
        router.outsource(records)
    except BaseException:
        for server in servers:
            server.stop()
        raise
    return servers, router, rng


#: Default SLO trio for the ``top`` / ``alerts`` subcommands — a
#: latency bound on the query-serving op, an error-rate ceiling, and a
#: fleet reachability objective.
_DEFAULT_SLOS = (
    "search-p99: p99(op.multi-search) < 250ms over 1m",
    "error-rate: error_rate < 5% over 1m",
    "fleet: unreachable == 0",
)


def _demo_cluster(args, core_factory=None):
    """Self-hosted cluster plus background query load for the monitors.

    Returns ``(addrs, teardown)`` — ``teardown()`` stops the load
    thread, router and servers.  Shared by ``top`` and ``alerts`` so
    both demos have numbers that move.
    """
    import threading

    from repro.obs import new_trace_id

    servers, router, rng = _spin_cluster(args, core_factory)
    ranges = []
    for _ in range(32):
        lo = rng.randrange(args.domain)
        ranges.append((lo, rng.randrange(lo, args.domain)))
    stop = threading.Event()

    def load() -> None:
        i = 0
        while not stop.is_set():
            batch = ranges[i % 24 : i % 24 + 8]
            try:
                router.query_many(batch, trace_id=new_trace_id())
            except Exception:
                if stop.is_set():
                    return  # teardown raced the batch; not an error
                raise
            i += 8
            stop.wait(0.05)

    load_thread = threading.Thread(
        target=load, name="repro-top-load", daemon=True
    )
    load_thread.start()

    def teardown() -> None:
        stop.set()
        load_thread.join(timeout=5.0)
        router.close()
        for server in servers:
            server.stop()

    return [(s.host, s.port) for s in servers], teardown


def _top_main(argv: "list[str]") -> int:
    """``rsse-experiments top``: live per-shard cluster monitor."""
    import json
    import time

    from repro.cluster.health import rollup_alerts
    from repro.obs import ClusterMonitor, FleetSlos, render_top

    parser = argparse.ArgumentParser(
        prog="rsse-experiments top",
        description="Poll shard stats and render a refreshing per-shard "
        "table (QPS, p50/p99 latency, inflight depth, cache hit rate, "
        "kernel backend) with SLO states underneath.  With no --addr "
        "it self-hosts a seeded demo cluster and drives a background "
        "query load so the numbers move; with --addr it polls running "
        "servers.",
    )
    parser.add_argument(
        "--addr",
        action="append",
        metavar="HOST:PORT",
        help="poll this shard server (repeatable; skips the demo cluster)",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="demo-cluster width when no --addr is given",
    )
    parser.add_argument("--records", type=int, default=400)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--scheme", default="logarithmic-brc")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print one sample and exit (nonzero if any shard is down)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw sample document instead of the table",
    )
    parser.add_argument(
        "--slo", action="append", metavar="OBJECTIVE",
        help="SLO objective, e.g. 'p99(op.multi-search) < 100ms over 5m' "
        "(repeatable; default: a standard latency/error/reachability trio)",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    objectives = args.slo if args.slo else list(_DEFAULT_SLOS)

    teardown = None
    if args.addr:
        addrs = list(args.addr)
    else:
        addrs, teardown = _demo_cluster(args)

    try:
        fleet = FleetSlos(objectives)
        with ClusterMonitor(addrs, collect_metrics=True) as monitor:
            while True:
                sample = monitor.sample()
                fleet.observe_sample(sample)
                alerts = rollup_alerts(fleet.evaluate())
                # The raw registry snapshots fed the SLO evaluation;
                # they are too bulky for the rendered/JSON surface.
                for row in sample["shards"]:
                    row.pop("metrics", None)
                if args.as_json:
                    sample["alerts"] = alerts
                    print(json.dumps(sample, sort_keys=True), flush=True)
                else:
                    if not args.once:
                        # ANSI clear + home — the "refreshing" part.
                        print("\x1b[2J\x1b[H", end="")
                    print(render_top(sample, alerts=alerts), flush=True)
                if args.once:
                    down = sample["shard_count"] - sample["reachable"]
                    return 1 if down else 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        if teardown is not None:
            teardown()


def _alerts_main(argv: "list[str]") -> int:
    """``rsse-experiments alerts``: headless SLO evaluation.

    Samples the fleet ``--samples`` times, evaluates the objectives,
    and prints the rolled-up alert table (or ``--json`` document).
    With ``--once`` the exit code is the contract: ``1`` iff any
    objective is in the ``page`` state — the CI/cron hook.
    """
    import json
    import time

    from repro.cluster.health import render_alerts, rollup_alerts
    from repro.obs import ClusterMonitor, FleetSlos

    parser = argparse.ArgumentParser(
        prog="rsse-experiments alerts",
        description="Evaluate declarative SLOs (burn-rate ok/warn/page "
        "states) against a fleet's metrics.  With no --addr it "
        "self-hosts a loaded demo cluster; --once exits 1 iff any "
        "objective pages.",
    )
    parser.add_argument(
        "--addr", action="append", metavar="HOST:PORT",
        help="poll this shard server (repeatable; skips the demo cluster)",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--records", type=int, default=400)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--scheme", default="logarithmic-brc")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--objective", action="append", metavar="OBJECTIVE",
        help="e.g. 'p99(op.multi-search) < 100ms over 5m', "
        "'error_rate < 1% over 5m', 'unreachable == 0' (repeatable; "
        "default: a standard trio)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between fleet samples",
    )
    parser.add_argument(
        "--samples", type=int, default=3,
        help="samples to take before evaluating (--once mode)",
    )
    parser.add_argument("--once", action="store_true",
                        help="evaluate once and exit (1 iff paging)")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)
    if args.samples < 1:
        parser.error("--samples must be >= 1")
    objectives = (
        args.objective if args.objective else list(_DEFAULT_SLOS)
    )

    teardown = None
    if args.addr:
        addrs = list(args.addr)
    else:
        addrs, teardown = _demo_cluster(args)

    try:
        fleet = FleetSlos(objectives)
        with ClusterMonitor(addrs, collect_metrics=True) as monitor:
            if args.once:
                for i in range(args.samples):
                    if i:
                        time.sleep(args.interval)
                    fleet.observe_sample(monitor.sample())
                doc = rollup_alerts(fleet.evaluate())
                if args.as_json:
                    print(json.dumps(doc, sort_keys=True), flush=True)
                else:
                    print(render_alerts(doc), flush=True)
                return 1 if doc["worst"] == "page" else 0
            while True:
                fleet.observe_sample(monitor.sample())
                doc = rollup_alerts(fleet.evaluate())
                if args.as_json:
                    print(json.dumps(doc, sort_keys=True), flush=True)
                else:
                    print("\x1b[2J\x1b[H", end="")
                    print(render_alerts(doc), flush=True)
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        if teardown is not None:
            teardown()


def _slow_main(argv: "list[str]") -> int:
    """``rsse-experiments slow``: pull slow-query flight captures.

    With ``--addr`` it fetches whatever the running servers'
    recorders ringed (via the metrics frame's ``max_slow`` opt-in).
    Without, it self-hosts a demo cluster whose shards run 1-in-N
    sampled tracing *plus* an armed flight recorder, drives queries,
    and shows the captures — including the span trees of queries whose
    sampling coin flip came up tails (tail-based capture).
    """
    import json

    parser = argparse.ArgumentParser(
        prog="rsse-experiments slow",
        description="Show the slow-query flight recorder's captures "
        "(full span tree per slow query, kept even when trace sampling "
        "dropped the trace).",
    )
    parser.add_argument(
        "--addr", action="append", metavar="HOST:PORT",
        help="pull captures from this server (repeatable; skips the demo)",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--records", type=int, default=400)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--scheme", default="logarithmic-brc")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--queries", type=int, default=12,
        help="demo queries to run before pulling captures",
    )
    parser.add_argument(
        "--limit", type=int, default=16,
        help="max captures to pull per server",
    )
    parser.add_argument(
        "--threshold-ms", type=float, default=0.0,
        help="demo flight-recorder threshold (0 captures every query)",
    )
    parser.add_argument(
        "--sample-rate", type=int, default=1000,
        help="demo trace-sampling rate (1 in N)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    if args.addr:
        from repro.net import NetTransport

        slow = []
        for addr in args.addr:
            host, _, port = addr.rpartition(":")
            if not host or not port.isdigit():
                parser.error(f"bad --addr {addr!r}; want host:port")
            with NetTransport(host, int(port)) as transport:
                payload = transport.metrics(max_slow=args.limit)
                slow.extend(payload.get("slow", []))
    else:
        from repro.net import NetTransport
        from repro.obs import FlightRecorder, TraceSampler
        from repro.protocol import RsseServer

        def core_factory():
            return RsseServer(
                trace_sampler=TraceSampler(args.sample_rate),
                flight=FlightRecorder(threshold_s=args.threshold_ms / 1e3),
            )

        servers, router, rng = _spin_cluster(args, core_factory)
        try:
            for _ in range(max(1, args.queries)):
                lo = rng.randrange(args.domain)
                router.query_many([(lo, rng.randrange(lo, args.domain))])
            slow = []
            for server in servers:
                with NetTransport(server.host, server.port) as transport:
                    payload = transport.metrics(max_slow=args.limit)
                    slow.extend(payload.get("slow", []))
        finally:
            router.close()
            for server in servers:
                server.stop()

    slow.sort(key=lambda c: c.get("elapsed_s", 0.0), reverse=True)
    if args.as_json:
        print(json.dumps({"v": 1, "slow": slow}, sort_keys=True))
        return 0
    if not slow:
        print("no slow-query captures (recorder unarmed, or nothing slow)")
        return 0
    print(
        f"{'op':<14} {'ms':>9} {'bar ms':>9} {'why':<8} "
        f"{'sampled':<7} {'spans':>5}  trace"
    )
    for capture in slow:
        print(
            f"{capture['op']:<14} "
            f"{1e3 * capture['elapsed_s']:9.2f} "
            f"{1e3 * capture['threshold_s']:9.2f} "
            f"{capture['reason']:<8} "
            f"{str(bool(capture.get('sampled'))).lower():<7} "
            f"{len(capture.get('spans', [])):5d}  {capture['trace_id']}"
        )
    return 0


def _trace_main(argv: "list[str]") -> int:
    """``rsse-experiments trace``: capture and export query traces."""
    import json

    from repro.obs import to_chrome_trace, to_jsonl_lines

    parser = argparse.ArgumentParser(
        prog="rsse-experiments trace",
        description="Export cross-layer query traces (router scatter -> "
        "server handle -> engine waves -> kernel batches -> storage "
        "reads) as a Chrome trace (chrome://tracing, Perfetto) or "
        "JSONL.  With no --addr it self-hosts a demo cluster and "
        "traces --queries scatter-gather batches; with --addr it pulls "
        "whatever traces the running servers have buffered, via the "
        "metrics delta frame.",
    )
    parser.add_argument("--addr", action="append", metavar="HOST:PORT")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--records", type=int, default=400)
    parser.add_argument("--domain", type=int, default=1 << 16)
    parser.add_argument("--scheme", default="logarithmic-brc")
    parser.add_argument(
        "--queries", type=int, default=8,
        help="traced scatter-gather batches to run (self-hosted mode)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--limit", type=int, default=64,
        help="max traces to pull per server (--addr mode)",
    )
    parser.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write here instead of stdout",
    )
    args = parser.parse_args(argv)

    if args.addr:
        from repro.net import NetTransport

        traces = []
        for addr in args.addr:
            host, _, port = addr.rpartition(":")
            if not host or not port.isdigit():
                parser.error(f"bad --addr {addr!r}; want host:port")
            with NetTransport(host, int(port)) as transport:
                payload = transport.metrics(max_traces=args.limit)
                traces.extend(payload.get("traces", []))
    else:
        servers, router, rng = _spin_cluster(args)
        try:
            from repro.obs import new_trace_id

            for _ in range(max(1, args.queries)):
                lo = rng.randrange(args.domain)
                hi = rng.randrange(lo, args.domain)
                router.query_many([(lo, hi)], trace_id=new_trace_id())
            # Client-side scatter spans plus every shard's server-side
            # span buffer — one export, all layers.
            traces = list(router.tracer.snapshot())
            for server in servers:
                traces.extend(server.server.core.tracer.snapshot())
        finally:
            router.close()
            for server in servers:
                server.stop()

    if args.format == "chrome":
        text = json.dumps(to_chrome_trace(traces), indent=2, sort_keys=True)
    else:
        text = "\n".join(to_jsonl_lines(traces))
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote {len(traces)} traces ({args.format}) to {args.out}")
    else:
        print(text)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # The network subcommands own their argument namespaces (ports and
    # pool sizes mean nothing to the experiment runner, and vice versa).
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "connect":
        return _connect_main(argv[1:])
    if argv and argv[0] == "ingest":
        return _ingest_main(argv[1:])
    if argv and argv[0] == "cluster":
        return _cluster_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "slow":
        return _slow_main(argv[1:])
    if argv and argv[0] == "alerts":
        return _alerts_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="rsse-experiments",
        description="Regenerate the tables/figures of 'Practical Private "
        "Range Search Revisited' (SIGMOD 2016).  The network service "
        "lives under the 'serve' and 'connect' subcommands (each has "
        "its own --help).",
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + ("all",),
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="also write CSV output into this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="exec-engine thread-pool width for every scheme the "
        "experiments build (1 = fully serial; default: "
        "REPRO_EXEC_WORKERS or CPU count, capped at 8)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the exec engine's GGM expansion cache",
    )
    parser.add_argument(
        "--dispatch",
        default="auto",
        metavar="auto|SCHEME",
        help="for the 'dispatch' experiment: 'auto' (cost-based, the "
        "default) or a scheme name pinning every query to that lane",
    )
    _add_crypto_workers_arg(parser)
    args = parser.parse_args(argv)
    if args.workers is not None or args.no_cache or args.crypto_workers is not None:
        from repro.exec import configure_default_executor

        configure_default_executor(
            workers=args.workers,
            cache=False if args.no_cache else None,
            crypto_workers=args.crypto_workers,
        )
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(run_experiment(name, args.csv_dir, dispatch=args.dispatch))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
