"""Measurement utilities for the experiment harness."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer.

    Thread-safe: concurrent ``measure()`` blocks accumulate under a
    lock, so one stopwatch can total wall time across a pool of worker
    threads without losing updates to the read-modify-write race.
    """

    seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @contextmanager
    def measure(self):
        """Context manager adding the enclosed duration to the total."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.seconds += elapsed


def timed(fn, *args, **kwargs):
    """Run ``fn`` returning ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def mib(n_bytes: int) -> float:
    """Bytes → MiB."""
    return n_bytes / (1024.0 * 1024.0)


@dataclass
class SeriesPoint:
    """One (x, per-scheme-value) point of a figure series."""

    x: float
    values: "dict[str, float]" = field(default_factory=dict)


@dataclass
class Series:
    """A named figure: x-axis label, y-axis label, and its points."""

    title: str
    x_label: str
    y_label: str
    points: "list[SeriesPoint]" = field(default_factory=list)

    def add(self, x: float, values: "dict[str, float]") -> None:
        self.points.append(SeriesPoint(x, dict(values)))

    def columns(self) -> "list[str]":
        cols: list[str] = []
        for point in self.points:
            for key in point.values:
                if key not in cols:
                    cols.append(key)
        return cols

    def as_rows(self) -> "list[list]":
        cols = self.columns()
        return [
            [point.x] + [point.values.get(c) for c in cols] for point in self.points
        ]
