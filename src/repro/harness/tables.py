"""Plain-text table rendering and CSV export for experiment output."""

from __future__ import annotations

import csv
import io

from repro.harness.metrics import Series


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: "list[str]", rows: "list[list]") -> str:
    """Fixed-width ASCII table."""
    cells = [[_format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_series(series: Series) -> str:
    """Render a figure series with its axis labels."""
    headers = [series.x_label] + series.columns()
    body = render_table(headers, series.as_rows())
    return f"== {series.title} ==  (y: {series.y_label})\n{body}"


def series_to_csv(series: Series) -> str:
    """CSV text of a series (x column + one column per scheme)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([series.x_label] + series.columns())
    for row in series.as_rows():
        writer.writerow(row)
    return buf.getvalue()
