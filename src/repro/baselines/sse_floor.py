"""The pure-SSE retrieval floor ("SSE (Cash et al.)" curve of Figure 7).

Figure 7 plots, alongside every scheme, the *inevitable* cost of
retrieving the r result tuples through the underlying SSE — the lower
bound no index layout can beat.  We reproduce it with an index holding
all n postings under a single keyword and a bounded search that walks
exactly the first r counters: r label lookups + r decryptions, which is
precisely the floor's work.
"""

from __future__ import annotations

import random

from repro.crypto.prf import generate_key
from repro.sse.base import EncryptedIndex, PrfKeyDeriver
from repro.sse.encoding import decode_id, encode_id
from repro.sse.pibas import PiBas, _label, _xor_pad

_FLOOR_KEYWORD = b"sse-floor"


class SseFloor:
    """Measures bare SSE retrieval cost for any result size r ≤ n."""

    def __init__(self, n: int, *, rng: "random.Random | None" = None) -> None:
        rng = rng if rng is not None else random.SystemRandom()
        self._sse = PiBas(PrfKeyDeriver(generate_key(rng)), shuffle_rng=rng)
        self._index: EncryptedIndex = self._sse.build_index(
            {_FLOOR_KEYWORD: [encode_id(i) for i in range(n)]}
        )
        self._token = self._sse.trapdoor(_FLOOR_KEYWORD)
        self.n = n

    def retrieve(self, r: int) -> "list[int]":
        """Fetch and decrypt exactly ``r`` postings (the floor's work)."""
        if not 0 <= r <= self.n:
            raise ValueError(f"r must be in [0, {self.n}], got {r}")
        token = self._token
        out: list[int] = []
        for counter in range(r):
            ct = self._index.get(_label(token.label_key, counter))
            plain = _xor_pad(token.value_key, counter, ct)
            length = int.from_bytes(plain[:4], "big")
            out.append(decode_id(plain[4 : 4 + length]))
        return out
