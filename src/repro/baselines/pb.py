"""PB — the basic scheme of Li et al. (PVLDB 2014), the paper's closest
competitor.

Reconstructed faithfully from the paper's Section 2.1 description:

1. For every tuple ``d``, compute ``DR(d)`` — the ``log m`` dyadic
   ranges covering ``d.a`` (its root-to-leaf path), each turned into a
   keyed HMAC label so the server never sees plaintext ranges.
2. Build a binary tree over the *tuples*: the root holds all of them;
   at every node the tuples are randomly permuted and split in half,
   recursing until single-tuple leaves.
3. Each node stores a Bloom filter over the DR labels of the tuples in
   its subtree, sized for a fixed per-node false-positive ratio.
4. A query is decomposed with BRC into its minimal dyadic ranges, whose
   HMAC labels form the trapdoor; the server walks the tree from the
   root, descending wherever *any* trapdoor label hits the node's
   filter, and returns the ids of the leaves it reaches.

Costs reproduced: ``O(n log n log m)`` storage (every tuple's ``log m``
labels appear in the filters of its ``log n`` ancestors), ``O(log R)``
query size, search ``Ω(log n log R + r)`` with ``O(r)`` expected false
positives from the filters.  And the *security* gap the paper stresses
(weak non-adaptive definitions, no update support) is documented, not
fixed — PB exists here as the measured baseline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.baselines.bloom import BloomFilter
from repro.core.scheme import QueryOutcome, RangeScheme, Record
from repro.exec.plan import ExecStats
from repro.covers.brc import best_range_cover
from repro.covers.dyadic import DomainTree
from repro.crypto.prf import generate_key, prf
from repro.errors import IndexStateError

#: Per-node Bloom filter false-positive ratio (Li et al. fix this).
DEFAULT_FP_RATE = 0.01


@dataclass
class PbToken:
    """PB trapdoor: the HMAC labels of the query's minimal dyadic ranges."""

    labels: "list[bytes]"

    def serialized_size(self) -> int:
        return sum(len(lbl) for lbl in self.labels)

    def __len__(self) -> int:
        return len(self.labels)


class _PbNode:
    """One node of the permuted tuple tree with its Bloom filter."""

    __slots__ = ("bloom", "left", "right", "leaf_id")

    def __init__(self, bloom: BloomFilter) -> None:
        self.bloom = bloom
        self.left: "_PbNode | None" = None
        self.right: "_PbNode | None" = None
        self.leaf_id: "int | None" = None


class PbScheme(RangeScheme):
    """Li et al.'s Bloom-filter tree, conforming to the RangeScheme API."""

    name = "pb"
    may_false_positive = True

    def __init__(
        self, domain_size: int, *, fp_rate: float = DEFAULT_FP_RATE, **kwargs
    ) -> None:
        super().__init__(domain_size, **kwargs)
        self.tree = DomainTree(domain_size)
        self.fp_rate = fp_rate
        self._label_key = generate_key(self._rng)
        self._root: "_PbNode | None" = None
        self._bloom_bytes = 0
        self._node_count = 0

    def index_names(self) -> "tuple[str, ...]":
        """PB's index is a Bloom-filter tree, not a label→value EDB —
        the scheme cannot be outsourced over the EDB wire protocol."""
        return ()

    # -- BuildIndex -----------------------------------------------------------

    def _dr_label(self, node) -> bytes:
        """Keyed label of one dyadic range (16 bytes on the wire)."""
        return prf(self._label_key, b"pb.dr|" + node.label())[:16]

    def _build(self, records: "list[Record]") -> None:
        # Precompute each tuple's DR hash pairs once; tree construction
        # re-inserts them at every ancestor level.
        prepared: list[tuple[int, list[tuple[int, int]]]] = []
        for rec in records:
            pairs = [
                BloomFilter.hash_pair(self._dr_label(node))
                for node in self.tree.path_nodes(rec.value)
            ]
            prepared.append((rec.id, pairs))
        shuffle_rng = self._rng
        shuffle_rng.shuffle(prepared)
        self._bloom_bytes = 0
        self._node_count = 0
        self._root = self._build_node(prepared, shuffle_rng) if prepared else None

    def _build_node(
        self,
        items: "list[tuple[int, list[tuple[int, int]]]]",
        rng: "random.Random",
    ) -> _PbNode:
        n_labels = sum(len(pairs) for _, pairs in items)
        bloom = BloomFilter(n_labels, self.fp_rate)
        for _, pairs in items:
            for h1, h2 in pairs:
                bloom.add_hashed(h1, h2)
        node = _PbNode(bloom)
        self._bloom_bytes += bloom.size_bytes()
        self._node_count += 1
        if len(items) == 1:
            node.leaf_id = items[0][0]
            return node
        rng.shuffle(items)
        mid = len(items) // 2
        node.left = self._build_node(items[:mid], rng)
        node.right = self._build_node(items[mid:], rng)
        return node

    # -- Trpdr / Search ---------------------------------------------------------

    def trapdoor(self, lo: int, hi: int) -> PbToken:
        lo, hi = self.check_range(lo, hi)
        labels = [self._dr_label(node) for node in best_range_cover(lo, hi)]
        self._rng.shuffle(labels)
        return PbToken(labels)

    def search(self, token: PbToken) -> "list[int]":
        self._require_built()
        if self._root is None:
            return []
        hashed = [BloomFilter.hash_pair(lbl) for lbl in token.labels]

        def probe(node: _PbNode) -> bool:
            return any(node.bloom.contains_hashed(h1, h2) for h1, h2 in hashed)

        # Level-order descent through the exec engine: each frontier's
        # filter probes fan out over the worker pool (pure in-memory
        # bit tests — always thread-safe), results reassembled in
        # frontier order so the walk stays deterministic.
        stats = ExecStats(workers=self.executor.workers)
        results: list[int] = []
        frontier = [self._root]
        while frontier:
            hits = self.executor.map(probe, frontier)
            stats.probe_rounds += 1
            stats.probes_issued += len(frontier)
            if len(frontier) > 1:
                stats.probes_coalesced += len(frontier)
            next_frontier: "list[_PbNode]" = []
            for node, hit in zip(frontier, hits):
                if not hit:
                    continue
                if node.leaf_id is not None:
                    results.append(node.leaf_id)
                    continue
                if node.left is not None:
                    next_frontier.append(node.left)
                if node.right is not None:
                    next_frontier.append(node.right)
            frontier = next_frontier
        self._note_exec(stats)
        return results

    def index_size_bytes(self) -> int:
        self._require_built()
        # Bloom bit arrays plus a small fixed per-node structural overhead
        # (two child pointers / leaf id), mirroring a serialized layout.
        return self._bloom_bytes + 16 * self._node_count
