"""Deterministic-encryption bucketization baseline (Hacıgümüş et al.).

The first class of prior work the paper surveys [18, 19, 20]: partition
the attribute domain into buckets, tag each tuple with a deterministic
token of its bucket, and reduce a range query to the set of bucket
tokens it touches.  Efficient and simple — and it "discloses the
distribution of the data, since the bucketization essentially reveals a
histogram of the data on the query attribute" (Section 2.1), which the
attacks module quantifies.

False positives are inherent: edge buckets return every tuple they
hold, not just the in-range ones; the client refines after decryption.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.prf import check_key, prf
from repro.errors import DomainError


class DetBucketIndex:
    """Bucketized deterministic-tag index over ``[0, domain_size)``.

    Parameters
    ----------
    key:
        PRF key deriving the bucket tags.
    domain_size:
        Attribute domain size m.
    buckets:
        Number of equi-width buckets (the scheme's privacy/precision
        dial: fewer buckets = more false positives, coarser histogram).
    """

    def __init__(self, key: bytes, domain_size: int, *, buckets: int = 64) -> None:
        check_key(key)
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        if not 1 <= buckets <= domain_size:
            raise DomainError(
                f"bucket count must be in [1, {domain_size}], got {buckets}"
            )
        self._key = key
        self.domain_size = domain_size
        self.buckets = buckets
        self._width = (domain_size + buckets - 1) // buckets
        #: Server-side state: tag -> tuple ids (the histogram is visible!).
        self._store: dict[bytes, list[int]] = {}

    def _bucket_of(self, value: int) -> int:
        if not 0 <= value < self.domain_size:
            raise DomainError(
                f"value {value} outside domain [0, {self.domain_size - 1}]"
            )
        return value // self._width

    def _tag(self, bucket: int) -> bytes:
        return prf(self._key, b"det.bucket|%d" % bucket)[:16]

    def build_index(self, records: "Iterable[tuple[int, int]]") -> None:
        self._store = {}
        for doc_id, value in records:
            tag = self._tag(self._bucket_of(value))
            self._store.setdefault(tag, []).append(doc_id)

    def trapdoor(self, lo: int, hi: int) -> "list[bytes]":
        """The bucket tags a range touches (what the owner sends)."""
        if lo > hi:
            return []
        first = self._bucket_of(lo)
        last = self._bucket_of(hi)
        return [self._tag(b) for b in range(first, last + 1)]

    def search(self, tags: "list[bytes]") -> "list[int]":
        """Server-side: union of matching buckets (with edge FPs)."""
        out: list[int] = []
        for tag in tags:
            out.extend(self._store.get(tag, ()))
        return out

    def query(self, lo: int, hi: int) -> "list[int]":
        """Full round trip (client refinement omitted: ids only)."""
        return self.search(self.trapdoor(lo, hi))

    def histogram_view(self) -> "list[int]":
        """What the server sees at rest: per-tag occupancy counts.

        Tags are pseudorandom, so the server cannot *label* the buckets
        — but the multiset of counts is the data's histogram shape, and
        query tags progressively link tags to domain positions.
        """
        return sorted(len(ids) for ids in self._store.values())

    def index_size_bytes(self) -> int:
        """16-byte tag per bucket + 8 bytes per posted id."""
        return sum(16 + 8 * len(ids) for ids in self._store.values())
