"""Bloom filter (Bloom, CACM 1970) — substrate for the PB baseline.

Standard bit-array filter with double hashing (Kirsch–Mitzenmacher):
the i-th hash is ``h1 + i·h2 mod m``, with ``h1, h2`` drawn from a
SHA-256 digest of the element.  Parameters are sized from the expected
element count and a target false-positive rate, the way Li et al. fix
the per-node FP ratio in their tree.
"""

from __future__ import annotations

import hashlib
import math


def optimal_bits(n_elements: int, fp_rate: float) -> int:
    """Bit-array size minimizing space for ``n_elements`` at ``fp_rate``."""
    if n_elements <= 0:
        return 8
    if not 0.0 < fp_rate < 1.0:
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    bits = math.ceil(-n_elements * math.log(fp_rate) / (math.log(2) ** 2))
    return max(8, bits)


def optimal_hashes(bits: int, n_elements: int) -> int:
    """Optimal number of hash functions for the given sizing."""
    if n_elements <= 0:
        return 1
    return max(1, round(bits / n_elements * math.log(2)))


def _hash_pair(element: bytes) -> tuple[int, int]:
    digest = hashlib.sha256(element).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full period
    return h1, h2


class BloomFilter:
    """Fixed-size Bloom filter over byte-string elements.

    Parameters
    ----------
    expected_elements:
        Sizing hint; inserting more than this only degrades (never
        breaks) the false-positive rate.
    fp_rate:
        Target false-positive probability at the design load.
    """

    def __init__(self, expected_elements: int, fp_rate: float = 0.01) -> None:
        self.bits = optimal_bits(expected_elements, fp_rate)
        self.hashes = optimal_hashes(self.bits, expected_elements)
        self.fp_rate = fp_rate
        self._array = bytearray((self.bits + 7) // 8)
        self.inserted = 0

    def _positions(self, element: bytes):
        h1, h2 = _hash_pair(element)
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.bits

    def add(self, element: bytes) -> None:
        """Insert an element."""
        for pos in self._positions(element):
            self._array[pos >> 3] |= 1 << (pos & 7)
        self.inserted += 1

    def add_hashed(self, h1: int, h2: int) -> None:
        """Insert from a precomputed hash pair (hot-path for PB builds)."""
        for i in range(self.hashes):
            pos = (h1 + i * h2) % self.bits
            self._array[pos >> 3] |= 1 << (pos & 7)
        self.inserted += 1

    def __contains__(self, element: bytes) -> bool:
        return all(
            self._array[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(element)
        )

    def contains_hashed(self, h1: int, h2: int) -> bool:
        """Membership test from a precomputed hash pair."""
        for i in range(self.hashes):
            pos = (h1 + i * h2) % self.bits
            if not self._array[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def size_bytes(self) -> int:
        """Storage footprint of the bit array."""
        return len(self._array)

    @staticmethod
    def hash_pair(element: bytes) -> tuple[int, int]:
        """Expose the double-hashing pair for callers that batch inserts."""
        return _hash_pair(element)
