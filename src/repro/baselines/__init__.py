"""Baselines: the schemes the paper measures or argues against.

- PB (Li et al.) — the closest competitor, measured in Figures 5–8;
- OPE and DET bucketization — the two prior-work classes of Section 2.1,
  with their leakage made exploitable in
  :mod:`repro.leakage.baseline_attacks`;
- the plaintext oracle and the bare-SSE retrieval floor.
"""

from repro.baselines.bloom import BloomFilter, optimal_bits, optimal_hashes
from repro.baselines.det_bucket import DetBucketIndex
from repro.baselines.ope import BoldyrevaOpe, OpeRangeIndex
from repro.baselines.pb import PbScheme, PbToken
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.baselines.sse_floor import SseFloor

__all__ = [
    "BloomFilter",
    "BoldyrevaOpe",
    "DetBucketIndex",
    "OpeRangeIndex",
    "PbScheme",
    "PbToken",
    "PlaintextRangeIndex",
    "SseFloor",
    "optimal_bits",
    "optimal_hashes",
]
