"""Order-Preserving Encryption baseline (Boldyreva et al., EUROCRYPT'09).

The paper's related work (Section 2.1) identifies the OPE line of work
[2, 3, 23, 27, 30] as the second major class of "practical" private
range search: encrypt with a cipher whose ciphertexts preserve plaintext
order, then index/query ciphertexts exactly like plaintexts.  Its fatal
flaws — OPE is deterministic (distribution leakage) *and* leaks total
order — are the motivation for the paper's RSSE framework, so this
repository ships a faithful OPE baseline to measure against.

Construction: BCLO-style lazy sampling.  An OPE key defines a
pseudorandom *strictly monotone injection* from the plaintext domain
``[0, m)`` into a sparser ciphertext space ``[0, N)``; the image of a
point is found by recursive binary descent over the plaintext interval,
drawing how many spare ciphertext slots the left half receives (each
half always keeping at least one slot per plaintext), with all randomness derived deterministically from the
key via the PRF.  Encryption is stateless and needs ``O(log m)`` draws
per value.  (We do not claim BCLO's exact uniformity over monotone
injections — the baseline needs OPE's *leakage profile*, which any such
injection exhibits.)

``OpeRangeIndex`` then shows why OPE is attractive *operationally*: the
server needs nothing but a sorted array — and why it is unacceptable:
:mod:`repro.leakage.attacks` recovers plaintext order and approximate
values from the ciphertexts alone.
"""

from __future__ import annotations

import bisect
from typing import Iterable

import numpy as np

from repro.crypto.prf import check_key, prf
from repro.errors import DomainError

#: Ciphertext-space expansion factor (N = expansion × m).
DEFAULT_EXPANSION = 8


class BoldyrevaOpe:
    """Stateless order-preserving encryption over ``[0, domain_size)``.

    Deterministic: equal keys and plaintexts give equal ciphertexts
    (that is OPE's defining weakness, reproduced faithfully).
    """

    def __init__(
        self, key: bytes, domain_size: int, *, expansion: int = DEFAULT_EXPANSION
    ) -> None:
        check_key(key)
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        if expansion < 2:
            raise DomainError("ciphertext space must be larger than the domain")
        self._key = key
        self.domain_size = domain_size
        self.cipher_space = domain_size * expansion

    def _split_extras(self, node: bytes, extras: int, p_left: float) -> int:
        """Key-derived deterministic draw: how many of the interval's
        spare ciphertext slots go to the left plaintext half."""
        if extras <= 0:
            return 0
        seed = int.from_bytes(prf(self._key, b"ope.node|" + node)[:8], "big")
        rng = np.random.Generator(np.random.PCG64(seed))
        return int(rng.binomial(extras, p_left))

    def encrypt(self, value: int) -> int:
        """Map a plaintext to its ciphertext (order-preserving)."""
        if not 0 <= value < self.domain_size:
            raise DomainError(
                f"value {value} outside domain [0, {self.domain_size - 1}]"
            )
        # Invariant: plaintext interval [d_lo, d_hi] maps into ciphertext
        # interval [c_lo, c_hi]; recurse on the half containing `value`.
        d_lo, d_hi = 0, self.domain_size - 1
        c_lo, c_hi = 0, self.cipher_space - 1
        while d_hi > d_lo:
            d_mid = (d_lo + d_hi) // 2
            domain_left = d_mid - d_lo + 1
            domain_total = d_hi - d_lo + 1
            cipher_total = c_hi - c_lo + 1
            node = b"%d:%d:%d:%d" % (d_lo, d_hi, c_lo, c_hi)
            # Every plaintext keeps at least one slot; the spare slots are
            # split pseudorandomly in proportion to the halves' sizes.
            left_extra = self._split_extras(
                node, cipher_total - domain_total, domain_left / domain_total
            )
            left_count = domain_left + left_extra
            if value <= d_mid:
                d_hi = d_mid
                c_hi = c_lo + left_count - 1
            else:
                d_lo = d_mid + 1
                c_lo = c_lo + left_count
        # Leaf: one plaintext, a slice of ciphertexts; pick its floor so
        # that encryption is deterministic and order strictly preserved.
        return c_lo

    def encrypt_many(self, values: "Iterable[int]") -> "list[int]":
        """Vectorized convenience wrapper."""
        return [self.encrypt(v) for v in values]


class OpeRangeIndex:
    """The server-side index OPE enables: a plain sorted array.

    Operationally this is the baseline to beat — O(log n + r) search,
    zero false positives, no protocol changes.  Security-wise it is the
    cautionary tale: ``ciphertexts()`` exposes exactly what an
    honest-but-curious server stores, and the attacks module shows how
    much plaintext structure that betrays.
    """

    def __init__(self, key: bytes, domain_size: int, **ope_kwargs) -> None:
        self.ope = BoldyrevaOpe(key, domain_size, **ope_kwargs)
        self._cts: "list[int]" = []
        self._ids: "list[int]" = []

    def build_index(self, records: "Iterable[tuple[int, int]]") -> None:
        pairs = sorted(
            (self.ope.encrypt(value), doc_id) for doc_id, value in records
        )
        self._cts = [ct for ct, _ in pairs]
        self._ids = [doc_id for _, doc_id in pairs]

    def query(self, lo: int, hi: int) -> "list[int]":
        """Range search directly on ciphertexts (what the server runs)."""
        if lo > hi:
            return []
        c_lo = self.ope.encrypt(lo)
        c_hi = self.ope.encrypt(hi)
        start = bisect.bisect_left(self._cts, c_lo)
        stop = bisect.bisect_right(self._cts, c_hi)
        return self._ids[start:stop]

    def ciphertexts(self) -> "list[int]":
        """The server's full view — input to the leakage attacks."""
        return list(self._cts)

    def index_size_bytes(self) -> int:
        """8-byte ciphertext + 8-byte id per tuple."""
        return 16 * len(self._cts)
