"""Plaintext sorted-array range index.

Two roles in this repository:

1. **Correctness oracle** — every RSSE test compares scheme answers to
   this index.
2. **Non-private baseline** — the "performance cost of privacy" is the
   gap between a scheme and this binary-search lookup.
"""

from __future__ import annotations

import bisect
from typing import Iterable


class PlaintextRangeIndex:
    """Sorted ``(value, id)`` array answering ranges by binary search."""

    def __init__(self, records: "Iterable[tuple[int, int]]" = ()) -> None:
        pairs = [(value, doc_id) for doc_id, value in records]
        pairs.sort()
        self._values = [value for value, _ in pairs]
        self._ids = [doc_id for _, doc_id in pairs]

    def __len__(self) -> int:
        return len(self._ids)

    def query(self, lo: int, hi: int) -> "list[int]":
        """Ids of records with value in ``[lo, hi]``, ascending by value."""
        if lo > hi:
            return []
        start = bisect.bisect_left(self._values, lo)
        stop = bisect.bisect_right(self._values, hi)
        return self._ids[start:stop]

    def count(self, lo: int, hi: int) -> int:
        """Result cardinality r without materializing ids."""
        if lo > hi:
            return 0
        return bisect.bisect_right(self._values, hi) - bisect.bisect_left(
            self._values, lo
        )

    def distinct_values(self) -> int:
        """Number of distinct attribute values in the dataset."""
        return len(set(self._values))
