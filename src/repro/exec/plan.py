"""Query planning: explicit stages and cost estimates for one search.

A :class:`QueryPlan` makes the shape of a query's server-side work
visible *before* any storage is touched: how many delegation tokens
must expand into how many GGM leaves, how many keyword walkers will
probe the EDB, and roughly how many storage round-trips the coalesced
walk will need.  The executor consumes plans; the harness and
benchmarks read their estimates.

Two entry points build plans:

- :func:`plan_sse` / :func:`plan_dprf` wrap *actual token objects* (the
  path every scheme's ``search`` takes), so the executor can run the
  plan directly;
- :func:`plan_range` is the standalone planner: given a range, a cover
  strategy (BRC/URC/TDAG-SRC via :mod:`repro.covers`) and the scheme
  capability (delegated DPRF expansion or pre-replicated SSE keywords),
  it estimates the same stages without needing keys — what a cost-based
  dispatcher or capacity model consults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.covers.brc import best_range_cover
from repro.covers.tdag import Tdag
from repro.covers.urc import uniform_range_cover
from repro.errors import InvalidRangeError

#: Plan/search kinds understood by the executor.
KIND_SSE = "sse"
KIND_DPRF = "dprf"

#: Stage kinds.
STAGE_EXPAND = "expand"
STAGE_PROBE = "probe"


@dataclass
class ExecStats:
    """What one engine run actually did (the plan's realized costs).

    ``probes_coalesced`` counts labels that shared a ``get_many`` round
    with at least one other walker — the work the engine saved from
    becoming its own storage round-trip.  ``cache_hits``/``misses``
    refer to the GGM expansion cache; ``tokens_expanded`` counts
    delegation tokens expanded *this run* (cache hits skip expansion).
    """

    tokens_expanded: int = 0
    leaves_derived: int = 0
    probes_issued: int = 0
    probe_rounds: int = 0
    probes_coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1

    def merge(self, other: "ExecStats") -> None:
        """Accumulate another run's counters (multi-stage protocols)."""
        self.tokens_expanded += other.tokens_expanded
        self.leaves_derived += other.leaves_derived
        self.probes_issued += other.probes_issued
        self.probe_rounds += other.probe_rounds
        self.probes_coalesced += other.probes_coalesced
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.workers = max(self.workers, other.workers)


@dataclass(frozen=True)
class PlanStage:
    """One stage of server-side work with its estimated cost.

    ``est_cost`` is PRG applications for ``expand`` stages and storage
    round-trips for ``probe`` stages — the two currencies that dominate
    DPRF-delegated and pre-replicated searches respectively.
    """

    kind: str
    units: int
    est_cost: int
    note: str = ""


@dataclass
class QueryPlan:
    """Explicit execution plan for one search.

    ``tokens`` holds the live token objects when the plan was built
    from a trapdoor (:func:`plan_sse`/:func:`plan_dprf`); a
    :func:`plan_range` estimate carries none and cannot be executed.
    """

    kind: str
    tokens: tuple = ()
    stages: "tuple[PlanStage, ...]" = ()
    scheme: str = ""
    cover: str = ""
    est_leaves: int = 0
    est_probe_rounds: int = 0
    probe_batch: int = 1
    meta: dict = field(default_factory=dict)

    @property
    def executable(self) -> bool:
        """Whether the plan carries tokens the executor can run."""
        return bool(self.tokens)

    def describe(self) -> str:
        """One-line human summary (harness/bench observability)."""
        stages = " -> ".join(
            f"{s.kind}[{s.units}u, ~{s.est_cost}]" for s in self.stages
        )
        return (
            f"{self.kind} plan ({self.scheme or 'anonymous'}): {stages}; "
            f"~{self.est_leaves} walkers, ~{self.est_probe_rounds} storage rounds"
        )


def _probe_stage(walkers: int, probe_batch: int) -> "tuple[PlanStage, int]":
    """Probe-stage estimate for ``walkers`` concurrent counter walks.

    The coalesced walk batches every active walker's next labels into
    one ``get_many`` per round, so the round count is driven by the
    *longest* posting list, not the walker count.  Result sizes are
    unknowable pre-search (that is the whole point of SSE), so the
    estimate assumes each walker retires within its first batch —
    a lower bound that is exact for miss-heavy DPRF leaf walks.
    """
    if walkers == 0:
        return PlanStage(STAGE_PROBE, 0, 0, "empty cover"), 0
    rounds = 1 if probe_batch > 1 else 2
    return (
        PlanStage(
            STAGE_PROBE,
            walkers,
            rounds,
            "coalesced get_many rounds (lower bound)",
        ),
        rounds,
    )


def plan_sse(
    tokens: Sequence,
    *,
    probe_batch: int = 1,
    scheme: str = "",
    cover: str = "",
) -> QueryPlan:
    """Plan a pre-replicated (per-keyword token) search."""
    tokens = tuple(tokens)
    probe, rounds = _probe_stage(len(tokens), probe_batch)
    return QueryPlan(
        kind=KIND_SSE,
        tokens=tokens,
        stages=(probe,),
        scheme=scheme,
        cover=cover,
        est_leaves=len(tokens),
        est_probe_rounds=rounds,
        probe_batch=probe_batch,
    )


def plan_dprf(
    tokens: Sequence,
    *,
    probe_batch: int = 1,
    scheme: str = "",
    cover: str = "",
) -> QueryPlan:
    """Plan a DPRF-delegated search: expansion stage, then probe stage.

    Expansion cost is exact: a GGM subtree of ``2^level`` leaves takes
    ``2^level - 1`` PRG applications (every internal node once).
    """
    tokens = tuple(tokens)
    leaves = sum(t.leaf_count for t in tokens)
    prg_calls = sum(max(0, t.leaf_count - 1) for t in tokens)
    expand = PlanStage(
        STAGE_EXPAND,
        len(tokens),
        prg_calls,
        "GGM subtree expansions (cache may skip)",
    )
    probe, rounds = _probe_stage(leaves, probe_batch)
    return QueryPlan(
        kind=KIND_DPRF,
        tokens=tokens,
        stages=(expand, probe),
        scheme=scheme,
        cover=cover,
        est_leaves=leaves,
        est_probe_rounds=rounds,
        probe_batch=probe_batch,
    )


def plan_range(
    lo: int,
    hi: int,
    *,
    cover: str,
    domain_size: int,
    delegated: bool = False,
    probe_batch: int = 1,
    scheme: str = "",
) -> QueryPlan:
    """Key-free cost estimate for a range under a cover strategy.

    ``cover`` is ``"brc"``, ``"urc"``, ``"tdag-src"`` or ``"single"``
    (one pre-assigned keyword covering the range exactly — Quadratic);
    ``delegated`` says whether the scheme ships GGM seeds that the
    server expands (the Constant family) or one pre-replicated keyword
    token per cover node (the Logarithmic family).  The returned plan
    carries no tokens — it is an estimate, not an executable.

    ``meta`` records the *span* actually touched by the cover
    (``span_lo``/``span_hi``/``span``): for BRC/URC/single the query
    range itself, for the TDAG SRC node its whole subtree clamped to
    the domain — the quantity a false-positive estimator multiplies by
    data density.
    """
    span_lo, span_hi = lo, hi
    if cover == "brc":
        nodes: list = best_range_cover(lo, hi)
    elif cover == "urc":
        nodes = uniform_range_cover(lo, hi)
    elif cover == "tdag-src":
        node = Tdag(domain_size).src_cover(lo, hi)
        nodes = [node]
        span_lo, span_hi = node.lo, min(node.hi, domain_size - 1)
    elif cover == "single":
        if delegated:
            raise InvalidRangeError(
                "'single' covers one pre-assigned keyword; nothing to delegate"
            )
        nodes = [None]
    else:
        raise InvalidRangeError(f"unknown cover strategy {cover!r}")
    meta = {
        "lo": lo,
        "hi": hi,
        "cover_nodes": len(nodes),
        "span_lo": span_lo,
        "span_hi": span_hi,
        "span": span_hi - span_lo + 1,
    }

    if delegated:
        leaves = sum(1 << n.level for n in nodes)
        prg_calls = sum(max(0, (1 << n.level) - 1) for n in nodes)
        expand = PlanStage(STAGE_EXPAND, len(nodes), prg_calls)
        probe, rounds = _probe_stage(leaves, probe_batch)
        stages: "tuple[PlanStage, ...]" = (expand, probe)
        kind = KIND_DPRF
    else:
        leaves = len(nodes)
        probe, rounds = _probe_stage(leaves, probe_batch)
        stages = (probe,)
        kind = KIND_SSE
    return QueryPlan(
        kind=kind,
        stages=stages,
        scheme=scheme,
        cover=cover,
        est_leaves=leaves,
        est_probe_rounds=rounds,
        probe_batch=probe_batch,
        meta=meta,
    )
