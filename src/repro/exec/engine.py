"""The parallel query executor: shared by every scheme and the server.

The executor turns a :class:`~repro.exec.plan.QueryPlan` into results
with three mechanics the per-scheme search loops never had:

**Coalesced storage probes.**  The Π_bas counter walk is deterministic
in the counter, so *every* active keyword walker's next labels can ride
one ``get_many`` round.  The old loops paid one storage round-trip lane
per cover token — per GGM *leaf* for the Constant schemes, i.e. ``O(R)``
SQLite queries per range — where the coalesced walk pays one round-trip
per probe *round* (``1 + log(longest posting list)``-ish), regardless of
walker count.  This is what collapses the PR-2 constant-brc/SQLite
baseline.

**A worker pool with deterministic results.**  CPU-side work — GGM
subtree expansion, label derivation, black-box per-token searches on
thread-safe indexes — fans out over ``workers`` threads; results are
always reassembled in token order, so engine answers are byte-identical
to the serial path.  Storage ``get_many`` calls are issued from the
calling thread only: backends advertise ``thread_safe_reads`` and
SQLite connections are single-threaded, so the engine never reaches a
backend from a pool thread.

**A GGM expansion cache.**  Delegation-token expansions memoize through
a shared :class:`~repro.exec.cache.ExpansionCache` (see its module
docstring for the safety argument), keyed at ``(seed, level)``
descriptor granularity so cached subtrees never re-ship to kernel
workers.

**Batched crypto through the kernel.**  All GGM subtree expansion and
Π_bas label derivation route through a
:class:`~repro.crypto.kernel.CryptoKernel` — one batch call per
expansion wave / probe round, never a per-leaf ``hmac.digest`` loop in
the engine itself.  The default :class:`~repro.crypto.kernel.SerialKernel`
reproduces the old inline loops byte-for-byte; a
:class:`~repro.crypto.kernel.PooledKernel` (``REPRO_CRYPTO_WORKERS``)
offloads batches above its crossover to a process-pool lane, which is
what finally moves the GIL-bound crypto ceiling with worker count.

Configuration: ``QueryExecutor(workers=…, cache=…, kernel=…)`` per
instance; the process-wide default engine reads
``REPRO_EXEC_WORKERS``, ``REPRO_EXEC_CACHE`` (``0`` disables caching)
and ``REPRO_CRYPTO_WORKERS`` and is shared by every scheme/server
constructed without an explicit ``executor=``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.crypto.kernel import CryptoKernel, default_kernel
from repro.errors import IndexStateError
from repro.exec.cache import ExpansionCache
from repro.obs.tracing import span
from repro.exec.plan import (
    KIND_DPRF,
    KIND_SSE,
    ExecStats,
    QueryPlan,
    plan_dprf,
    plan_sse,
)
from repro.sse.base import KeywordToken
from repro.sse.pibas import (
    _WALK_CHUNK_MAX,
    PiBas,
    decode_posting_raw,
)

#: Environment knobs for the default engine.
ENV_WORKERS = "REPRO_EXEC_WORKERS"
ENV_CACHE = "REPRO_EXEC_CACHE"


def _default_workers() -> int:
    env = os.environ.get(ENV_WORKERS)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{ENV_WORKERS} must be an integer, got {env!r}"
            ) from None
    return min(8, os.cpu_count() or 1)


@dataclass
class ExecResult:
    """Engine output: per-token payload groups plus realized stats.

    ``groups[i]`` holds the payloads of ``plan.tokens[i]`` in counter
    order — exactly what the retired per-token loop produced, which is
    how determinism is preserved and per-subtree partitions (the L2
    leakage objects) stay observable.
    """

    groups: "list[list[bytes]]"
    stats: ExecStats
    plan: "QueryPlan | None" = field(default=None, repr=False)

    @property
    def payloads(self) -> "list[bytes]":
        """All payloads flattened in token order."""
        return [p for group in self.groups for p in group]


class QueryExecutor:
    """Plan executor: thread pool + coalesced probes + expansion cache.

    Parameters
    ----------
    workers:
        Thread-pool width.  ``1`` (or ``REPRO_EXEC_WORKERS=1``) runs
        everything inline on the calling thread — the fully serial
        lane CI keeps covered.
    cache:
        An :class:`ExpansionCache`, ``None`` for a private default-sized
        one, or ``False`` to disable expansion caching entirely.
    kernel:
        The :class:`~repro.crypto.kernel.CryptoKernel` every batched
        crypto call (GGM expansion, label derivation) goes through.
        The process-wide default kernel when omitted.  The executor
        never closes it — kernels are shared across executors exactly
        like the default-engine singleton.
    """

    def __init__(
        self,
        *,
        workers: "int | None" = None,
        cache: "ExpansionCache | bool | None" = None,
        kernel: "CryptoKernel | None" = None,
    ) -> None:
        self.workers = max(1, int(workers) if workers is not None else _default_workers())
        self.kernel = kernel if kernel is not None else default_kernel()
        # NB: never truth-test a cache here — an empty ExpansionCache
        # has __len__() == 0 and would read as "disabled".
        if cache is None or cache is True:
            self.cache: "ExpansionCache | None" = ExpansionCache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self._pool: "ThreadPoolExecutor | None" = None
        self._offload: "ThreadPoolExecutor | None" = None
        self._pool_lock = threading.Lock()

    # -- worker pool -------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec"
                )
            return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        """Ordered parallel map (inline when serial or trivially small).

        The generic fan-out hook: results arrive in input order no
        matter how the pool schedules them.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def offload_pool(self) -> ThreadPoolExecutor:
        """The transport-facing pool: whole-request offload off an event
        loop.

        Deliberately distinct from the :meth:`map` pool.  A request
        handler running *on* the map pool may itself call :meth:`map`
        (GGM expansion fan-out); if both shared one pool, ``workers``
        concurrent handlers would occupy every thread and then block
        waiting for map tasks no free thread can ever run — classic
        same-pool starvation.  Two pools of width ``workers`` keep the
        deadlock impossible while still bounding threads at 2×workers.

        Width floor of 2 even when ``workers`` is 1 (single-core box):
        this pool multiplexes *independent requests*, and at width 1 a
        long write — an update batch riding a consolidation merge —
        head-of-line-blocks every search sharing the server.  Reads and
        writes interleaving at GIL granularity is the whole point of
        offloading; ``map`` parallelism stays at ``workers``.
        """
        with self._pool_lock:
            if self._offload is None:
                self._offload = ThreadPoolExecutor(
                    max_workers=max(2, self.workers),
                    thread_name_prefix="repro-offload",
                )
            return self._offload

    def close(self) -> None:
        """Shut the pools down (idempotent; the engine stays usable —
        a later call lazily recreates them)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            offload, self._offload = self._offload, None
        for p in (pool, offload):
            if p is not None:
                p.shutdown(wait=True)

    # -- cache lifecycle ----------------------------------------------------

    def invalidate_cache(self) -> None:
        """Drop all memoized expansions (index-retirement hook)."""
        if self.cache is not None:
            self.cache.invalidate()

    # -- entry points --------------------------------------------------------

    def execute(self, plan: QueryPlan, index, *, sse=None) -> ExecResult:
        """Run an executable plan against an encrypted index.

        ``sse`` optionally supplies the owner-side black-box SSE scheme;
        when it is Π_bas (or omitted — the server's key-free position)
        the engine runs its coalesced walk, otherwise it falls back to
        per-token ``sse.search`` calls, parallelized when the index
        advertises thread-safe reads.
        """
        if not plan.executable:
            raise IndexStateError("plan carries no tokens; build it from a trapdoor")
        if plan.kind == KIND_DPRF:
            return self._run_dprf(plan, index, sse)
        if plan.kind == KIND_SSE:
            return self._run_sse(plan, index, sse)
        raise IndexStateError(f"unknown plan kind {plan.kind!r}")

    def sse_search(self, index, tokens: Sequence, *, sse=None, scheme: str = "") -> ExecResult:
        """Plan + execute a per-keyword-token search in one call."""
        plan = plan_sse(
            tokens, probe_batch=getattr(index, "probe_batch", 1), scheme=scheme
        )
        return self._run_sse(plan, index, sse)

    def dprf_search(
        self, index, tokens: Sequence, *, sse=None, scheme: str = ""
    ) -> ExecResult:
        """Plan + execute a DPRF-delegated search in one call."""
        plan = plan_dprf(
            tokens, probe_batch=getattr(index, "probe_batch", 1), scheme=scheme
        )
        return self._run_dprf(plan, index, sse)

    # -- SSE stage ----------------------------------------------------------

    def _run_sse(self, plan: QueryPlan, index, sse) -> ExecResult:
        stats = ExecStats(workers=self.workers)
        tokens = list(plan.tokens)
        if sse is None or isinstance(sse, PiBas):
            pairs = [(t.label_key, t.value_key) for t in tokens]
            groups = self._coalesced_walk(index, pairs, stats)
        else:
            groups = self._blackbox_search(index, tokens, sse, stats)
        return ExecResult(groups, stats, plan)

    def _blackbox_search(self, index, tokens, sse, stats: ExecStats) -> "list[list[bytes]]":
        """Per-token fallback for non-Π_bas SSE schemes.

        Parallel across tokens only when the index tolerates reads from
        pool threads (plain dicts and in-memory backends do; a SQLite
        connection does not).
        """
        run = lambda token: sse.search(index, token)  # noqa: E731
        if getattr(index, "thread_safe_reads", True):
            groups = self.map(run, tokens)
        else:
            groups = [run(token) for token in tokens]
        stats.probe_rounds += len(tokens)
        stats.probes_issued += sum(len(g) + 1 for g in groups)
        return groups

    def _coalesced_walk(self, index, pairs, stats: ExecStats) -> "list[list[bytes]]":
        """All walkers' Π_bas counter walks, probes batched per round.

        ``pairs`` are raw ``(label_key, value_key)`` subkey pairs — the
        hot path skips :class:`~repro.sse.base.KeywordToken` object
        construction, which costs real time at thousands of DPRF leaf
        walkers per query.  Every round derives each active walker's
        next label chunk (fanned out over the pool), issues ONE
        ``get_many`` for the concatenation, then advances or retires
        each walker from its slice of the answers.  Chunks grow
        geometrically per walker, so total rounds track the longest
        posting list, not the walker count.  Results stay grouped per
        walker in counter order.
        """
        groups: "list[list[bytes]]" = [[] for _ in pairs]
        if not pairs:
            return groups
        get_many = getattr(index, "get_many", None)
        if get_many is None:
            get = index.get
            get_many = lambda labels: [get(label) for label in labels]  # noqa: E731
        batch = max(1, getattr(index, "probe_batch", 1))
        # Per-walker speculation width.  A lone walker on a round-trip-
        # dominated backend keeps the backend's advertised batch (the
        # PR-2 heuristic); but the round-trip is *shared* here, so with
        # W walkers speculating more than ~batch/W labels each buys no
        # fewer rounds and wastes a derivation per extra label — fatal
        # at DPRF scale, where thousands of leaf walkers miss on their
        # very first counter.
        chunk0 = max(1, batch // len(pairs))
        # (walker, counter, chunk) per still-walking token.
        state = [(i, 0, chunk0) for i in range(len(pairs))]
        while state:
            # Each round's labels ride ONE kernel batch — never the
            # thread pool: a label is one ~2µs GIL-holding HMAC, so
            # per-task dispatch overhead would dwarf the work.  The
            # kernel runs the batch inline when serial (or below its
            # crossover) and ships it to the process lane when a big
            # round makes offload pay.
            items: "list[tuple[bytes, int]]" = []
            for walker, counter, chunk in state:
                label_key = pairs[walker][0]
                for j in range(chunk):
                    items.append((label_key, counter + j))
            # Trace spans are no-ops (one contextvar read) outside a
            # traced request — per *round*, not per label, so cost
            # never scales with batch size.
            with span("engine.wave", walkers=len(state), labels=len(items)):
                flat = self.kernel.derive_labels(items)
                with span("storage.get_many", labels=len(flat)):
                    values = get_many(flat)
            stats.probe_rounds += 1
            stats.probes_issued += len(flat)
            if len(state) > 1:
                stats.probes_coalesced += len(flat)
            next_state = []
            offset = 0
            for walker, counter, chunk in state:
                answers = values[offset : offset + chunk]
                offset += chunk
                retired = False
                value_key = pairs[walker][1]
                out = groups[walker]
                for j, ct in enumerate(answers):
                    if ct is None:
                        retired = True
                        break
                    out.append(decode_posting_raw(value_key, counter + j, ct))
                if not retired:
                    next_state.append(
                        (walker, counter + chunk, min(chunk * 2, _WALK_CHUNK_MAX))
                    )
            state = next_state
        return groups

    # -- DPRF stage ----------------------------------------------------------

    def _expand_tokens(self, tokens, stats: ExecStats) -> "list[tuple]":
        """Per-token leaf subkey pairs, cache-aware and kernel-batched.

        Every cache miss across the whole token wave rides ONE
        ``derive_leaf_subkeys`` batch — the shape the pooled kernel can
        chunk across worker processes.  The cache keys on the plain
        ``(seed, level)`` descriptor (not the token object), matching
        the kernel currency, so a hit never re-ships a subtree.  Leaf
        pairs are raw ``(label_key, value_key)`` tuples, byte-identical
        to the retired per-leaf ``subkeys_from_secret`` loop.
        """
        descriptors = [token.descriptor() for token in tokens]
        results: "list[tuple | None]" = [None] * len(tokens)
        misses: "list[int]" = []
        for i, descriptor in enumerate(descriptors):
            if self.cache is not None:
                cached = self.cache.get(descriptor)
                if cached is not None:
                    results[i] = cached
                    stats.cache_hits += 1
                    continue
            misses.append(i)
        if misses:
            derived = self.kernel.derive_leaf_subkeys(
                [descriptors[i] for i in misses]
            )
            for i, leaves in zip(misses, derived):
                results[i] = leaves
                if self.cache is not None:
                    self.cache.put(descriptors[i], leaves)
                stats.cache_misses += 1
                stats.tokens_expanded += 1
        return results

    def _run_dprf(self, plan: QueryPlan, index, sse=None) -> ExecResult:
        stats = ExecStats(workers=self.workers)
        tokens = list(plan.tokens)
        expanded = self._expand_tokens(tokens, stats)
        leaf_tokens: list = []
        spans: "list[int]" = []
        for leaves in expanded:
            leaf_tokens.extend(leaves)
            spans.append(len(leaves))
        stats.leaves_derived += len(leaf_tokens)
        # Leaf keyword-token derivation is deriver-contract work (the
        # DPRF delegation seam); the walk itself honors the black-box
        # SSE boundary exactly like the pure-SSE path.
        if sse is None or isinstance(sse, PiBas):
            leaf_groups = self._coalesced_walk(index, leaf_tokens, stats)
        else:
            wrapped = [KeywordToken(lk, vk) for lk, vk in leaf_tokens]
            leaf_groups = self._blackbox_search(index, wrapped, sse, stats)
        # Regroup leaf results per delegation token (deterministic: the
        # same order the serial expand-then-search loop produced).
        groups: "list[list[bytes]]" = []
        cursor = 0
        for span in spans:
            merged: "list[bytes]" = []
            for leaf_group in leaf_groups[cursor : cursor + span]:
                merged.extend(leaf_group)
            groups.append(merged)
            cursor += span
        return ExecResult(groups, stats, plan)


# ---------------------------------------------------------------------------
# The process-wide default engine
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default: "QueryExecutor | None" = None


def _env_cache_disabled() -> bool:
    return os.environ.get(ENV_CACHE, "").strip() == "0"


def default_executor() -> QueryExecutor:
    """The shared engine used by everything not given a private one."""
    global _default
    with _default_lock:
        if _default is None:
            _default = QueryExecutor(
                cache=False if _env_cache_disabled() else None
            )
        return _default


def configure_default_executor(
    *,
    workers: "int | None" = None,
    cache: "ExpansionCache | bool | None" = None,
    crypto_workers: "int | None" = None,
) -> QueryExecutor:
    """Replace the default engine (CLI ``--workers``/``--no-cache``/
    ``--crypto-workers``).

    Existing schemes keep whatever executor they were constructed with;
    only *future* lookups of the default see the new one.  When
    ``cache`` is unspecified the ``REPRO_EXEC_CACHE`` knob still
    applies — reconfiguring workers must not silently re-enable a cache
    the environment disabled.  ``crypto_workers`` reconfigures the
    process-wide default crypto kernel first (``0`` forces the serial
    kernel), so the new engine — and anything else resolving the
    default kernel later — picks it up.
    """
    if crypto_workers is not None:
        from repro.crypto.kernel import configure_default_kernel

        configure_default_kernel(crypto_workers)
    if cache is None and _env_cache_disabled():
        cache = False
    global _default
    with _default_lock:
        old, _default = _default, QueryExecutor(workers=workers, cache=cache)
    if old is not None:
        old.close()
    return _default
