"""Query execution engine: planner, parallel executor, expansion cache.

This package is the layer between the RSSE schemes and storage.  Every
scheme's ``Search`` — and the wire-protocol server's — routes through
one :class:`~repro.exec.engine.QueryExecutor`, which

- plans a query into explicit token-expansion and storage-probe stages
  (:mod:`repro.exec.plan`),
- runs independent cover-token walks and GGM leaf expansions on a
  configurable thread pool with deterministic result order, coalescing
  every active walker's label probes into shared ``get_many`` rounds
  (:mod:`repro.exec.engine`),
- routes every batched crypto call — GGM subtree expansion, Π_bas
  label derivation — through a pluggable
  :class:`~repro.crypto.kernel.CryptoKernel` whose pooled backend
  escapes the GIL on a process-pool lane,
- memoizes GGM subtree expansions in a bounded LRU with explicit
  invalidation hooks (:mod:`repro.exec.cache`), and
- selects the cheapest scheme per query shape through a calibrated
  cost model over the planner's estimates (:mod:`repro.exec.dispatch`
  — what :class:`~repro.rangestore.HybridRangeStore` routes with).

Knobs: ``REPRO_EXEC_WORKERS`` (thread count; ``1`` forces the serial
path), ``REPRO_EXEC_CACHE`` (``0`` disables the expansion cache) and
``REPRO_CRYPTO_WORKERS`` (``0`` forces the serial crypto kernel)
configure the process-wide default engine; pass ``executor=`` to any
scheme, ``EncryptedDatabase`` or ``RsseServer`` for a private one.
"""

from repro.exec.cache import ExpansionCache
from repro.exec.dispatch import (
    DEFAULT_HYBRID_SCHEMES,
    STRATEGIES,
    CostDispatcher,
    CostModel,
    DispatchDecision,
    ValueHistogram,
    calibrate_cost_model,
    normalize_hint,
)
from repro.exec.engine import (
    QueryExecutor,
    configure_default_executor,
    default_executor,
)
from repro.exec.plan import (
    ExecStats,
    PlanStage,
    QueryPlan,
    plan_dprf,
    plan_range,
    plan_sse,
)

__all__ = [
    "CostDispatcher",
    "CostModel",
    "DEFAULT_HYBRID_SCHEMES",
    "DispatchDecision",
    "ExecStats",
    "ExpansionCache",
    "PlanStage",
    "QueryExecutor",
    "QueryPlan",
    "STRATEGIES",
    "ValueHistogram",
    "calibrate_cost_model",
    "configure_default_executor",
    "default_executor",
    "normalize_hint",
    "plan_dprf",
    "plan_range",
    "plan_sse",
]
