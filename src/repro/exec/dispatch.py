"""Cost-based scheme dispatch: pick the cheapest range scheme per query.

The paper's central observation is that no single RSSE construction
dominates: BRC, URC and SRC variants trade index size, false positives
and query cost differently *per query shape*.  PR 3 made the shape of a
query's work explicit (:func:`~repro.exec.plan.plan_range` estimates
expansion/probe stages without keys); this module is the layer that
finally *uses* those estimates for selection:

- :class:`CostModel` converts a plan's abstract units (PRG
  applications, walker derivations, storage probes/rounds, candidate
  fetches) into seconds via calibrated unit weights;
- :func:`calibrate_cost_model` fits those weights from a short measured
  probe run against the actual storage backend (the two currencies the
  planner counts are exactly the two a backend prices differently);
- :class:`CostDispatcher` consults ``plan_range`` once per configured
  strategy per query, scores each plan, and returns a
  :class:`DispatchDecision` naming the cheapest scheme;
- :class:`ValueHistogram` is the owner-side density sketch that lets
  the model price the SRC family's false positives (the owner ingests
  plaintext values, so knowing its own distribution leaks nothing);
- :func:`normalize_hint` sanitizes the dispatcher hint carried by
  :class:`~repro.protocol.messages.MultiSearchRequest` — unknown or
  garbage hints degrade to ``"auto"``, never to an error.

Execution stays where it was: the dispatcher only *chooses*; the chosen
scheme's search still runs through the shared
:class:`~repro.exec.engine.QueryExecutor`.  The
:class:`~repro.rangestore.HybridRangeStore` facade composes the two.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import DomainError, InvalidRangeError
from repro.exec.plan import STAGE_EXPAND, QueryPlan, plan_range
from repro.obs.registry import default_registry

#: The wire hint meaning "let the receiver decide".
HINT_AUTO = "auto"


# ---------------------------------------------------------------------------
# Strategy table: how each registry scheme shapes a range query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemeStrategy:
    """Static planner-facing description of one registry scheme.

    ``cover`` and ``delegated`` feed straight into
    :func:`~repro.exec.plan.plan_range`; ``rounds`` counts protocol
    round-trips (2 for the interactive SRC-i); ``fp_prone`` marks the
    schemes whose server answer can exceed the true result set, which
    is what the density-based false-positive term prices.
    """

    scheme: str
    cover: str
    delegated: bool = False
    rounds: int = 1
    fp_prone: bool = False


#: Every dispatchable registry scheme (PB is a measured baseline, not a
#: dispatch target — its Bloom-filter walk prices differently).
STRATEGIES: "dict[str, SchemeStrategy]" = {
    s.scheme: s
    for s in (
        SchemeStrategy("quadratic", "single"),
        SchemeStrategy("constant-brc", "brc", delegated=True),
        SchemeStrategy("constant-urc", "urc", delegated=True),
        SchemeStrategy("logarithmic-brc", "brc"),
        SchemeStrategy("logarithmic-urc", "urc"),
        SchemeStrategy("logarithmic-src", "tdag-src", fp_prone=True),
        SchemeStrategy("logarithmic-src-i", "tdag-src", rounds=2, fp_prone=True),
    )
}

#: Default hybrid pair: BRC's exact log-cover vs SRC's single token —
#: the latency trade-off actually visible at query time (the Constant
#: family trades *index size*, which a query dispatcher cannot cash in).
DEFAULT_HYBRID_SCHEMES = ("logarithmic-brc", "logarithmic-src")


def normalize_hint(raw) -> str:
    """Sanitize a dispatcher hint from the wire.

    Accepts ``str`` or ``bytes``; anything unknown, over-long,
    undecodable or falsy collapses to :data:`HINT_AUTO` — a hostile
    hint must never change behaviour beyond "no hint".
    """
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError:
            return HINT_AUTO
    if not isinstance(raw, str):
        return HINT_AUTO
    hint = raw.strip()
    if hint == HINT_AUTO or hint in STRATEGIES:
        return hint
    return HINT_AUTO


# ---------------------------------------------------------------------------
# The cost model: plan units -> seconds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """Unit weights (seconds) for the currencies a query plan counts.

    The defaults are laptop-scale HMAC/dict figures — useful relative
    ordering out of the box; :func:`calibrate_cost_model` replaces them
    with measured values for the deployment's actual backend, which is
    what makes the dispatcher backend-aware (a SQLite round-trip is
    ~100× a dict hit, so probe-heavy plans price very differently).
    """

    #: One PRG application during GGM subtree expansion.
    expand_seconds: float = 1.5e-6
    #: One walker's keyword-subkey derivation (+ its per-probe HMAC).
    derive_seconds: float = 2.5e-6
    #: One label looked up inside an already-open storage round.
    probe_seconds: float = 0.5e-6
    #: One ``get_many`` storage round-trip.
    round_seconds: float = 5e-6
    #: One candidate tuple fetched, decrypted and refined owner-side.
    fetch_seconds: float = 8e-6
    #: One extra owner<->server protocol round (interactive schemes).
    rtt_seconds: float = 50e-6
    #: Batch size (HMAC-equivalents: ~2 per expanded leaf) above which
    #: the configured crypto kernel offloads expansion to its worker
    #: lane.  ``inf`` — the serial-kernel truth — means "never".
    offload_crossover: float = float("inf")
    #: Per-PRG / per-leaf-derivation rates *on the offload lane* —
    #: amortized process round-trip included.  ``0.0`` means unfitted
    #: (serial rates apply regardless of batch size).
    expand_offload_seconds: float = 0.0
    derive_offload_seconds: float = 0.0
    #: True once the weights came from a measured probe run.
    calibrated: bool = False

    def estimate(
        self,
        plan: QueryPlan,
        *,
        expected_matches: float = 0.0,
        expected_fps: float = 0.0,
        rounds: int = 1,
    ) -> float:
        """Scalar cost (seconds) of one plan under these weights.

        A plan whose expansion batch clears the kernel's fitted
        offload crossover is priced at the offload-lane rates: without
        this, a calibrated model overprices exactly the big delegated
        covers the pooled kernel accelerates, and the dispatcher would
        keep dodging the scheme whose ceiling the kernel just lifted.
        """
        expand_rate = self.expand_seconds
        derive_rate = self.derive_seconds
        if 2 * plan.est_leaves >= self.offload_crossover:
            if self.expand_offload_seconds > 0.0:
                expand_rate = self.expand_offload_seconds
            if self.derive_offload_seconds > 0.0:
                derive_rate = self.derive_offload_seconds
        cost = 0.0
        for stage in plan.stages:
            if stage.kind == STAGE_EXPAND:
                cost += stage.est_cost * expand_rate
        cost += plan.est_leaves * derive_rate
        cost += plan.est_leaves * self.probe_seconds
        cost += plan.est_probe_rounds * self.round_seconds
        cost += (expected_matches + expected_fps) * self.fetch_seconds
        cost += max(0, rounds - 1) * self.rtt_seconds
        return cost


#: Uncalibrated fallback weights (module-level so callers can compare).
DEFAULT_COST_MODEL = CostModel()


def calibrate_cost_model(
    backend=None,
    *,
    probe_labels: int = 64,
    repeats: int = 3,
    kernel=None,
) -> CostModel:
    """Fit :class:`CostModel` weights from a short measured probe run.

    CPU weights (PRG expansion, walker derivation, candidate
    decryption) are timed *through the configured crypto kernel* — the
    code path queries actually take — so a pooled deployment no longer
    prices expansion off the retired inline ``iter_leaves`` loop.
    Storage weights come from probing ``backend`` with one-label and
    ``probe_labels``-label ``get_many`` rounds against a scratch
    namespace — misses, so the run leaves no state and costs one
    round-trip per sample.  Each sample repeats ``repeats`` times and
    keeps the minimum (the ``timeit`` rule: the least-perturbed run is
    the honest unit cost).  In-memory timings are used when ``backend``
    is ``None``; the process-wide default kernel when ``kernel`` is.

    On a pooled kernel the fit additionally probes where offload beats
    the serial loop (:func:`~repro.crypto.kernel.fit_offload_crossover`)
    and records the crossover plus the offload-lane rates; on a serial
    kernel the crossover is ``inf`` and offload rates stay unfitted.
    """
    from repro.crypto.dprf import DelegationToken
    from repro.crypto.kernel import default_kernel, fit_offload_crossover
    from repro.crypto.symmetric import SemanticCipher
    from repro.sse.pibas import posting_label
    from repro.storage.backend import InMemoryBackend

    if kernel is None:
        kernel = default_kernel()

    def best_of(fn: Callable[[], None]) -> float:
        samples = []
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
        return min(samples)

    # PRG applications: a level-8 subtree is 255 internal expansions,
    # timed as one kernel batch (what the engine actually issues).
    token = DelegationToken(b"\x17" * 32, 8)
    leaves = 1 << token.level
    descriptors = [token.descriptor()]
    expand_s = best_of(lambda: kernel.expand_subtrees(descriptors)) / max(
        1, leaves - 1
    )

    # Walker derivation: leaf subkeys (batched through the kernel, net
    # of the expansion walk it fuses in) + first posting label.
    subkey_batch_s = best_of(lambda: kernel.derive_leaf_subkeys(descriptors))
    labels = [(b"\x17" * 16, i) for i in range(256)]
    label_s = best_of(lambda: kernel.derive_labels(labels)) / len(labels)
    derive_s = (
        max(0.0, subkey_batch_s - expand_s * (leaves - 1)) / leaves + label_s
    )

    crossover, offload_speedup = fit_offload_crossover(kernel, repeats=repeats)

    # Candidate refinement: one authenticated decryption of a small blob.
    cipher = SemanticCipher(b"\x2a" * 32)
    blobs = [cipher.encrypt(b"calibration-plaintext-16")] * 64

    def fetch_run() -> None:
        for blob in blobs:
            cipher.decrypt(blob)

    fetch_s = best_of(fetch_run) / len(blobs)

    # Storage probes: missing labels against a scratch namespace, so the
    # run measures round-trip + lookup without mutating anything.
    backend = backend if backend is not None else InMemoryBackend()
    ns = "dispatch-calibration"
    one = [b"calib/miss/one"]
    many = [b"calib/miss/%d" % i for i in range(max(2, probe_labels))]
    round_s = best_of(lambda: backend.get_many(ns, one))
    batch_s = best_of(lambda: backend.get_many(ns, many))
    probe_s = max(0.0, (batch_s - round_s) / (len(many) - 1))

    return CostModel(
        expand_seconds=max(expand_s, 1e-9),
        derive_seconds=max(derive_s, 1e-9),
        probe_seconds=max(probe_s, 1e-9),
        round_seconds=max(round_s, 1e-9),
        fetch_seconds=max(fetch_s + probe_s, 1e-9),
        rtt_seconds=max(2 * round_s, 1e-9),
        offload_crossover=crossover,
        # Offload-lane rates: the serial rates scaled by the measured
        # pooled speedup at the crossover batch size (1.0 when offload
        # never wins, leaving them unfitted).
        expand_offload_seconds=(
            max(expand_s, 1e-9) / offload_speedup if offload_speedup > 1.0 else 0.0
        ),
        derive_offload_seconds=(
            max(derive_s, 1e-9) / offload_speedup if offload_speedup > 1.0 else 0.0
        ),
        calibrated=True,
    )


# ---------------------------------------------------------------------------
# Owner-side density sketch (prices SRC false positives)
# ---------------------------------------------------------------------------


class ValueHistogram:
    """Bucketed plaintext-value histogram the owner maintains on ingest.

    The owner sees every inserted value in the clear (it encrypts
    them), so sketching its own distribution adds zero leakage — and
    lets the dispatcher predict how many *extra* tuples an SRC cover's
    slack span would drag in on skewed data.
    """

    def __init__(self, domain_size: int, buckets: int = 256) -> None:
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        self.domain_size = domain_size
        self.buckets = min(max(1, buckets), domain_size)
        self._width = domain_size / self.buckets
        self._counts = [0] * self.buckets
        self.total = 0
        #: Bumped on every mutation — dispatch decision caches key on it.
        self.generation = 0
        self._prefix: "list[int] | None" = None  # rebuilt lazily

    def _bucket(self, value: int) -> int:
        if not 0 <= value < self.domain_size:
            raise DomainError(
                f"value {value} outside domain [0, {self.domain_size - 1}]"
            )
        return min(self.buckets - 1, int(value / self._width))

    def add(self, value: int, count: int = 1) -> None:
        self._counts[self._bucket(value)] += count
        self.total += count
        self.generation += 1
        self._prefix = None

    def remove(self, value: int, count: int = 1) -> None:
        """Best-effort decrement (tombstones may target absent tuples)."""
        bucket = self._bucket(value)
        taken = min(count, self._counts[bucket])
        self._counts[bucket] -= taken
        self.total -= taken
        self.generation += 1
        self._prefix = None

    def dump_counts(self) -> "list[int]":
        """The raw bucket counts (for checkpoint serialization)."""
        return list(self._counts)

    def restore_counts(self, counts: "list[int]") -> None:
        """Adopt checkpointed bucket counts wholesale.

        Bumps :attr:`generation` so any decision cache keyed on the old
        density is invalidated.
        """
        if len(counts) != self.buckets:
            raise DomainError(
                f"histogram has {self.buckets} buckets, snapshot carries "
                f"{len(counts)}"
            )
        self._counts = [int(c) for c in counts]
        self.total = sum(self._counts)
        self.generation += 1
        self._prefix = None

    def _prefix_sums(self) -> "list[int]":
        """``prefix[b]`` = counts of buckets ``< b`` (rebuilt lazily, so
        a density query is O(1) no matter how wide the range — this
        sits on the dispatch hot path)."""
        if self._prefix is None:
            prefix = [0] * (self.buckets + 1)
            for b, count in enumerate(self._counts):
                prefix[b + 1] = prefix[b] + count
            self._prefix = prefix
        return self._prefix

    def _partial(self, b: int, lo: int, hi: int) -> float:
        """Bucket ``b``'s pro-rata contribution to query ``[lo, hi]``."""
        overlap = min(hi + 1, (b + 1) * self._width) - max(lo, b * self._width)
        if overlap <= 0:
            return 0.0
        return self._counts[b] * min(1.0, overlap / self._width)

    def expected_matches(self, lo: int, hi: int) -> float:
        """Estimated tuples with value in ``[lo, hi]`` (pro-rata buckets).

        Bucket ``b`` covers the real interval ``[b*w, (b+1)*w)``; the
        query covers ``[lo, hi+1)``; edge buckets contribute their
        count scaled by the overlap fraction (exact when the query
        aligns with bucket edges), interior buckets come from prefix
        sums in O(1).
        """
        if hi < lo:
            return 0.0
        lo = max(0, lo)
        hi = min(self.domain_size - 1, hi)
        first, last = self._bucket(lo), self._bucket(hi)
        if first == last:
            return self._partial(first, lo, hi)
        prefix = self._prefix_sums()
        return (
            self._partial(first, lo, hi)
            + self._partial(last, lo, hi)
            + float(prefix[last] - prefix[first + 1])
        )


# ---------------------------------------------------------------------------
# The dispatcher
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanChoice:
    """One considered strategy: its plan and modeled cost."""

    scheme: str
    est_cost: float
    plan: QueryPlan = field(repr=False)


@dataclass(frozen=True)
class DispatchDecision:
    """What the dispatcher decided for one query, and why.

    ``considered`` keeps every scored candidate (configuration order)
    so the decision is auditable; :meth:`summary` is the compact
    ``(scheme, est_cost)`` view :class:`~repro.core.scheme.QueryOutcome`
    carries.
    """

    scheme: str
    est_cost: float
    considered: "tuple[PlanChoice, ...]"
    forced: bool = False

    def summary(self) -> "tuple[tuple[str, float], ...]":
        return tuple((c.scheme, c.est_cost) for c in self.considered)


class CostDispatcher:
    """Scores every configured strategy per query; picks the cheapest.

    Parameters
    ----------
    domain_size:
        The attribute domain the covers are computed over.
    schemes:
        The strategies to consult — each must appear in
        :data:`STRATEGIES`.
    cost_model:
        Unit weights; :data:`DEFAULT_COST_MODEL` when omitted.  Replace
        with a :func:`calibrate_cost_model` fit to make the dispatcher
        backend-aware.
    probe_batch:
        The backend's advertised counter-walk batch width (see
        :class:`~repro.core.split.BackendIndex.probe_batch`) — feeds the
        planner's probe-round estimate.
    density:
        Optional ``(lo, hi) -> expected tuple count`` estimator (e.g.
        :meth:`ValueHistogram.expected_matches`) pricing result fetches
        and SRC false positives.  Without it only structural costs are
        compared.
    forced:
        A scheme name pinning every decision (the ``--dispatch
        <scheme>`` override), or ``None``/``"auto"`` for cost-based
        choice.
    """

    def __init__(
        self,
        domain_size: int,
        schemes: "Sequence[str]" = DEFAULT_HYBRID_SCHEMES,
        *,
        cost_model: "CostModel | None" = None,
        probe_batch: int = 1,
        density: "Callable[[int, int], float] | None" = None,
        forced: "str | None" = None,
    ) -> None:
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        schemes = tuple(schemes)
        if not schemes:
            raise InvalidRangeError("dispatcher needs at least one scheme")
        unknown = [s for s in schemes if s not in STRATEGIES]
        if unknown:
            raise InvalidRangeError(
                f"no dispatch strategy for {unknown[0]!r}; "
                f"choose from {sorted(STRATEGIES)}"
            )
        self.domain_size = domain_size
        self.schemes = schemes
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.probe_batch = max(1, int(probe_batch))
        self.density = density
        self.forced = None
        # Decision (plan) cache: real workloads repeat query shapes, and
        # steady-state dispatch should cost a dict hit, not re-planning.
        # Invalidated whenever anything a decision depends on changes:
        # the density sketch (generation counter), the cost model, or a
        # forced override.  An opaque density callable (no generation
        # counter to watch — e.g. a plain lambda) disables memoization
        # entirely: serving stale decisions silently would be worse
        # than re-planning every query.
        self._cacheable = density is None or hasattr(
            getattr(density, "__self__", None), "generation"
        )
        self._cache: "dict[tuple[int, int], DispatchDecision]" = {}
        self._cache_generation = -1
        #: Per-lane decision tally (scheme name → queries routed there),
        #: cached decisions included — every query counts exactly once.
        #: Mirrored into the default metrics registry for the unified
        #: snapshot.
        self.decisions: "dict[str, int]" = {}
        if forced is not None and forced != HINT_AUTO:
            self.force(forced)

    #: Decision-cache capacity (oldest entries evicted beyond this).
    CACHE_LIMIT = 4096

    def _density_generation(self) -> int:
        source = getattr(self.density, "__self__", None)
        return getattr(source, "generation", 0)

    def clear_cache(self) -> None:
        """Drop memoized decisions (model/density/override changed)."""
        self._cache.clear()
        self._cache_generation = self._density_generation()

    def force(self, scheme: "str | None") -> None:
        """Pin (or with ``None``/``"auto"`` unpin) every future decision."""
        if scheme is None or scheme == HINT_AUTO:
            self.forced = None
            self.clear_cache()
            return
        if scheme not in self.schemes:
            raise InvalidRangeError(
                f"cannot force {scheme!r}: not among configured "
                f"schemes {list(self.schemes)}"
            )
        self.forced = scheme
        self.clear_cache()

    def _score(self, scheme: str, lo: int, hi: int) -> PlanChoice:
        strategy = STRATEGIES[scheme]
        plan = plan_range(
            lo,
            hi,
            cover=strategy.cover,
            domain_size=self.domain_size,
            delegated=strategy.delegated,
            probe_batch=self.probe_batch,
            scheme=scheme,
        )
        matches = fps = 0.0
        if self.density is not None:
            matches = self.density(lo, hi)
            if strategy.fp_prone:
                span_lo = plan.meta.get("span_lo", lo)
                span_hi = plan.meta.get("span_hi", hi)
                if strategy.rounds > 1:
                    # SRC-i: slack lives in *position* space, bounded by
                    # the position cover (<= 4r by Lemma 1), not by the
                    # domain span the round-1 cover touches.
                    fps = 3.0 * matches
                else:
                    fps = max(0.0, self.density(span_lo, span_hi) - matches)
        cost = self.cost_model.estimate(
            plan,
            expected_matches=matches,
            expected_fps=fps,
            rounds=strategy.rounds,
        )
        return PlanChoice(scheme, cost, plan)

    def choose(self, lo: int, hi: int) -> DispatchDecision:
        """Consult every configured strategy once; return the decision.

        With a forced scheme only that strategy is planned (the
        override must stay cheap); otherwise each configured scheme is
        scored exactly once and the cheapest wins, ties broken by
        configuration order.  Decisions are memoized per exact range
        until the density sketch, cost model or override changes.
        """
        if hi < lo:
            raise InvalidRangeError(f"invalid range [{lo}, {hi}]")
        if self._cacheable:
            if self._cache_generation != self._density_generation():
                self.clear_cache()
            cached = self._cache.get((lo, hi))
            if cached is not None:
                self._tally(cached.scheme)
                return cached
        if self.forced is not None:
            choice = self._score(self.forced, lo, hi)
            decision = DispatchDecision(
                choice.scheme, choice.est_cost, (choice,), forced=True
            )
        else:
            considered = tuple(self._score(s, lo, hi) for s in self.schemes)
            best = min(considered, key=lambda c: c.est_cost)
            decision = DispatchDecision(best.scheme, best.est_cost, considered)
        if self._cacheable:
            if len(self._cache) >= self.CACHE_LIMIT:
                self._cache.pop(next(iter(self._cache)))
            self._cache[(lo, hi)] = decision
        self._tally(decision.scheme)
        return decision

    def _tally(self, scheme: str) -> None:
        self.decisions[scheme] = self.decisions.get(scheme, 0) + 1
        default_registry().counter(f"dispatch.decision.{scheme}").inc()

    def recalibrate(self, backend=None, **kwargs) -> CostModel:
        """Refit the unit weights from a measured probe run (in place)."""
        self.cost_model = calibrate_cost_model(backend, **kwargs)
        self.clear_cache()
        return self.cost_model

    def with_cost_model(self, model: CostModel) -> "CostDispatcher":
        """A copy of this dispatcher under different unit weights."""
        clone = CostDispatcher(
            self.domain_size,
            self.schemes,
            cost_model=model,
            probe_batch=self.probe_batch,
            density=self.density,
        )
        clone.forced = self.forced
        return clone


def describe_decision(decision: DispatchDecision) -> str:
    """One-line human summary (harness/bench observability)."""
    ranked = sorted(decision.considered, key=lambda c: c.est_cost)
    parts = ", ".join(f"{c.scheme}~{c.est_cost * 1e6:.0f}us" for c in ranked)
    tag = " (forced)" if decision.forced else ""
    return f"dispatch -> {decision.scheme}{tag}: {parts}"


__all__ = [
    "CostDispatcher",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_HYBRID_SCHEMES",
    "DispatchDecision",
    "HINT_AUTO",
    "PlanChoice",
    "SchemeStrategy",
    "STRATEGIES",
    "ValueHistogram",
    "calibrate_cost_model",
    "describe_decision",
    "normalize_hint",
]
