"""Bounded LRU cache for GGM subtree expansions.

The Constant schemes pay ``O(R)`` PRG applications plus ``O(R)`` token
derivations per query to expand delegated seeds into leaf-level keyword
tokens.  Expansion is a *pure* function of the delegation token (seed,
level) — two tokens with equal seeds delegate the same subtree of the
same GGM tree — so its results are memoizable.  This cache stores the
fully derived per-leaf ``(label_key, value_key)`` subkey pairs, so a
hit skips both the PRG walk and the per-leaf token derivation.

Keys are opaque hashables; the exec engine keys at ``(seed, level)``
*descriptor* granularity — the crypto kernel's batch currency — so a
cached subtree is filtered out of the batch before it would ever
re-ship to a pooled kernel's worker processes.

Bounding is by total cached *leaves*, not entries: one level-12 token
holds 4096 derived tokens and would otherwise evict thousands of cheap
entries while counting as one.  Eviction is LRU.

Invalidation: correctness never depends on it (keys are cryptographic
and the mapping is deterministic), but retired indexes leave dead
entries behind.  :meth:`invalidate` exists so lifecycle owners — the
update manager's consolidate/restore, a scheme rebuild — can drop them
eagerly instead of waiting for LRU pressure; it is wired into
:class:`~repro.updates.manager.BatchUpdateManager`.

Thread safety: all operations take an internal lock, so one cache can
serve a multi-worker executor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Default capacity in cached leaves (~128k derived tokens; a derived
#: token is two 16-byte subkeys, so the ceiling is a few MiB).
DEFAULT_MAX_LEAVES = 1 << 17


class ExpansionCache:
    """LRU map: delegation token -> tuple of derived leaf subkey pairs."""

    def __init__(self, max_leaves: int = DEFAULT_MAX_LEAVES) -> None:
        if max_leaves < 1:
            raise ValueError(f"cache capacity must be >= 1, got {max_leaves}")
        self.max_leaves = max_leaves
        self._entries: "OrderedDict[object, tuple]" = OrderedDict()
        self._weight = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, token) -> "tuple | None":
        """Cached leaf tokens for a delegation token (``None`` on miss)."""
        with self._lock:
            leaves = self._entries.get(token)
            if leaves is None:
                self.misses += 1
                return None
            self._entries.move_to_end(token)
            self.hits += 1
            return leaves

    def put(self, token, leaf_tokens: tuple) -> None:
        """Insert an expansion; oversized subtrees are silently skipped
        (one entry must never evict the entire cache)."""
        leaf_tokens = tuple(leaf_tokens)
        weight = len(leaf_tokens)
        if weight > self.max_leaves:
            return
        with self._lock:
            if token in self._entries:
                self._entries.move_to_end(token)
                return
            self._entries[token] = leaf_tokens
            self._weight += weight
            while self._weight > self.max_leaves:
                _, evicted = self._entries.popitem(last=False)
                self._weight -= len(evicted)
                self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (lifecycle hook; see module docstring)."""
        with self._lock:
            self._entries.clear()
            self._weight = 0
            self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def cached_leaves(self) -> int:
        """Current weight: total leaf tokens held."""
        return self._weight

    def stats(self) -> dict:
        """Counters snapshot (observability for the harness/bench)."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "cached_leaves": self._weight,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
