"""Range-to-keyword reduction for the RSSE security game.

The paper's RSSE game is the SSE game of Figure 2 with ranges in place
of keywords; a scheme's security proof reduces each range query to the
keyword queries its cover emits, plus the structural leakage formalized
in :mod:`repro.leakage.profiles`.  This module performs exactly that
reduction for the Logarithmic family, so the SSE game machinery can
exercise the RSSE constructions end to end:

- the dataset becomes the node-keyword multimap of BuildIndex;
- each range query becomes the sequence of cover-node keywords of
  Trpdr (so search patterns include cross-range node re-use — the alias
  repetition leakage the paper's L2 makes explicit).
"""

from __future__ import annotations

from typing import Sequence

from repro.covers.brc import best_range_cover
from repro.covers.dyadic import DomainTree
from repro.covers.tdag import Tdag
from repro.covers.urc import uniform_range_cover
from repro.sse.encoding import encode_id


def logarithmic_reduction(
    records: "Sequence[tuple[int, int]]",
    domain_size: int,
    ranges: "Sequence[tuple[int, int]]",
    *,
    cover: str = "brc",
) -> "tuple[dict[bytes, list[bytes]], list[bytes]]":
    """Reduce Logarithmic-BRC/URC to (multimap, keyword stream)."""
    tree = DomainTree(domain_size)
    multimap: dict[bytes, list[bytes]] = {}
    for doc_id, value in records:
        for node in tree.path_nodes(value):
            multimap.setdefault(node.label(), []).append(encode_id(doc_id))
    cover_fn = best_range_cover if cover == "brc" else uniform_range_cover
    keywords = [
        node.label() for lo, hi in ranges for node in cover_fn(lo, hi)
    ]
    return multimap, keywords


def src_reduction(
    records: "Sequence[tuple[int, int]]",
    domain_size: int,
    ranges: "Sequence[tuple[int, int]]",
) -> "tuple[dict[bytes, list[bytes]], list[bytes]]":
    """Reduce Logarithmic-SRC to (multimap, keyword stream) — one
    keyword per range, so two ranges under the same TDAG node repeat."""
    tdag = Tdag(domain_size)
    multimap: dict[bytes, list[bytes]] = {}
    for doc_id, value in records:
        for node in tdag.covering_nodes(value):
            multimap.setdefault(node.label(), []).append(encode_id(doc_id))
    keywords = [tdag.src_cover(lo, hi).label() for lo, hi in ranges]
    return multimap, keywords
