"""The ideal-real security game of paper Figure 2, as executable code.

The paper proves security in the Curtmola et al. framework: formulate
leakage functions L1/L2, then exhibit a *simulator* that — given only
the leakage — fakes the index and the tokens so well that no adversary
distinguishes the simulation from the real protocol.

A unit test cannot verify computational indistinguishability, but it
can verify everything the proof needs to be *possible*, and those
checks have real teeth:

1. **Simulatability** — the simulator in :mod:`repro.security.simulator`
   constructs a fake EDB and fake tokens from L1/L2 alone (the code has
   no access to keys or plaintexts; the module boundary enforces it).
2. **Consistency** — running the *real* Search algorithm on the fake
   index with the fake tokens returns exactly the leaked access
   patterns, for adaptive query sequences with repeats.  If our schemes
   actually needed more leakage than formulated (the flaw the paper
   calls out in prior work), this is where it would surface: the
   simulator would be unable to produce a consistent transcript.
3. **Shape equality** — the real and ideal transcripts agree on every
   quantity the adversary observes directly: EDB entry count, entry
   size multiset, token sizes, search-pattern repeats.

``run_real_game`` / ``run_ideal_game`` execute the two columns of
Figure 2 for the single-keyword SSE underlying all schemes, driven by
an (adaptive) query sequence; :func:`transcripts_consistent` performs
the distinguisher's bookkeeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.crypto.prf import generate_key
from repro.security.leakage_fn import sse_l1, sse_l2
from repro.security.simulator import SseSimulator
from repro.sse.base import PrfKeyDeriver
from repro.sse.pibas import PiBas, search as pibas_search


@dataclass
class GameTranscript:
    """The adversary's view ``v = (I, t)`` plus the search outputs."""

    edb_entry_count: int
    edb_entry_sizes: "tuple[int, ...]"  # sorted (label+ct) sizes
    token_sizes: "tuple[int, ...]"
    search_outputs: "list[list[bytes]]" = field(default_factory=list)
    token_repeats: "list[int | None]" = field(default_factory=list)


def run_real_game(
    multimap: "Mapping[bytes, list[bytes]]",
    queries: "Sequence[bytes]",
    *,
    rng: "random.Random | None" = None,
) -> GameTranscript:
    """Left column of Figure 2: the actual protocol."""
    rng = rng if rng is not None else random.SystemRandom()
    sse = PiBas(PrfKeyDeriver(generate_key(rng)), shuffle_rng=rng)
    index = sse.build_index(multimap)
    transcript = GameTranscript(
        edb_entry_count=len(index),
        edb_entry_sizes=tuple(
            sorted(len(k) + len(v) for k, v in index._entries.items())
        ),
        token_sizes=(),
    )
    tokens = []
    seen: list[bytes] = []
    token_sizes = []
    for keyword in queries:
        token = sse.trapdoor(keyword)
        tokens.append(token)
        token_sizes.append(token.serialized_size())
        repeat = next((i for i, w in enumerate(seen) if w == keyword), None)
        transcript.token_repeats.append(repeat)
        seen.append(keyword)
        transcript.search_outputs.append(sorted(sse.search(index, token)))
    transcript.token_sizes = tuple(token_sizes)
    return transcript


def run_ideal_game(
    multimap: "Mapping[bytes, list[bytes]]",
    queries: "Sequence[bytes]",
    *,
    rng: "random.Random | None" = None,
) -> GameTranscript:
    """Right column of Figure 2: the simulator, fed leakage only.

    The leakage functions are evaluated here (they take the plaintext
    data, as in the definition); the *simulator object* receives nothing
    else — in particular no keys and no keyword strings.
    """
    rng = rng if rng is not None else random.SystemRandom()
    l1 = sse_l1(multimap)
    simulator = SseSimulator(l1, rng=rng)
    index = simulator.fake_index()
    transcript = GameTranscript(
        edb_entry_count=len(index),
        edb_entry_sizes=tuple(
            sorted(len(k) + len(v) for k, v in index._entries.items())
        ),
        token_sizes=(),
    )
    history: list[bytes] = []
    token_sizes = []
    for keyword in queries:
        history.append(keyword)
        l2 = sse_l2(multimap, history)
        token = simulator.fake_token(l2[-1])
        token_sizes.append(token.serialized_size())
        transcript.token_repeats.append(l2[-1].repeats)
        # The *real, public* Search algorithm must work on the fakes.
        transcript.search_outputs.append(sorted(pibas_search(index, token)))
    transcript.token_sizes = tuple(token_sizes)
    return transcript


def transcripts_consistent(
    real: GameTranscript, ideal: GameTranscript
) -> "list[str]":
    """The distinguisher's checklist; returns human-readable violations
    (empty list = the views agree on everything checkable)."""
    problems = []
    if real.edb_entry_count != ideal.edb_entry_count:
        problems.append(
            f"EDB entry count differs: {real.edb_entry_count} vs "
            f"{ideal.edb_entry_count}"
        )
    if real.edb_entry_sizes != ideal.edb_entry_sizes:
        problems.append("EDB entry size multisets differ")
    if real.token_sizes != ideal.token_sizes:
        problems.append("token size sequences differ")
    if real.token_repeats != ideal.token_repeats:
        problems.append("search patterns differ")
    if real.search_outputs != ideal.search_outputs:
        problems.append("access patterns differ")
    return problems
