"""The ideal-real security game (Figure 2) with a working simulator."""

from repro.security.game import (
    GameTranscript,
    run_ideal_game,
    run_real_game,
    transcripts_consistent,
)
from repro.security.leakage_fn import SseL1, SseL2Entry, sse_l1, sse_l2
from repro.security.reduction import logarithmic_reduction, src_reduction
from repro.security.simulator import SseSimulator

__all__ = [
    "GameTranscript",
    "SseL1",
    "SseL2Entry",
    "SseSimulator",
    "logarithmic_reduction",
    "run_ideal_game",
    "run_real_game",
    "src_reduction",
    "sse_l1",
    "sse_l2",
    "transcripts_consistent",
]
