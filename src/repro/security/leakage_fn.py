"""The SSE leakage functions L1/L2 for the security game.

Exactly the leakage the paper attributes to its underlying SSE
(Section 2.2, instantiated for our Π_bas-style EDB):

- ``L1(D)``: the number of postings and their payload sizes — what the
  index alone reveals (the paper states an upper bound ``maxn``; an
  unpadded EDB reveals the exact count, which is what we model).
- ``L2(D, W)``: per query, the access pattern ``id(w)`` (the payloads
  retrieved) and the search pattern (index of the first identical
  earlier query, if any).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class SseL1:
    """Setup leakage: posting count and the payload-length multiset."""

    entry_count: int
    payload_sizes: "tuple[int, ...]"


@dataclass(frozen=True)
class SseL2Entry:
    """Per-query leakage: access pattern + search pattern."""

    access_pattern: "tuple[bytes, ...]"
    repeats: "int | None"


def sse_l1(multimap: "Mapping[bytes, list[bytes]]") -> SseL1:
    """Evaluate L1 on the plaintext multimap."""
    sizes = sorted(
        len(payload) for payloads in multimap.values() for payload in payloads
    )
    return SseL1(entry_count=len(sizes), payload_sizes=tuple(sizes))


def sse_l2(
    multimap: "Mapping[bytes, list[bytes]]", queries: "Sequence[bytes]"
) -> "list[SseL2Entry]":
    """Evaluate L2 on the plaintext multimap and the query history."""
    out: list[SseL2Entry] = []
    for i, keyword in enumerate(queries):
        repeat = next((j for j in range(i) if queries[j] == keyword), None)
        out.append(
            SseL2Entry(
                access_pattern=tuple(multimap.get(keyword, ())),
                repeats=repeat,
            )
        )
    return out
