"""The simulator S of the ideal game — builds everything from leakage.

This class is the constructive heart of the security proof: it receives
``L1`` at setup and one ``L2`` entry per (adaptive) query, and must
output an index and tokens on which the *real public Search algorithm*
behaves exactly as in the real game.

How it fakes:

- **Setup** (``fake_index``): emit ``L1.entry_count`` entries with
  uniformly random labels and random ciphertexts of the right sizes
  (PiBas ciphertexts are length-prefixed payloads under a PRF pad, so
  a ciphertext of a size-s payload is ``s + 4`` pseudorandom bytes —
  indistinguishable from uniform without the key).
- **Query** (``fake_token``): for a fresh query, sample a random
  per-keyword secret, derive its token (tokens are PRF outputs in the
  real game — uniform to anyone without the master key), then *program*
  the index: delete as many unopened dummy entries as the access
  pattern has payloads and insert, at the token's label chain, real
  encryptions of the leaked payloads.  Repeated queries replay the
  stored token.

If any RSSE layer leaked less than it actually needs (the flaw the
paper identifies in Goh-style definitions), programming would fail or
search would return the wrong access pattern — which the game test
would catch.
"""

from __future__ import annotations

import random

from repro.errors import IndexStateError
from repro.security.leakage_fn import SseL1, SseL2Entry
from repro.sse.base import LABEL_LEN, EncryptedIndex, KeywordToken, token_from_secret
from repro.sse.pibas import _label, _xor_pad


class SseSimulator:
    """Leakage-only simulator for the Π_bas-style SSE."""

    def __init__(self, l1: SseL1, *, rng: "random.Random | None" = None) -> None:
        self._l1 = l1
        self._rng = rng if rng is not None else random.SystemRandom()
        self._index: "EncryptedIndex | None" = None
        #: Unopened dummy labels, grouped by payload size so programming
        #: swaps like for like and the entry-size multiset never drifts.
        self._dummies_by_size: "dict[int, list[bytes]]" = {}
        self._tokens: "list[KeywordToken]" = []  # per-query, for replays

    def fake_index(self) -> EncryptedIndex:
        """Setup-time simulation from L1 alone."""
        index = EncryptedIndex()
        self._dummies_by_size = {}
        for size in self._l1.payload_sizes:
            label = self._rng.randbytes(LABEL_LEN)
            while label in index:  # vanishing probability, but be exact
                label = self._rng.randbytes(LABEL_LEN)
            index.put(label, self._rng.randbytes(size + 4))
            self._dummies_by_size.setdefault(size, []).append(label)
        self._index = index
        return index

    def fake_token(self, l2: SseL2Entry) -> KeywordToken:
        """Adaptive per-query simulation from one L2 entry."""
        if self._index is None:
            raise IndexStateError("fake_index() must run before fake_token()")
        if l2.repeats is not None:
            token = self._tokens[l2.repeats]
            self._tokens.append(token)
            return token
        token = token_from_secret(self._rng.randbytes(32))
        # Program the index: consume unopened dummies of matching sizes,
        # then install the leaked access pattern at the token's labels.
        for payload in l2.access_pattern:
            pool = self._dummies_by_size.get(len(payload))
            if not pool:
                raise IndexStateError(
                    "leakage accounting violated: access pattern exceeds "
                    "the postings L1 declared"
                )
            self._index._entries.pop(pool.pop())
        for counter, payload in enumerate(l2.access_pattern):
            body = len(payload).to_bytes(4, "big") + payload
            ct = _xor_pad(token.value_key, counter, body)
            self._index._entries[_label(token.label_key, counter)] = ct
        self._tokens.append(token)
        return token
