"""Client-side scatter-gather router over N shard servers.

``ClusterRouter`` is the owner's single query endpoint for a sharded
deployment: it holds one scheme instance (keys and all) per shard, fans
every query batch out to all shards as
:class:`~repro.protocol.messages.MultiSearchRequest` frames over pooled
:class:`~repro.net.NetTransport` lanes, and gathers the per-shard
answers into exactly the result the single-server
:class:`~repro.protocol.RemoteRangeClient` contract promises.  Because
records are partitioned by id (see :mod:`repro.cluster.topology`), the
per-shard result sets are disjoint and the merge is a deterministic
union — byte-identical to one server hosting everything.

Failure handling is per shard and bounded: a lane that raises
:class:`~repro.errors.TransportError` is torn down, rebuilt after
exponential backoff, and the shard's *whole* sub-batch retried (every
cluster operation is idempotent: uploads are content-addressed,
searches and fetches are pure reads).  A shard that stays dead through
the retry budget raises :class:`~repro.errors.ClusterError` naming the
shard — partial answers are never returned, because a silently missing
shard would be silently missing results.

Topology changes arrive as whole new :class:`ShardMap` versions via
:meth:`apply_topology`; regressions and same-version conflicts raise
:class:`~repro.errors.StaleTopologyError`.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.topology import ShardMap, ShardSpec
from repro.errors import ClusterError, StaleTopologyError, TransportError
from repro.obs.tracing import TraceBuffer, span, start_trace
from repro.protocol.client import RemoteRangeClient


@dataclass
class _Lane:
    """One live shard attachment: transport + owner client."""

    spec: ShardSpec
    transport: object
    client: RemoteRangeClient


def _default_transport_factory(**net_kwargs) -> "Callable[[ShardSpec], object]":
    def factory(spec: ShardSpec):
        from repro.net import NetTransport

        return NetTransport(spec.host, spec.port, **net_kwargs)

    return factory


class ClusterRouter:
    """Scatter-gather owner endpoint over one scheme instance per shard.

    Parameters
    ----------
    schemes:
        One :class:`~repro.core.scheme.RangeScheme` per shard, in shard
        order.  Each holds its own keys; the router never mixes key
        material across shards.
    shard_map:
        The versioned topology this router serves.
    retries / backoff_s:
        Router-level retry budget *per shard operation*, on top of the
        transport's own reconnect logic: a failed lane is rebuilt and
        the shard's sub-batch resent, with ``backoff_s * 2**attempt``
        sleeps between attempts.
    transport_factory:
        ``ShardSpec -> Transport`` — injectable for tests; defaults to
        a pooled :class:`~repro.net.NetTransport` built with
        ``pool_size``/``timeout_s``/``ssl``.
    scatter_workers:
        Thread count for the fan-out pool (default: 4 per shard, so
        several callers can scatter concurrently).
    """

    def __init__(
        self,
        schemes: "Sequence",
        shard_map: ShardMap,
        *,
        retries: int = 2,
        backoff_s: float = 0.05,
        pool_size: int = 2,
        timeout_s: float = 30.0,
        ssl=None,
        transport_factory: "Callable[[ShardSpec], object] | None" = None,
        scatter_workers: "int | None" = None,
    ) -> None:
        if len(schemes) != len(shard_map):
            raise ClusterError(
                f"{len(schemes)} schemes for {len(shard_map)} shards"
            )
        self._schemes = list(schemes)
        self.shard_map = shard_map
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self._transport_factory = (
            transport_factory
            if transport_factory is not None
            else _default_transport_factory(
                pool_size=pool_size, timeout_s=timeout_s, ssl=ssl
            )
        )
        self._lanes: "list[_Lane | None]" = [None] * len(shard_map)
        self._lane_locks = [threading.Lock() for _ in range(len(shard_map))]
        #: Client-side trace ring: one ``router.scatter`` root span per
        #: traced batch (the server-side halves live in each shard's
        #: own buffer under the same trace id).
        self.tracer = TraceBuffer()
        self._attached = False
        self._pool = ThreadPoolExecutor(
            max_workers=(
                scatter_workers
                if scatter_workers is not None
                else 4 * len(shard_map)
            ),
            thread_name_prefix="rsse-cluster",
        )
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def from_snapshots(
        cls,
        snapshot_dir,
        shard_map: ShardMap,
        *,
        passphrase: "str | None" = None,
        **kwargs,
    ) -> "ClusterRouter":
        """Re-open a router from per-shard owner snapshots.

        The multi-process/restart path: a fresh owner process loads the
        key material written by :meth:`outsource`'s ``snapshot_dir``
        and attaches to the live cluster without re-uploading anything.
        """
        from repro.cluster.bootstrap import shard_snapshot_path
        from repro.io.snapshot import load_scheme

        schemes = [
            load_scheme(shard_snapshot_path(snapshot_dir, i), passphrase)
            for i in range(len(shard_map))
        ]
        router = cls(schemes, shard_map, **kwargs)
        router.attach()
        return router

    def attach(self) -> None:
        """Adopt already-uploaded shard state (same keys, any process)."""
        self._attached = True

    def outsource(
        self,
        records,
        *,
        payloads=None,
        snapshot_dir=None,
        snapshot_passphrase: "str | None" = None,
    ) -> "list[int]":
        """Partition, build, (optionally snapshot,) upload — per shard.

        Records are split by :meth:`ShardMap.shard_of` on their id;
        each shard's scheme builds its complete index locally, then
        uploads its whole server state and detaches — after this the
        owner holds only keys, exactly as in the single-server flow.

        ``snapshot_dir`` additionally writes one owner snapshot per
        shard (taken *before* the upload detaches local state) — the
        raw material :func:`~repro.cluster.bootstrap.bootstrap_shard`
        later replays onto a replacement node.  Returns the per-shard
        record counts.
        """
        from repro.io.snapshot import save_scheme

        parts: "list[list]" = [[] for _ in self.shard_map.shards]
        for record in records:
            rid = record[0] if isinstance(record, tuple) else record.id
            parts[self.shard_map.shard_of(rid)].append(record)
        payload_parts: "list[dict | None]" = [None] * len(parts)
        if payloads is not None:
            payload_parts = [
                {
                    (r[0] if isinstance(r, tuple) else r.id): payloads[
                        r[0] if isinstance(r, tuple) else r.id
                    ]
                    for r in part
                    if (r[0] if isinstance(r, tuple) else r.id) in payloads
                }
                for part in parts
            ]
        counts = []
        for shard, part in enumerate(parts):
            scheme = self._schemes[shard]
            scheme.build_index(part, payloads=payload_parts[shard])
            if snapshot_dir is not None:
                from repro.cluster.bootstrap import shard_snapshot_path

                save_scheme(
                    scheme,
                    shard_snapshot_path(snapshot_dir, shard),
                    snapshot_passphrase,
                )
            self._with_retry(
                shard, lambda lane: lane.client.outsource(records=None)
            )
            counts.append(len(part))
        self._attached = True
        return counts

    def close(self) -> None:
        """Tear down every lane and the scatter pool; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in range(len(self.shard_map)):
            self._drop_lane(shard)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- lanes ---------------------------------------------------------------

    def _lane(self, shard: int) -> _Lane:
        with self._lane_locks[shard]:
            if self._closed:
                raise ClusterError("router is closed")
            lane = self._lanes[shard]
            if lane is not None:
                return lane
            spec = self.shard_map.shards[shard]
            transport = self._transport_factory(spec)
            client = RemoteRangeClient(
                self._schemes[shard], transport, index_id=spec.index_id
            )
            if self._attached:
                client.attach()
            lane = _Lane(spec, transport, client)
            self._lanes[shard] = lane
            return lane

    def _drop_lane(self, shard: int) -> None:
        with self._lane_locks[shard]:
            lane = self._lanes[shard]
            self._lanes[shard] = None
        if lane is not None:
            close = getattr(lane.transport, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # noqa: BLE001 — already tearing down
                    pass

    def _submit(self, fn: Callable, *args):
        """Submit ``fn`` to the scatter pool with the caller's context.

        ``ThreadPoolExecutor.submit`` runs work in whatever context the
        worker thread happens to hold, which silently detaches the
        active-trace ContextVar — per-shard ``span()`` calls would
        no-op and the scatter root span would lose all its children.
        Each future gets its *own* ``copy_context()`` because one
        Context object cannot be entered by two threads at once.
        """
        ctx = contextvars.copy_context()
        return self._pool.submit(ctx.run, fn, *args)

    def _with_retry(self, shard: int, op: "Callable[[_Lane], object]"):
        """Run one shard operation through the bounded retry loop.

        Every failure tears the lane down completely (transport closed,
        client discarded) before backing off — a half-dead pooled
        connection must never be reused for the retry.
        """
        last: "BaseException | None" = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._drop_lane(shard)
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            try:
                return op(self._lane(shard))
            except TransportError as exc:
                last = exc
        self._drop_lane(shard)
        spec = self.shard_map.shards[shard]
        raise ClusterError(
            f"shard {shard} ({spec.host}:{spec.port}) failed after "
            f"{self.retries + 1} attempts: {last!r}"
        ) from last

    # -- queries -------------------------------------------------------------

    def query(self, lo: int, hi: int) -> "frozenset[int]":
        """One range query across the cluster (union of shard answers)."""
        return self.query_many([(lo, hi)])[0]

    def query_many(
        self,
        ranges: "Sequence[tuple[int, int]]",
        *,
        dispatch_hint: "str | None" = None,
        trace_id: "str | None" = None,
    ) -> "list[frozenset[int]]":
        """Scatter a query batch to every shard, gather, merge.

        Each shard executes the *whole* batch against its slice (one
        pipelined ``MultiSearchRequest`` per shard, all shards in
        flight concurrently); per-range answers merge by union.  The
        shards hold disjoint record subsets, so the union is exactly
        the single-server answer, in the same order.

        ``trace_id`` (e.g. :func:`repro.obs.new_trace_id`) opens a
        ``router.scatter`` root span in :attr:`tracer` and rides the
        wire to every shard, whose servers collect their own
        ``server.handle`` span trees under the same id — the
        cross-layer join key.  ``None`` (the default) traces nothing.
        """
        if not ranges:
            return []
        ranges = list(ranges)

        def shard_op(shard: int):
            with span("router.shard", shard=shard):
                return self._with_retry(
                    shard,
                    lambda lane: lane.client.query_many(
                        ranges, dispatch_hint=dispatch_hint, trace_id=trace_id
                    ),
                )

        def scatter() -> "list[frozenset[int]]":
            futures = [
                self._submit(shard_op, shard)
                for shard in range(len(self.shard_map))
            ]
            per_shard = [future.result() for future in futures]
            return [
                frozenset().union(
                    *(shard_results[i] for shard_results in per_shard)
                )
                for i in range(len(ranges))
            ]

        if trace_id is None:
            return scatter()
        with start_trace(
            trace_id,
            self.tracer,
            "router.scatter",
            shards=len(self.shard_map),
            ranges=len(ranges),
        ):
            return scatter()

    def fetch_payloads(self, ids: "Sequence[int]") -> "dict[int, bytes]":
        """Fetch + decrypt full documents, routed to their owning shards."""
        parts = self.shard_map.partition(ids)
        futures = {
            shard: self._submit(
                self._with_retry,
                shard,
                lambda lane, part=part: lane.client.fetch_payloads(part),
            )
            for shard, part in enumerate(parts)
            if part
        }
        merged: "dict[int, bytes]" = {}
        for future in futures.values():
            merged.update(future.result())
        return merged

    def retire(self) -> None:
        """Drop every shard's index on its server (idempotent)."""
        for shard in range(len(self.shard_map)):
            self._with_retry(shard, lambda lane: lane.client.retire())

    # -- topology ------------------------------------------------------------

    def apply_topology(self, new_map: ShardMap) -> None:
        """Switch to a newer shard map (node replacements, port moves).

        Strictly monotone: an older version raises
        :class:`StaleTopologyError`; the *same* version with different
        contents is a split-brain signal and also raises.  Shard count
        changes are not a router-level move (the record partition
        itself changes — that is a re-outsource), so they raise
        :class:`ClusterError`.  Lanes whose spec changed are torn down
        and redial lazily at the next operation.
        """
        if new_map.version < self.shard_map.version:
            raise StaleTopologyError(
                f"refusing topology regression v{new_map.version} < "
                f"v{self.shard_map.version}"
            )
        if new_map.version == self.shard_map.version:
            if new_map != self.shard_map:
                raise StaleTopologyError(
                    f"conflicting shard maps at version {new_map.version}"
                )
            return
        if len(new_map) != len(self.shard_map):
            raise ClusterError(
                f"shard count change ({len(self.shard_map)} -> "
                f"{len(new_map)}) repartitions records; re-outsource instead"
            )
        old = self.shard_map
        self.shard_map = new_map
        for shard, (old_spec, new_spec) in enumerate(
            zip(old.shards, new_map.shards)
        ):
            if old_spec != new_spec:
                self._drop_lane(shard)

    # -- health --------------------------------------------------------------

    def health(self) -> dict:
        """Cluster health view: per-shard stats plus aggregate rollup.

        Never raises on a dead shard — unreachable nodes are *reported*
        (``reachable: false`` with the error string), because the whole
        point of a health probe is surviving the outage it measures.
        """
        from repro.cluster.health import summarize

        def probe(shard: int) -> dict:
            try:
                stats = self._with_retry(
                    shard, lambda lane: lane.transport.stats()
                )
                return {"reachable": True, "stats": stats}
            except ClusterError as exc:
                return {"reachable": False, "error": str(exc)}

        futures = [
            self._submit(probe, shard)
            for shard in range(len(self.shard_map))
        ]
        return summarize(self.shard_map, [f.result() for f in futures])
