"""Versioned shard maps: which node owns which slice of the records.

A cluster deployment is N independent :class:`~repro.net.RsseNetServer`
nodes, each hosting a *complete* encrypted index over a disjoint subset
of the records.  Partitioning is by **record id**, not by EDB label:
label-hash striping would scatter one keyword's counter chain across
nodes and break the Π_bas counter walk (a node holding counters 0 and 2
but not 1 would retire the walk early and silently drop results).  With
document partitioning every shard's index is self-contained — each
shard runs its own scheme instance under its own keys, and the router's
merge is a plain union of disjoint result sets.

The :class:`ShardMap` is the deployment's source of truth: a version
number plus one :class:`ShardSpec` per shard.  Every topology change
(a node replaced after bootstrap, a port move) produces a *new* map
with a higher version; routers refuse to regress
(:class:`~repro.errors.StaleTopologyError`), so a stale operator script
can never point live traffic at a decommissioned node.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass

from repro.errors import ClusterError


@dataclass(frozen=True)
class ShardSpec:
    """One shard's address and wire identity.

    ``index_id`` is the base wire handle the shard's owner client uses
    (pinned, not random, so a bootstrap re-upload from a snapshot lands
    on the same handles the router already queries).
    """

    shard: int
    host: str
    port: int
    index_id: int

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "host": self.host,
            "port": self.port,
            "index_id": self.index_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(
            shard=int(data["shard"]),
            host=str(data["host"]),
            port=int(data["port"]),
            index_id=int(data["index_id"]),
        )


@dataclass(frozen=True)
class ShardMap:
    """Versioned record-id → shard assignment plus shard addresses."""

    version: int
    shards: "tuple[ShardSpec, ...]"

    def __post_init__(self) -> None:
        if not self.shards:
            raise ClusterError("a shard map needs at least one shard")
        numbers = [spec.shard for spec in self.shards]
        if numbers != list(range(len(self.shards))):
            raise ClusterError(
                f"shard map must number shards 0..{len(self.shards) - 1} "
                f"in order, got {numbers}"
            )
        if self.version < 0:
            raise ClusterError("shard map version must be non-negative")

    def __len__(self) -> int:
        return len(self.shards)

    def shard_of(self, record_id: int) -> int:
        """The shard owning ``record_id``.

        CRC-32 over the id's fixed 8-byte encoding: stable across
        processes and restarts (unlike ``hash()``), uniform enough for
        load balance, and deliberately the same hash family the storage
        layer stripes labels with.
        """
        return zlib.crc32(int(record_id).to_bytes(8, "big")) % len(self.shards)

    def partition(self, record_ids) -> "list[list[int]]":
        """Group ids into per-shard lists (order preserved within each)."""
        parts: "list[list[int]]" = [[] for _ in self.shards]
        for rid in record_ids:
            parts[self.shard_of(rid)].append(rid)
        return parts

    def replace(self, shard: int, host: str, port: int) -> "ShardMap":
        """A *new* map (version + 1) with one shard re-addressed.

        The record→shard assignment is untouched — this is the
        node-replacement move (bootstrap a fresh box, point the map at
        it), not a rebalance.
        """
        specs = list(self.shards)
        old = specs[shard]
        specs[shard] = ShardSpec(shard, host, port, old.index_id)
        return ShardMap(self.version + 1, tuple(specs))

    # -- serialization (operator tooling: files, CLI) -------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "shards": [spec.to_dict() for spec in self.shards],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardMap":
        return cls(
            version=int(data["version"]),
            shards=tuple(
                ShardSpec.from_dict(entry) for entry in data["shards"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardMap":
        return cls.from_dict(json.loads(text))


def make_shard_map(
    addresses: "list[tuple[str, int]]",
    *,
    version: int = 0,
    index_id_base: int = 910_000,
    index_id_stride: int = 16,
) -> ShardMap:
    """Build a fresh map over ``addresses`` with pinned wire handles.

    Handles are spaced ``index_id_stride`` apart so multi-index schemes
    (SRC-i uploads two EDBs per shard) never collide across shards.
    """
    return ShardMap(
        version,
        tuple(
            ShardSpec(i, host, port, index_id_base + i * index_id_stride)
            for i, (host, port) in enumerate(addresses)
        ),
    )
