"""``ClusterRangeStore`` — live ingest routed across a sharded cluster.

One :class:`~repro.net.NetRangeStore` per shard, glued together by the
same record-id partition the static path uses: every update op lands on
``shard_map.shard_of(op.record_id)``'s managed store, so each node's
LSM forest covers a disjoint record subset and a scatter search merges
by plain union — exactly the single-server answer.

Flushes and searches fan out over a thread pool with the same
traced-scatter discipline as :class:`~repro.cluster.ClusterRouter`:
a ``trace_id`` opens a ``router.scatter`` root span in :attr:`tracer`
with one ``router.shard`` child per contacted shard (submissions run
under a copied ``contextvars`` context, so the children actually attach
to the root instead of vanishing with the pool thread's empty context).
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from repro.cluster.topology import ShardMap
from repro.core.scheme import QueryOutcome
from repro.net.store import NetRangeStore
from repro.obs.tracing import TraceBuffer, span, start_trace
from repro.updates.batch import UpdateOp


class ClusterRangeStore:
    """Owner endpoint for dynamic data over a sharded deployment.

    Parameters mirror :class:`~repro.net.NetRangeStore`; every shard
    opens an identically-parameterized managed store on its node, at
    the pinned handle ``spec.index_id + handle_offset`` (offset keeps
    live stores clear of the classic static EDB handles the same nodes
    may also host — handles are striped 16 apart in
    :func:`~repro.cluster.topology.make_shard_map`).
    """

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        domain_size: int,
        scheme: str = "logarithmic-src-i",
        schemes: "Sequence[str] | None" = None,
        consolidation_step: int = 4,
        handle_offset: int = 8,
        transport_factory=None,
        pool_size: int = 2,
        timeout_s: float = 30.0,
        ssl=None,
    ) -> None:
        self.shard_map = shard_map
        self.domain_size = domain_size
        self._store_kwargs = {
            "domain_size": domain_size,
            "scheme": scheme,
            "schemes": tuple(schemes) if schemes is not None else None,
            "consolidation_step": consolidation_step,
        }
        self.handle_offset = handle_offset
        self._transport_factory = transport_factory
        self._net_kwargs = {
            "pool_size": pool_size,
            "timeout_s": timeout_s,
            "ssl": ssl,
        }
        self._stores: "list[NetRangeStore | None]" = [None] * len(shard_map)
        #: One ``router.scatter`` root span per traced flush/search.
        self.tracer = TraceBuffer()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(shard_map)),
            thread_name_prefix="rsse-cluster-store",
        )
        self._closed = False

    # -- shards --------------------------------------------------------------

    def _store(self, shard: int) -> NetRangeStore:
        store = self._stores[shard]
        if store is not None:
            return store
        spec = self.shard_map.shards[shard]
        kwargs = dict(self._store_kwargs)
        kwargs["index_id"] = spec.index_id + self.handle_offset
        if self._transport_factory is not None:
            store = NetRangeStore(self._transport_factory(spec), **kwargs)
        else:
            store = NetRangeStore.connect(
                spec.host,
                spec.port,
                transport_kwargs=dict(self._net_kwargs),
                **kwargs,
            )
        self._stores[shard] = store
        return store

    def _submit(self, fn, *args):
        # Fresh context per future: keeps the active-trace ContextVar
        # alive inside pool threads (one Context is single-entry).
        ctx = contextvars.copy_context()
        return self._pool.submit(ctx.run, fn, *args)

    # -- writes --------------------------------------------------------------

    def insert(self, record_id: int, value: int) -> None:
        """Buffer an insertion on the shard owning ``record_id``."""
        self._store(self.shard_map.shard_of(record_id)).insert(record_id, value)

    def delete(self, record_id: int, value: int) -> None:
        """Buffer a deletion tombstone on the owning shard."""
        self._store(self.shard_map.shard_of(record_id)).delete(record_id, value)

    def insert_many(self, records: "Iterable[tuple[int, int]]") -> None:
        for record_id, value in records:
            self.insert(record_id, value)

    def apply_ops(self, ops: "Iterable[UpdateOp]") -> None:
        """Buffer materialized ops, each routed to its owning shard."""
        for op in ops:
            self._store(self.shard_map.shard_of(op.record_id))._buffer(op)

    def flush(self, *, trace_id: "str | None" = None) -> None:
        """Ship every shard's buffered ops, all shards in flight at once."""

        def shard_flush(shard: int) -> None:
            with span("router.shard", shard=shard):
                self._stores[shard].flush(trace_id=trace_id)

        def scatter() -> None:
            futures = [
                self._submit(shard_flush, shard)
                for shard, store in enumerate(self._stores)
                if store is not None and store.pending_ops
            ]
            for future in futures:
                future.result()

        dirty = sum(
            1 for s in self._stores if s is not None and s.pending_ops
        )
        if trace_id is None or not dirty:
            scatter()
            return
        with start_trace(
            trace_id, self.tracer, "router.scatter", shards=dirty, kind="flush"
        ):
            scatter()

    # -- reads ---------------------------------------------------------------

    def search(
        self, lo: int, hi: int, *, trace_id: "str | None" = None
    ) -> QueryOutcome:
        """Exact range query across every shard (union of disjoint sets).

        All shards are contacted — values give no routing signal, only
        record ids do — and the merged outcome aggregates the wire
        accounting; ``rounds`` reports the widest per-shard LSM fan-out.
        """
        self.flush(trace_id=trace_id)

        def shard_search(shard: int) -> QueryOutcome:
            with span("router.shard", shard=shard):
                return self._store(shard).search(lo, hi, trace_id=trace_id)

        def scatter() -> "list[QueryOutcome]":
            futures = [
                self._submit(shard_search, shard)
                for shard in range(len(self.shard_map))
            ]
            return [future.result() for future in futures]

        if trace_id is None:
            outcomes = scatter()
        else:
            with start_trace(
                trace_id,
                self.tracer,
                "router.scatter",
                shards=len(self.shard_map),
                kind="store-search",
            ):
                outcomes = scatter()
        ids = frozenset().union(*(o.ids for o in outcomes))
        return QueryOutcome(
            ids=ids,
            raw_ids=tuple(sorted(ids)),
            false_positives=0,
            token_bytes=sum(o.token_bytes for o in outcomes),
            rounds=max(o.rounds for o in outcomes),
            trapdoor_seconds=0.0,
            server_seconds=max(o.server_seconds for o in outcomes),
            response_bytes=sum(o.response_bytes for o in outcomes),
            scheme_chosen=outcomes[0].scheme_chosen,
        )

    query = search

    @property
    def pending_ops(self) -> int:
        """Ops buffered client-side across all shards."""
        return sum(s.pending_ops for s in self._stores if s is not None)

    # -- lifecycle -----------------------------------------------------------

    def drop(self) -> None:
        """Retire every shard's managed store."""
        for shard in range(len(self.shard_map)):
            self._store(shard).drop()

    def close(self) -> None:
        """Close every dialed shard store and the scatter pool."""
        if self._closed:
            return
        self._closed = True
        for store in self._stores:
            if store is not None:
                store.close()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterRangeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
