"""Sharded cluster layer: N net servers behind one scatter-gather router.

The scale-out face of the repo: records partition by id over N
independent :class:`~repro.net.RsseNetServer` nodes (each a complete
index under its own keys — see :mod:`repro.cluster.topology` for why
label striping is off the table), and :class:`ClusterRouter` is the
owner's single endpoint that scatters query batches, retries failed
shards with bounded backoff, merges answers back into the single-server
result contract, and aggregates per-shard stats into a cluster health
view.  :mod:`repro.cluster.bootstrap` replays owner snapshots onto
replacement nodes; topology changes travel as versioned
:class:`ShardMap` documents.

Quickstart::

    from repro.cluster import ClusterRouter, make_shard_map
    from repro.core.registry import make_scheme
    from repro.net import serve_in_thread

    servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
    shard_map = make_shard_map([(s.host, s.port) for s in servers])
    router = ClusterRouter(
        [make_scheme("logarithmic-brc", 1 << 16) for _ in servers],
        shard_map,
    )
    router.outsource([(i, i * 37 % (1 << 16)) for i in range(100)])
    print(router.query(1000, 5000))
"""

from repro.cluster.bootstrap import bootstrap_shard, shard_snapshot_path
from repro.cluster.health import render_health, summarize
from repro.cluster.router import ClusterRouter
from repro.cluster.store import ClusterRangeStore
from repro.cluster.topology import ShardMap, ShardSpec, make_shard_map

__all__ = [
    "ClusterRangeStore",
    "ClusterRouter",
    "ShardMap",
    "ShardSpec",
    "bootstrap_shard",
    "make_shard_map",
    "render_health",
    "shard_snapshot_path",
    "summarize",
]
