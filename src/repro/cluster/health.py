"""Cluster health: aggregate N per-shard stats replies into one view.

Each shard's :class:`~repro.net.RsseNetServer` already answers a merged
stats document (``{"server": core counters, "net": transport
counters}``); this module rolls those up into the operator's cluster
view — totals across reachable shards, a fleet-weighted exec-cache hit
rate, per-index inflight depths, and an explicit list of unreachable
shards.  Pure data-in/data-out: the router collects, this summarizes,
the CLI renders.

PR 10 adds the alert half: :func:`rollup_alerts` merges the per-shard
SLO evaluations of a :class:`~repro.obs.slo.FleetSlos` into one fleet
alert table (worst state wins per objective, attributed to the shard
burning hottest), and :func:`render_alerts` prints it for ``cli.py
top`` / ``cli.py alerts``.
"""

from __future__ import annotations

from repro.cluster.topology import ShardMap
from repro.obs.monitor import fit_cell, fit_num
from repro.obs.slo import STATE_LEVELS, STATE_OK, worst_state

#: Transport counters summed across reachable shards.
_NET_TOTALS = (
    "connections_total",
    "connections_open",
    "frames_in",
    "frames_out",
    "bytes_in",
    "bytes_out",
    "errors",
    "framing_errors",
)

#: Core-server counters summed across reachable shards.
_SERVER_TOTALS = ("handles", "indexes", "stored_bytes")

#: Crypto-kernel counters summed across reachable shards.
_KERNEL_TOTALS = ("batches_offloaded", "batches_serial", "serial_fallbacks")


def summarize(shard_map: ShardMap, probes: "list[dict]") -> dict:
    """Merge per-shard probe results into the cluster health document.

    ``probes`` is one entry per shard, in shard order:
    ``{"reachable": True, "stats": <stats reply>}`` or
    ``{"reachable": False, "error": <str>}``.
    """
    shards = []
    totals = {key: 0 for key in _NET_TOTALS + _SERVER_TOTALS + _KERNEL_TOTALS}
    cache_hits = 0
    cache_lookups = 0
    unreachable = []
    for spec, probe in zip(shard_map.shards, probes):
        entry = {
            "shard": spec.shard,
            "address": f"{spec.host}:{spec.port}",
            "reachable": bool(probe.get("reachable")),
        }
        if not entry["reachable"]:
            entry["error"] = probe.get("error", "unreachable")
            unreachable.append(spec.shard)
            shards.append(entry)
            continue
        stats = probe.get("stats", {})
        net = stats.get("net", {})
        server = stats.get("server", {})
        for key in _NET_TOTALS:
            totals[key] += int(net.get(key, 0))
        for key in _SERVER_TOTALS:
            totals[key] += int(server.get(key, 0))
        cache = server.get("exec_cache")
        if cache:
            cache_hits += int(cache.get("hits", 0))
            cache_lookups += int(cache.get("hits", 0)) + int(
                cache.get("misses", 0)
            )
        kernel = server.get("crypto_kernel")
        if kernel:
            for key in _KERNEL_TOTALS:
                totals[key] += int(kernel.get(key, 0))
        ops = net.get("ops", {})
        # Tail latency of the query-serving op (PR-8 histograms): the
        # single number a fleet operator scans first.
        search_op = ops.get("multi-search") or ops.get("search") or {}
        entry.update(
            label=net.get("shard", ""),
            stored_bytes=int(server.get("stored_bytes", 0)),
            frames_in=int(net.get("frames_in", 0)),
            errors=int(net.get("errors", 0)),
            inflight_by_index=net.get("inflight_by_index", {}),
            exec_cache=cache,
            crypto_kernel=kernel,
            ops=ops,
            search_p99_ms=1e3 * float(search_op.get("p99_seconds", 0.0)),
        )
        shards.append(entry)
    kernel_batches = totals["batches_offloaded"] + totals["batches_serial"]
    return {
        "topology_version": shard_map.version,
        "shard_count": len(shard_map),
        "reachable": len(shard_map) - len(unreachable),
        "unreachable_shards": unreachable,
        "totals": totals,
        # Fleet-weighted: shards answering more lookups weigh more —
        # the number capacity planning actually wants, as opposed to a
        # mean of per-shard ratios.
        "exec_cache_hit_rate": (
            cache_hits / cache_lookups if cache_lookups else 0.0
        ),
        # Same weighting for the crypto kernel: the fraction of all
        # batched crypto work fleet-wide that escaped the GIL onto
        # worker lanes.  A pooled fleet showing ~0 here is serving
        # batches too small to clear the crossover — a tuning signal,
        # not an error; nonzero serial_fallbacks means worker lanes
        # are dying and queries are completing on the slow path.
        "kernel_offload_ratio": (
            totals["batches_offloaded"] / kernel_batches if kernel_batches else 0.0
        ),
        "shards": shards,
    }


def render_health(health: dict) -> str:
    """Human-readable health table (the ``cluster`` CLI's output)."""
    totals = health["totals"]
    summary = (
        f"cluster topology v{health['topology_version']}: "
        f"{health['reachable']}/{health['shard_count']} shards reachable, "
        f"{totals['stored_bytes']} bytes stored, "
        f"{totals['frames_in']} frames served, "
        f"exec-cache hit rate {health['exec_cache_hit_rate']:.1%}, "
        f"kernel offload {health.get('kernel_offload_ratio', 0.0):.1%}"
    )
    fallbacks = totals.get("serial_fallbacks", 0)
    if fallbacks:
        summary += f" ({fallbacks} serial fallbacks)"
    lines = [summary]
    header = f"{'shard':>5}  {'address':<21} {'state':<7} {'stored B':>10} {'frames':>8} {'errors':>7} {'p99 ms':>7} {'kernel':>9}  busiest index"
    lines.append(header)
    lines.append("-" * len(header))
    for entry in health["shards"]:
        if not entry["reachable"]:
            lines.append(
                f"{fit_cell(entry['shard'], 5, '>')}  "
                f"{fit_cell(entry['address'], 21)} "
                f"{'DOWN':<7} {'-':>10} {'-':>8} {'-':>7} {'-':>7} {'-':>9}  {entry['error']}"
            )
            continue
        inflight = entry.get("inflight_by_index", {})
        busiest = ""
        if inflight:
            index_id, depth = max(
                inflight.items(), key=lambda kv: kv[1].get("peak", 0)
            )
            busiest = (
                f"{index_id} (now {depth.get('current', 0)}, "
                f"peak {depth.get('peak', 0)})"
            )
        label = f" [{entry['label']}]" if entry.get("label") else ""
        kernel = entry.get("crypto_kernel") or {}
        if kernel.get("workers"):
            kernel_cell = f"{kernel.get('backend', '?')}x{kernel['workers']}"
            if kernel.get("serial_fallbacks"):
                kernel_cell += "!"
        else:
            kernel_cell = kernel.get("backend", "-")
        lines.append(
            f"{fit_cell(entry['shard'], 5, '>')}  "
            f"{fit_cell(entry['address'], 21)} "
            f"{fit_cell('up' + label, 7)} "
            f"{fit_num(entry['stored_bytes'], 10, 0)} "
            f"{fit_num(entry['frames_in'], 8, 0)} "
            f"{fit_num(entry['errors'], 7, 0)} "
            f"{fit_num(entry.get('search_p99_ms', 0.0), 7, 2)} "
            f"{fit_cell(kernel_cell, 9, '>')}  {busiest}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fleet alert rollup (the SLO half)
# ---------------------------------------------------------------------------


def rollup_alerts(evaluation: dict) -> dict:
    """Merge a :meth:`FleetSlos.evaluate` result into one alert table.

    Per shard-level objective the *worst* state across shards wins
    (ties broken by the higher long-window burn), and the winning
    shard's numbers are carried so the operator sees who is burning;
    fleet-level objectives (unreachable) pass through as-is.  Returns
    ``{"v": 1, "alerts": [...], "worst": <state>}`` — ``"worst"`` is
    what a headless ``alerts --once`` caller turns into an exit code.
    """
    merged: "dict[str, dict]" = {}
    for address, results in evaluation.get("per_shard", {}).items():
        for result in results:
            current = merged.get(result["name"])
            if current is None:
                current = merged[result["name"]] = {
                    **result,
                    "shards": {},
                    "worst_shard": address,
                }
            current["shards"][address] = result["state"]
            level = STATE_LEVELS.get(result["state"], 0)
            best_level = STATE_LEVELS.get(current["state"], 0)
            if level > best_level or (
                level == best_level
                and result["burn_long"] > current["burn_long"]
            ):
                for key in ("state", "burn_long", "burn_short", "value",
                            "samples"):
                    current[key] = result[key]
                current["worst_shard"] = address
    alerts = list(merged.values())
    for result in evaluation.get("fleet", []):
        alerts.append({**result, "shards": {}, "worst_shard": ""})
    return {
        "v": 1,
        "alerts": alerts,
        "worst": worst_state(a["state"] for a in alerts),
    }


def render_alerts(doc: dict) -> str:
    """Human-readable alert lines for one :func:`rollup_alerts` doc."""
    if not doc.get("alerts"):
        return "slo: no objectives configured"
    lines = []
    for alert in doc["alerts"]:
        state = alert["state"].upper()
        if alert["kind"] == "latency":
            detail = (
                f"{alert['metric']} {1e3 * alert['value']:.2f}ms "
                f"vs {1e3 * alert['bound']:.2f}ms bound, "
                f"burn {alert['burn_long']:.2f}/{alert['burn_short']:.2f} "
                f"({alert['samples']} obs)"
            )
        elif alert["kind"] == "error-rate":
            detail = (
                f"error rate {100.0 * alert['value']:.2f}% "
                f"vs {100.0 * alert['bound']:.2f}% bound, "
                f"burn {alert['burn_long']:.2f}/{alert['burn_short']:.2f}"
            )
        else:
            detail = (
                f"{alert['value']:.0f} unreachable "
                f"(bound {alert['bound']:.0f})"
            )
        line = f"[{state:>4}] {alert['name']}: {detail}"
        if alert.get("worst_shard") and alert["state"] != STATE_OK:
            line += f" — worst shard {alert['worst_shard']}"
        lines.append(line)
    return "\n".join(lines)
