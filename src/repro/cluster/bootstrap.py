"""Shard bootstrap: seed a fresh node from an owner snapshot.

The recovery story for a lost shard server:

1. At outsource time the owner wrote one snapshot per shard
   (``ClusterRouter.outsource(snapshot_dir=...)``) — keys plus the
   shard's complete server-side state, captured *before* the upload
   detached local copies.
2. A shard node dies.  The operator brings up an empty replacement
   (``rsse-experiments serve``) anywhere.
3. :func:`bootstrap_shard` loads the shard's snapshot, re-uploads its
   server state to the replacement under the *pinned* wire handles of
   the :class:`~repro.cluster.topology.ShardSpec`, and detaches again.
4. The operator publishes a new :class:`ShardMap` version pointing the
   shard at the replacement; routers pick it up via
   :meth:`~repro.cluster.router.ClusterRouter.apply_topology`.

Keys never travel to any server — the snapshot moves between *owner*
processes (optionally passphrase-wrapped on disk), and the replacement
node receives exactly the ciphertext the dead node held.
"""

from __future__ import annotations

import pathlib

from repro.cluster.topology import ShardSpec
from repro.errors import ClusterError, TransportError


def shard_snapshot_path(snapshot_dir, shard: int) -> pathlib.Path:
    """Canonical per-shard snapshot filename under ``snapshot_dir``."""
    return pathlib.Path(snapshot_dir) / f"shard-{shard:03d}.rsse"


def bootstrap_shard(
    snapshot_file,
    spec: ShardSpec,
    *,
    passphrase: "str | None" = None,
    transport_factory=None,
    pool_size: int = 2,
    timeout_s: float = 30.0,
    ssl=None,
) -> int:
    """Replay one shard's snapshot onto the (fresh) node at ``spec``.

    Loads the owner snapshot, uploads the complete server state to
    ``spec.host:spec.port`` under ``spec.index_id`` — the same handles
    the routers already address, so no router-side change beyond the
    topology bump is needed — and returns the number of records the
    shard now serves.  Raises :class:`ClusterError` when the target
    node cannot be reached or refuses the upload.
    """
    from repro.io.snapshot import load_scheme
    from repro.protocol.client import RemoteRangeClient

    scheme = load_scheme(snapshot_file, passphrase)
    if transport_factory is not None:
        transport = transport_factory(spec)
    else:
        from repro.net import NetTransport

        transport = NetTransport(
            spec.host,
            spec.port,
            pool_size=pool_size,
            timeout_s=timeout_s,
            ssl=ssl,
        )
    try:
        client = RemoteRangeClient(scheme, transport, index_id=spec.index_id)
        client.outsource(records=None)
    except TransportError as exc:
        raise ClusterError(
            f"bootstrap of shard {spec.shard} onto "
            f"{spec.host}:{spec.port} failed: {exc}"
        ) from exc
    finally:
        close = getattr(transport, "close", None)
        if close is not None:
            close()
    return scheme.size
