"""Explicit owner ↔ server wire protocol (the paper's two-party model)."""

from repro.protocol.client import RemoteRangeClient
from repro.protocol.interactive import RemoteConstantClient, RemoteSrcIClient
from repro.protocol.messages import (
    DropIndex,
    FetchPayloads,
    FetchRequest,
    FetchResponse,
    PayloadResponse,
    SearchRequest,
    SearchResponse,
    UploadIndex,
    UploadPayloads,
    UploadRecords,
    parse_frame,
    parse_message,
)
from repro.protocol.server import RsseServer

__all__ = [
    "DropIndex",
    "FetchPayloads",
    "FetchRequest",
    "FetchResponse",
    "PayloadResponse",
    "RemoteConstantClient",
    "RemoteRangeClient",
    "RemoteSrcIClient",
    "RsseServer",
    "SearchRequest",
    "SearchResponse",
    "UploadIndex",
    "UploadPayloads",
    "UploadRecords",
    "parse_frame",
    "parse_message",
]
