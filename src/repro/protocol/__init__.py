"""Explicit owner ↔ server wire protocol (the paper's two-party model)."""

from repro.protocol.client import RemoteRangeClient
from repro.protocol.interactive import RemoteConstantClient, RemoteSrcIClient
from repro.protocol.messages import (
    DropIndex,
    FetchRequest,
    FetchResponse,
    SearchRequest,
    SearchResponse,
    UploadIndex,
    UploadRecords,
    parse_frame,
    parse_message,
)
from repro.protocol.server import RsseServer

__all__ = [
    "DropIndex",
    "FetchRequest",
    "FetchResponse",
    "RemoteConstantClient",
    "RemoteRangeClient",
    "RemoteSrcIClient",
    "RsseServer",
    "SearchRequest",
    "SearchResponse",
    "UploadIndex",
    "UploadRecords",
    "parse_frame",
    "parse_message",
]
