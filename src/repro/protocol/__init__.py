"""Explicit owner ↔ server wire protocol (the paper's two-party model)."""

from repro.protocol.client import RemoteRangeClient
from repro.protocol.interactive import RemoteConstantClient, RemoteSrcIClient
from repro.protocol.messages import (
    DropIndex,
    ErrorResponse,
    FetchPayloads,
    FetchRequest,
    FetchResponse,
    OkResponse,
    PayloadResponse,
    SearchRequest,
    SearchResponse,
    StatsRequest,
    StatsResponse,
    UploadIndex,
    UploadPayloads,
    UploadRecords,
    parse_frame,
    parse_message,
    parse_reply,
)
from repro.protocol.server import RsseServer

__all__ = [
    "DropIndex",
    "ErrorResponse",
    "FetchPayloads",
    "FetchRequest",
    "FetchResponse",
    "OkResponse",
    "PayloadResponse",
    "RemoteConstantClient",
    "RemoteRangeClient",
    "RemoteSrcIClient",
    "RsseServer",
    "SearchRequest",
    "SearchResponse",
    "StatsRequest",
    "StatsResponse",
    "UploadIndex",
    "UploadPayloads",
    "UploadRecords",
    "parse_frame",
    "parse_message",
    "parse_reply",
]
