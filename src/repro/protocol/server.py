"""The untrusted server: stores EDBs and ciphertexts, answers tokens.

This class enforces the paper's trust boundary structurally: it is
constructed with *no* arguments — everything it ever knows arrived in a
protocol frame.  It holds encrypted indexes (opaque label → ciphertext
dictionaries), encrypted tuple stores, and evaluates searches from
tokens alone.  Its search logic is deliberately key-free:

- SSE tokens: walk the per-keyword counter chain exactly as
  :class:`~repro.sse.pibas.PiBas` prescribes (label derivation from the
  token's label key is public);
- DPRF tokens: expand GGM seeds with the public ``G`` and re-derive the
  per-keyword tokens from leaf values, the Constant-scheme contract.
"""

from __future__ import annotations

from repro.crypto.dprf import DelegationToken, GgmDprf
from repro.errors import IndexStateError, TokenError
from repro.protocol import messages as msg
from repro.sse.base import SUBKEY_LEN, EncryptedIndex, KeywordToken, token_from_secret
from repro.sse.pibas import search as pibas_search


def _keyword_token(raw: bytes) -> KeywordToken:
    if len(raw) != 2 * SUBKEY_LEN:
        raise TokenError(f"SSE wire token must be {2 * SUBKEY_LEN} bytes")
    return KeywordToken(raw[:SUBKEY_LEN], raw[SUBKEY_LEN:])


def _delegation_token(raw: bytes) -> DelegationToken:
    if len(raw) < 2:
        raise TokenError("DPRF wire token too short")
    return DelegationToken(raw[:-1], raw[-1])


class RsseServer:
    """In-process model of the untrusted storage/search server."""

    def __init__(self) -> None:
        self._indexes: dict[int, EncryptedIndex] = {}
        self._records: dict[int, dict[int, bytes]] = {}

    # -- message dispatch -----------------------------------------------------

    def handle(self, frame: bytes) -> "bytes | None":
        """Process one protocol frame, returning a response frame or None."""
        message = msg.parse_message(frame)
        if isinstance(message, msg.UploadIndex):
            self._indexes[message.index_id] = EncryptedIndex.from_bytes(
                message.edb_bytes
            )
            self._records.setdefault(message.index_id, {})
            return None
        if isinstance(message, msg.UploadRecords):
            store = self._records.setdefault(message.index_id, {})
            for rid, blob in message.entries:
                store[rid] = blob
            return None
        if isinstance(message, msg.SearchRequest):
            return self._search(message).to_frame()
        if isinstance(message, msg.FetchRequest):
            return self._fetch(message).to_frame()
        if isinstance(message, msg.DropIndex):
            self._indexes.pop(message.index_id, None)
            self._records.pop(message.index_id, None)
            return None
        raise TokenError(f"server cannot handle {type(message).__name__}")

    # -- operations -------------------------------------------------------------

    def _index_for(self, index_id: int) -> EncryptedIndex:
        index = self._indexes.get(index_id)
        if index is None:
            raise IndexStateError(f"unknown index handle {index_id}")
        return index

    def _search(self, request: msg.SearchRequest) -> msg.SearchResponse:
        index = self._index_for(request.index_id)
        payloads: list[bytes] = []
        if request.kind == "sse":
            for raw in request.tokens:
                payloads.extend(pibas_search(index, _keyword_token(raw)))
        else:
            for raw in request.tokens:
                for leaf in GgmDprf.expand_token(_delegation_token(raw)):
                    payloads.extend(
                        pibas_search(index, token_from_secret(leaf))
                    )
        return msg.SearchResponse(payloads)

    def _fetch(self, request: msg.FetchRequest) -> msg.FetchResponse:
        store = self._records.get(request.index_id)
        if store is None:
            raise IndexStateError(f"unknown index handle {request.index_id}")
        blobs = []
        for rid in request.record_ids:
            blob = store.get(rid)
            if blob is None:
                raise IndexStateError(f"unknown record id {rid}")
            blobs.append(blob)
        return msg.FetchResponse(blobs)

    # -- introspection (what an adversary can tally) -----------------------------

    def stored_bytes(self) -> int:
        """Total bytes at rest — the honest-but-curious server's view."""
        total = sum(idx.serialized_size() for idx in self._indexes.values())
        for store in self._records.values():
            total += sum(8 + len(blob) for blob in store.values())
        return total

    def index_count(self) -> int:
        """Number of live index handles."""
        return len(self._indexes)
