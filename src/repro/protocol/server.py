"""The untrusted server: stores EDBs and ciphertexts, answers tokens.

This class enforces the paper's trust boundary structurally: it is
constructed with *no* owner data — everything it ever knows arrived in a
protocol frame.  Each index handle is hosted as its own
:class:`~repro.core.split.EncryptedDatabase` (encrypted index, encrypted
tuples, encrypted payloads), all persisting through one pluggable
:class:`~repro.storage.StorageBackend`.  Its search logic is
deliberately key-free:

- SSE tokens: walk the per-keyword counter chain exactly as
  :class:`~repro.sse.pibas.PiBas` prescribes (label derivation from the
  token's label key is public);
- DPRF tokens: expand GGM seeds with the public ``G`` and re-derive the
  per-keyword tokens from leaf values, the Constant-scheme contract.

With a persistent backend (:class:`~repro.storage.SqliteBackend`, or a
:class:`~repro.storage.ShardedBackend` striping labels over nodes) the
server rehydrates all live handles on construction — restartable
storage with zero owner involvement.
"""

from __future__ import annotations

from repro.core.split import EncryptedDatabase
from repro.crypto.dprf import DelegationToken
from repro.errors import IndexStateError, TokenError
from repro.protocol import messages as msg
from repro.sse.base import SUBKEY_LEN, EncryptedIndex, KeywordToken
from repro.storage.backend import InMemoryBackend, PrefixedBackend, StorageBackend

#: Backend namespace recording the live index handles.
_HANDLES_NS = "server/handles"


def _keyword_token(raw: bytes) -> KeywordToken:
    if len(raw) != 2 * SUBKEY_LEN:
        raise TokenError(f"SSE wire token must be {2 * SUBKEY_LEN} bytes")
    return KeywordToken(raw[:SUBKEY_LEN], raw[SUBKEY_LEN:])


def _delegation_token(raw: bytes) -> DelegationToken:
    if len(raw) < 2:
        raise TokenError("DPRF wire token too short")
    return DelegationToken(raw[:-1], raw[-1])


class RsseServer:
    """The untrusted storage/search server (in-process transport model).

    Parameters
    ----------
    backend:
        Where all uploaded state lives.  In-memory when omitted; pass a
        :class:`~repro.storage.SqliteBackend` for restart-durable
        storage or a :class:`~repro.storage.ShardedBackend` to stripe
        EDB labels across sub-stores.  Handles present in a persistent
        backend are rehydrated automatically.
    """

    def __init__(self, backend: "StorageBackend | None" = None) -> None:
        self._backend = backend if backend is not None else InMemoryBackend()
        self._databases: dict[int, EncryptedDatabase] = {}
        for key in self._backend.keys(_HANDLES_NS):
            index_id = int.from_bytes(key, "big")
            self._databases[index_id] = self._make_db(index_id)

    def _make_db(self, index_id: int) -> EncryptedDatabase:
        return EncryptedDatabase(
            PrefixedBackend(self._backend, f"h{index_id}/")
        )

    def _db(self, index_id: int, *, create: bool = False) -> EncryptedDatabase:
        db = self._databases.get(index_id)
        if db is None:
            if not create:
                raise IndexStateError(f"unknown index handle {index_id}")
            db = self._make_db(index_id)
            self._databases[index_id] = db
            self._backend.put(_HANDLES_NS, index_id.to_bytes(8, "big"), b"\x01")
        return db

    # -- message dispatch -----------------------------------------------------

    def handle(self, frame: bytes) -> "bytes | None":
        """Process one protocol frame, returning a response frame or None."""
        message = msg.parse_message(frame)
        if isinstance(message, msg.UploadIndex):
            self._db(message.index_id, create=True).put_index(
                "edb", EncryptedIndex.from_bytes(message.edb_bytes)
            )
            return None
        if isinstance(message, msg.UploadRecords):
            # One bulk write per upload frame — a SQLite-backed server
            # pays one transaction, not one autocommit per record.
            self._db(message.index_id, create=True).put_tuples(message.entries)
            return None
        if isinstance(message, msg.UploadPayloads):
            self._db(message.index_id, create=True).put_payloads(message.entries)
            return None
        if isinstance(message, msg.SearchRequest):
            return self._search(message).to_frame()
        if isinstance(message, msg.FetchRequest):
            return self._fetch(message).to_frame()
        if isinstance(message, msg.FetchPayloads):
            db = self._db(message.index_id)
            return msg.PayloadResponse(
                db.fetch_payloads(message.record_ids)
            ).to_frame()
        if isinstance(message, msg.DropIndex):
            db = self._databases.pop(message.index_id, None)
            if db is not None:
                db.clear()
            self._backend.delete(_HANDLES_NS, message.index_id.to_bytes(8, "big"))
            return None
        raise TokenError(f"server cannot handle {type(message).__name__}")

    # -- operations -------------------------------------------------------------

    def _search(self, request: msg.SearchRequest) -> msg.SearchResponse:
        db = self._db(request.index_id)
        if db.get_index("edb") is None:
            raise IndexStateError(f"unknown index handle {request.index_id}")
        if request.kind == "sse":
            # One index resolution for the whole token batch.
            payloads = db.sse_search_many(
                "edb", [_keyword_token(raw) for raw in request.tokens]
            )
        else:
            payloads = db.dprf_search(
                "edb", [_delegation_token(raw) for raw in request.tokens]
            )
        return msg.SearchResponse(payloads)

    def _fetch(self, request: msg.FetchRequest) -> msg.FetchResponse:
        # fetch_tuples reports *all* missing ids at once, so a client
        # retrying after a partial upload learns the complete gap.
        return msg.FetchResponse(
            self._db(request.index_id).fetch_tuples(request.record_ids)
        )

    # -- introspection (what an adversary can tally) -----------------------------

    def stored_bytes(self) -> int:
        """Total bytes at rest — the honest-but-curious server's view."""
        return sum(db.stored_bytes() for db in self._databases.values())

    def index_count(self) -> int:
        """Number of live handles holding an encrypted index."""
        return sum(
            1 for db in self._databases.values() if db.get_index("edb") is not None
        )
