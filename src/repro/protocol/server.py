"""The untrusted server: stores EDBs and ciphertexts, answers tokens.

This class enforces the paper's trust boundary structurally: it is
constructed with *no* owner data — everything it ever knows arrived in a
protocol frame.  Each index handle is hosted as its own
:class:`~repro.core.split.EncryptedDatabase` (encrypted index, encrypted
tuples, encrypted payloads), all persisting through one pluggable
:class:`~repro.storage.StorageBackend`.  Its search logic is
deliberately key-free:

- SSE tokens: walk the per-keyword counter chain exactly as
  :class:`~repro.sse.pibas.PiBas` prescribes (label derivation from the
  token's label key is public);
- DPRF tokens: expand GGM seeds with the public ``G`` and re-derive the
  per-keyword tokens from leaf values, the Constant-scheme contract.

With a persistent backend (:class:`~repro.storage.SqliteBackend`, or a
:class:`~repro.storage.ShardedBackend` striping labels over nodes) the
server rehydrates all live handles on construction — restartable
storage with zero owner involvement.
"""

from __future__ import annotations

import contextlib
import time

from repro.core.split import EncryptedDatabase
from repro.crypto.dprf import DelegationToken
from repro.errors import IndexStateError, ReproError, TokenError
from repro.exec.dispatch import HINT_AUTO, normalize_hint
from repro.obs.events import EventLog
from repro.obs.registry import default_registry, metrics_payload
from repro.obs.tracing import (
    FlightRecorder,
    TraceBuffer,
    TraceSampler,
    new_trace_id,
    start_trace,
)
from repro.protocol import messages as msg
from repro.sse.base import SUBKEY_LEN, EncryptedIndex, KeywordToken
from repro.storage.backend import InMemoryBackend, PrefixedBackend, StorageBackend
from repro.updates.batch import UpdateOp

#: Backend namespace recording the live index handles.
_HANDLES_NS = "server/handles"


def _keyword_token(raw: bytes) -> KeywordToken:
    if len(raw) != 2 * SUBKEY_LEN:
        raise TokenError(f"SSE wire token must be {2 * SUBKEY_LEN} bytes")
    return KeywordToken(raw[:SUBKEY_LEN], raw[SUBKEY_LEN:])


def _delegation_token(raw: bytes) -> DelegationToken:
    if len(raw) < 2:
        raise TokenError("DPRF wire token too short")
    return DelegationToken(raw[:-1], raw[-1])


class RsseServer:
    """The untrusted storage/search server (in-process transport model).

    Parameters
    ----------
    backend:
        Where all uploaded state lives.  In-memory when omitted; pass a
        :class:`~repro.storage.SqliteBackend` for restart-durable
        storage or a :class:`~repro.storage.ShardedBackend` to stripe
        EDB labels across sub-stores.  Handles present in a persistent
        backend are rehydrated automatically.
    executor:
        Optional :class:`~repro.exec.QueryExecutor` every hosted
        database searches through (token walks coalesced, GGM
        expansions pooled and cached).  The process-wide default engine
        when omitted.
    trace_sampler:
        Optional :class:`~repro.obs.TraceSampler` — when active, each
        trace-less query frame gets a per-query coin flip and winners
        are traced under a server-minted id.  Defaults to the
        ``REPRO_TRACE_SAMPLE`` environment knob (off when unset).
    flight:
        Optional :class:`~repro.obs.FlightRecorder` — when armed,
        every query collects spans and those breaching the slow bar
        are force-retained in the recorder's ring even if sampling
        would have dropped them.  Defaults to the ``REPRO_SLOW_MS`` /
        ``REPRO_SLOW_P99X`` environment knobs (unarmed when unset).
    events:
        Optional :class:`~repro.obs.EventLog` receiving lifecycle
        events (store open/drop, consolidation, slow-query captures).
        A fresh in-memory log (plus the ``REPRO_EVENT_LOG`` file sink
        when set) when omitted.
    """

    def __init__(
        self,
        backend: "StorageBackend | None" = None,
        *,
        executor=None,
        trace_sampler: "TraceSampler | None" = None,
        flight: "FlightRecorder | None" = None,
        events: "EventLog | None" = None,
    ) -> None:
        self._backend = backend if backend is not None else InMemoryBackend()
        if executor is None:
            from repro.exec.engine import default_executor

            executor = default_executor()
        self.executor = executor
        #: Tally of (normalized) dispatcher hints seen on multi-search
        #: frames — the capacity signal a hybrid owner's cost dispatcher
        #: exposes to the operator.  Unknown/garbage hints count as
        #: "auto"; they never fail a batch.
        self.dispatch_hints: "dict[str, int]" = {}
        self.last_dispatch_hint = HINT_AUTO
        #: Ring buffer of finished query traces (one per server, so an
        #: in-thread multi-shard cluster keeps per-shard trace streams).
        #: Filled only for frames that carry a trace id.
        self.tracer = TraceBuffer()
        #: Managed live stores (the dynamic-data tier): index handle →
        #: server-hosted :class:`~repro.rangestore.RangeStore` or
        #: :class:`~repro.rangestore.HybridRangeStore`, created by
        #: :class:`~repro.protocol.messages.StoreOpenRequest` frames.
        self._stores: dict[int, object] = {}
        self._store_specs: "dict[int, tuple]" = {}
        self._store_consolidations: "dict[int, int]" = {}
        #: Registry the ``updates.*`` instruments land in.  ``None``
        #: means "the process-wide default"; the network layer points
        #: this at its per-server :class:`~repro.obs.MetricsRegistry`
        #: so two in-thread shard servers keep distinct counters.
        self.metrics_registry = None
        #: The active observability trio (PR 10).  The sampler decides
        #: which trace-less queries get traced anyway; the flight
        #: recorder force-retains queries that breach the slow bar; the
        #: event log narrates lifecycle changes.  All default from
        #: environment knobs, and registry hooks late-bind through
        #: :meth:`_registry` so the network layer's per-server registry
        #: swap is honored.
        self.trace_sampler = (
            trace_sampler if trace_sampler is not None else TraceSampler()
        )
        self.flight = flight if flight is not None else FlightRecorder()
        if self.flight.registry is None:
            self.flight.registry = self._registry
        if self.flight.on_capture is None:
            self.flight.on_capture = self._on_slow_capture
        self.events = events if events is not None else EventLog()
        if self.events.registry is None:
            self.events.registry = self._registry
        self._databases: dict[int, EncryptedDatabase] = {}
        for key in self._backend.keys(_HANDLES_NS):
            index_id = int.from_bytes(key, "big")
            self._databases[index_id] = self._make_db(index_id)

    def _make_db(self, index_id: int) -> EncryptedDatabase:
        return EncryptedDatabase(
            PrefixedBackend(self._backend, f"h{index_id}/"),
            executor=self.executor,
        )

    def _db(self, index_id: int, *, create: bool = False) -> EncryptedDatabase:
        db = self._databases.get(index_id)
        if db is None:
            if not create:
                raise IndexStateError(f"unknown index handle {index_id}")
            db = self._make_db(index_id)
            self._databases[index_id] = db
            self._backend.put(_HANDLES_NS, index_id.to_bytes(8, "big"), b"\x01")
        return db

    # -- message dispatch -----------------------------------------------------

    def handle(self, frame: bytes) -> "bytes | None":
        """Process one protocol frame, returning a response frame or None.

        Write-style requests (uploads, drops) answer ``None`` —
        in-process callers treat the call returning as the ack.  A frame
        that cannot even be decoded, or whose message type a server
        never handles, answers a typed
        :class:`~repro.protocol.messages.ErrorResponse` instead of
        raising: an undecodable frame is *peer input*, not a local
        programming error, and a transport that forwards the reply
        keeps its client from hanging on a response that would
        otherwise never come.  Semantic failures on well-formed
        requests (unknown handle, malformed token) still raise — see
        :meth:`handle_request` for the total, always-answers variant
        the network layer uses.
        """
        try:
            message = msg.parse_message(frame)
        except ReproError as exc:
            return msg.ErrorResponse.from_exception(exc).to_frame()
        if isinstance(message, msg.UploadIndex):
            self._db(message.index_id, create=True).put_index(
                "edb", EncryptedIndex.from_bytes(message.edb_bytes)
            )
            return None
        if isinstance(message, msg.UploadRecords):
            # One bulk write per upload frame — a SQLite-backed server
            # pays one transaction, not one autocommit per record.
            self._db(message.index_id, create=True).put_tuples(message.entries)
            return None
        if isinstance(message, msg.UploadPayloads):
            self._db(message.index_id, create=True).put_payloads(message.entries)
            return None
        if isinstance(message, msg.SearchRequest):
            return self._search(message).to_frame()
        if isinstance(message, msg.MultiSearchRequest):
            return self._multi_search(message).to_frame()
        if isinstance(message, msg.FetchRequest):
            return self._fetch(message).to_frame()
        if isinstance(message, msg.FetchPayloads):
            db = self._db(message.index_id)
            return msg.PayloadResponse(
                db.fetch_payloads(message.record_ids)
            ).to_frame()
        if isinstance(message, msg.StoreOpenRequest):
            self._store_open(message)
            return None
        if isinstance(message, msg.UpdateRequest):
            self._apply_updates(message.index_id, (message.op,))
            return None
        if isinstance(message, msg.UpdateBatchRequest):
            self._apply_updates(
                message.index_id, message.ops, trace=message.trace
            )
            return None
        if isinstance(message, msg.StoreSearchRequest):
            return self._store_search(message).to_frame()
        if isinstance(message, msg.DropIndex):
            self._drop_store(message.index_id)
            db = self._databases.pop(message.index_id, None)
            if db is not None:
                db.clear()
            self._backend.delete(_HANDLES_NS, message.index_id.to_bytes(8, "big"))
            return None
        if isinstance(message, msg.StatsRequest):
            # Nested under "server" so the network layer can merge its
            # transport counters beside it under the same frame pair.
            return msg.StatsResponse({"server": self.stats_dict()}).to_frame()
        if isinstance(message, msg.MetricsRequest):
            # In-process callers get the process-wide registry; the
            # network layer intercepts this tag earlier and answers
            # from its per-server registry instead.
            return msg.MetricsResponse(
                metrics_payload(
                    default_registry(),
                    self.tracer,
                    since=message.since,
                    max_traces=message.max_traces,
                    boot=message.boot,
                    recorder=self.flight,
                    max_slow=message.max_slow,
                )
            ).to_frame()
        # Response-typed messages (and anything a future revision adds)
        # are not requests this server answers — say so, don't raise:
        # over a socket the sender is a peer, not a caller.
        return msg.ErrorResponse(
            "token", f"server cannot handle {type(message).__name__}"
        ).to_frame()

    def handle_request(self, frame: bytes) -> bytes:
        """Total version of :meth:`handle`: every request gets a reply.

        The network server's entry point.  Successful writes answer
        :class:`~repro.protocol.messages.OkResponse`; any library error
        — semantic or parse-level — answers a typed
        :class:`~repro.protocol.messages.ErrorResponse`.  Only
        non-library exceptions (genuine bugs) propagate.
        """
        try:
            response = self.handle(frame)
        except ReproError as exc:
            return msg.ErrorResponse.from_exception(exc).to_frame()
        if response is None:
            return msg.OkResponse().to_frame()
        return response

    # -- active observability (sampling + flight recorder) ----------------------

    def _on_slow_capture(self, record: dict) -> None:
        """Default flight-recorder hook: narrate the capture."""
        self.events.emit(
            "slowlog.capture",
            op=record["op"],
            trace_id=record["trace_id"],
            elapsed_ms=round(record["elapsed_s"] * 1e3, 3),
            threshold_ms=round(record["threshold_s"] * 1e3, 3),
        )

    def _observed(self, trace: str, root: str, op: str, **meta):
        """The per-query observation decision, as a context manager or None.

        ``None`` means "run bare" — no explicit trace id, the sampler
        is off (or flipped tails), and the flight recorder is unarmed,
        so the query must not pay even a contextvar set.  Otherwise the
        returned context manager collects spans for the query; they are
        retained in :attr:`tracer` only when explicitly requested or
        sampled, while the flight recorder judges *every* observed
        query — tail-based capture — so a slow query is kept even when
        the sampling coin flip would have dropped it.
        """
        sampler, recorder = self.trace_sampler, self.flight
        if trace:
            return self._observed_cm(trace, True, root, op, meta)
        if not sampler.active and not recorder.armed:
            return None
        sampled = False
        if sampler.active:
            sampled = sampler.decide()
            self._registry().counter(
                "trace.sampled" if sampled else "trace.dropped"
            ).inc()
        if not sampled and not recorder.armed:
            return None
        return self._observed_cm(new_trace_id(), sampled, root, op, meta)

    @contextlib.contextmanager
    def _observed_cm(self, trace_id: str, retain: bool, root: str, op: str, meta):
        buffer = self.tracer if retain else None
        t0 = time.perf_counter()
        state = None
        try:
            with start_trace(trace_id, buffer, root, **meta) as state:
                yield
        finally:
            if state is not None:
                self.flight.consider(
                    op,
                    state,
                    time.perf_counter() - t0,
                    retained=retain,
                    meta=meta,
                )

    # -- operations -------------------------------------------------------------

    def _searchable_db(self, index_id: int) -> EncryptedDatabase:
        db = self._db(index_id)
        if db.get_index("edb") is None:
            raise IndexStateError(f"unknown index handle {index_id}")
        return db

    @staticmethod
    def _run_search(
        db: EncryptedDatabase, kind: str, tokens: "list[bytes]"
    ) -> "list[bytes]":
        """One query's worth of key-free search (shared by the single-
        and multi-search frames — one place decodes tokens and picks
        the engine entry point)."""
        if kind == "sse":
            return db.sse_search_many(
                "edb", [_keyword_token(raw) for raw in tokens]
            )
        return db.dprf_search(
            "edb", [_delegation_token(raw) for raw in tokens]
        )

    def _search(self, request: msg.SearchRequest) -> msg.SearchResponse:
        # The single-search frame carries no trace id, but it is still
        # a query-serving path: the sampler's coin flip and the flight
        # recorder's slow bar apply exactly as for multi-search.
        db = self._searchable_db(request.index_id)

        def run() -> msg.SearchResponse:
            return msg.SearchResponse(
                self._run_search(db, request.kind, request.tokens)
            )

        observed = self._observed(
            "",
            "server.handle",
            "search",
            index_id=request.index_id,
            kind=request.kind,
            tokens=len(request.tokens),
        )
        if observed is None:
            return run()
        with observed:
            return run()

    def _multi_search(self, request: msg.MultiSearchRequest) -> msg.MultiSearchResponse:
        """Execute a whole query batch behind one wire round-trip.

        Every query in the batch runs through the same exec engine as a
        single search; answers keep request order so the client can
        scatter them back to its ranges.  A carried dispatcher hint is
        normalized (garbage degrades to ``"auto"``) and tallied — it is
        advisory observability, never part of the search itself.
        Hint-less frames (legacy clients, continuation rounds of the
        interactive protocol) leave the tally untouched, so each batch
        counts exactly once.

        A carried trace id opens a ``server.handle`` root span for the
        batch: the whole walk runs synchronously on this thread, so the
        engine/kernel/storage spans underneath land in the same trace
        via the ambient contextvar, and the finished trace is ringed in
        :attr:`tracer`.  Trace-less frames face the sampler's coin flip
        and the flight recorder's slow bar instead (:meth:`_observed`);
        with both off they skip all of it.
        """
        if request.hint:
            hint = normalize_hint(request.hint)
            self.dispatch_hints[hint] = self.dispatch_hints.get(hint, 0) + 1
            self.last_dispatch_hint = hint
            self._registry().counter(f"dispatch.hint.{hint}").inc()
        db = self._searchable_db(request.index_id)

        def run() -> msg.MultiSearchResponse:
            return msg.MultiSearchResponse(
                [
                    self._run_search(db, request.kind, tokens)
                    for tokens in request.queries
                ]
            )

        observed = self._observed(
            request.trace,
            "server.handle",
            "multi-search",
            index_id=request.index_id,
            kind=request.kind,
            queries=len(request.queries),
        )
        if observed is None:
            return run()
        with observed:
            return run()

    def _fetch(self, request: msg.FetchRequest) -> msg.FetchResponse:
        # fetch_tuples reports *all* missing ids at once, so a client
        # retrying after a partial upload learns the complete gap.
        return msg.FetchResponse(
            self._db(request.index_id).fetch_tuples(request.record_ids)
        )

    # -- managed live stores (dynamic data over the wire) ----------------------

    def _registry(self):
        """Where the ``updates.*`` instruments live (see ``__init__``)."""
        return (
            self.metrics_registry
            if self.metrics_registry is not None
            else default_registry()
        )

    def _store(self, index_id: int):
        store = self._stores.get(index_id)
        if store is None:
            raise IndexStateError(f"no managed store at handle {index_id}")
        return store

    def _store_open(self, request: msg.StoreOpenRequest) -> None:
        """Create (or idempotently re-open) a managed store.

        The store lives on its own ``store<id>/`` slice of the server
        backend.  Whatever a previous process left on that slice is
        wiped first: managed-store keys live in this process (that is
        the point — the server runs the whole store), so orphaned
        on-disk state from a dead incarnation is undecryptable garbage,
        not something to rehydrate.
        """
        from repro.core.registry import SCHEMES

        schemes = tuple(request.schemes)
        for name in schemes:
            if name not in SCHEMES:
                raise IndexStateError(f"unknown scheme {name!r}")
        if len(set(schemes)) != len(schemes):
            raise IndexStateError("duplicate scheme lanes in store open")
        spec = (schemes, request.domain_size, request.consolidation_step)
        existing = self._store_specs.get(request.index_id)
        if existing is not None:
            if existing != spec:
                raise IndexStateError(
                    f"handle {request.index_id} already hosts a store "
                    f"with different parameters"
                )
            return  # idempotent re-open
        if request.index_id in self._databases:
            raise IndexStateError(
                f"handle {request.index_id} already hosts a classic EDB"
            )
        from repro.rangestore import HybridRangeStore, RangeStore

        backend = PrefixedBackend(self._backend, f"store{request.index_id}/")
        for ns in backend.namespaces():
            backend.drop(ns)
        if len(schemes) == 1:
            kwargs = {"executor": self.executor}
            if schemes[0].startswith("constant"):
                # A live store serves arbitrary interleaved ranges; the
                # owner-side intersection guard assumes one owner's
                # query discipline and would reject normal traffic.
                kwargs["intersection_policy"] = "allow"
            store = RangeStore.open(
                schemes[0],
                domain_size=request.domain_size,
                backend=backend,
                consolidation_step=request.consolidation_step,
                **kwargs,
            )
        else:
            store = HybridRangeStore(
                domain_size=request.domain_size,
                schemes=schemes,
                backend=backend,
                consolidation_step=request.consolidation_step,
                executor=self.executor,
            )
        self._stores[request.index_id] = store
        self._store_specs[request.index_id] = spec
        self._store_consolidations[request.index_id] = 0
        self.events.emit(
            "store.open",
            index_id=request.index_id,
            schemes=list(schemes),
            domain_size=request.domain_size,
        )

    def _apply_updates(
        self, index_id: int, ops: "tuple[UpdateOp, ...]", *, trace: str = ""
    ) -> None:
        """Apply one decoded update batch to a managed store.

        The batch becomes one fresh static index; any logarithmic
        consolidation it triggers runs right here, inside the same
        call — which the network layer schedules on the exec engine's
        offload pool under the per-index write lock, so merges never
        run on the event loop and never interleave with other writes
        to the same handle.  Concurrent searches are safe against the
        merge via the update manager's read/write gate
        (exec-cache invalidation is atomic with index retirement).
        """
        store = self._store(index_id)

        def run() -> None:
            store.apply_ops(ops)
            store.flush()

        observed = self._observed(
            trace, "server.update", "update-batch",
            index_id=index_id, ops=len(ops),
        )
        if observed is None:
            run()
        else:
            with observed:
                run()
        registry = self._registry()
        registry.counter("updates.applied").inc(len(ops))
        registry.counter("updates.batches").inc()
        total = store.consolidations
        seen = self._store_consolidations.get(index_id, 0)
        if total > seen:
            registry.counter("updates.consolidations").inc(total - seen)
            self._store_consolidations[index_id] = total
            self.events.emit(
                "store.consolidate",
                index_id=index_id,
                merged=total - seen,
                consolidations=total,
            )

    def _store_search(
        self, request: msg.StoreSearchRequest
    ) -> msg.StoreSearchResponse:
        store = self._store(request.index_id)

        def run() -> msg.StoreSearchResponse:
            outcome = store.search(request.lo, request.hi)
            return msg.StoreSearchResponse(
                tuple(sorted(outcome.ids)),
                rounds=outcome.rounds,
                scheme=outcome.scheme_chosen or "",
            )

        observed = self._observed(
            request.trace,
            "server.handle",
            "store-search",
            index_id=request.index_id,
            kind="store",
            queries=1,
        )
        if observed is None:
            return run()
        with observed:
            return run()

    def _drop_store(self, index_id: int) -> None:
        """Retire a managed store and free its backend slice."""
        store = self._stores.pop(index_id, None)
        if store is None:
            return
        self._store_specs.pop(index_id, None)
        self._store_consolidations.pop(index_id, None)
        slice_backend = PrefixedBackend(self._backend, f"store{index_id}/")
        for ns in slice_backend.namespaces():
            slice_backend.drop(ns)
        self.events.emit("store.drop", index_id=index_id)

    # -- introspection (what an adversary can tally) -----------------------------

    def stored_bytes(self) -> int:
        """Total bytes at rest — the honest-but-curious server's view."""
        return sum(db.stored_bytes() for db in self._databases.values())

    def index_count(self) -> int:
        """Number of live handles holding an encrypted index."""
        return sum(
            1 for db in self._databases.values() if db.get_index("edb") is not None
        )

    def stats_dict(self) -> dict:
        """Core-server counters for the ``StatsRequest`` frame pair.

        Everything here is already in the honest-but-curious server's
        view (it could tally all of it itself), so exposing the dict
        adds no leakage.  The network layer merges its transport
        counters on top under the same frame pair.
        """
        stats = {
            "handles": len(self._databases),
            "indexes": self.index_count(),
            "stored_bytes": self.stored_bytes(),
            "dispatch_hints": dict(self.dispatch_hints),
            "events": {
                "emitted": self.events.emitted,
                "tail": self.events.tail(16),
            },
        }
        if self._stores:
            stats["stores"] = {
                str(index_id): {
                    "schemes": list(self._store_specs[index_id][0]),
                    "active_indexes": store.active_indexes,
                    "pending_ops": store.pending_ops,
                    "consolidations": store.consolidations,
                }
                for index_id, store in sorted(self._stores.items())
            }
        cache = getattr(self.executor, "cache", None)
        if cache is not None:
            # The exec engine's GGM-expansion cache: its hit rate is a
            # real capacity signal (a cold cache means every Constant
            # query pays full subtree expansion), so the cluster health
            # view aggregates it per shard.
            cache_stats = cache.stats()
            lookups = cache_stats["hits"] + cache_stats["misses"]
            cache_stats["hit_rate"] = (
                cache_stats["hits"] / lookups if lookups else 0.0
            )
            stats["exec_cache"] = cache_stats
        kernel = getattr(self.executor, "kernel", None)
        if kernel is not None:
            # The crypto kernel behind every batched expansion/label
            # derivation: backend, worker-lane width, offload ratio and
            # serial fallbacks — whether the GIL-escape lane is alive
            # and actually being used is a fleet capacity signal, so
            # the cluster health rollup aggregates it per shard.
            stats["crypto_kernel"] = kernel.stats()
        return stats
