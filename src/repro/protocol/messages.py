"""Wire messages of the owner ↔ server protocol.

The paper's model is two machines: the owner keeps keys, the server
keeps encrypted indexes.  This module pins down the bytes that cross
the boundary, so the separation is enforced by construction instead of
by convention: the server-side classes in :mod:`repro.protocol.server`
can only ever see what these messages carry.

Every message serializes to a tagged, length-prefixed binary frame —
no pickling, no implicit trust in the peer.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

from repro import errors
from repro.errors import TokenError
from repro.updates.batch import OP_LEN, UpdateOp

#: Longest dispatcher hint the wire carries; anything longer is
#: garbage by construction (scheme names are short) and is dropped.
MAX_HINT_LEN = 64

#: Longest trace id the wire carries (ids are 16 hex chars; the cap
#: leaves room for future prefixes).  Longer trailers are garbage by
#: construction and collapse to "no trace".
MAX_TRACE_LEN = 64

_HEADER = struct.Struct(">BI")  # message tag, body length

# Message tags.
TAG_UPLOAD_INDEX = 1
TAG_UPLOAD_RECORDS = 2
TAG_SEARCH_REQUEST = 3
TAG_SEARCH_RESPONSE = 4
TAG_FETCH_REQUEST = 5
TAG_FETCH_RESPONSE = 6
TAG_DROP_INDEX = 7
TAG_UPLOAD_PAYLOADS = 8
TAG_FETCH_PAYLOADS = 9
TAG_PAYLOAD_RESPONSE = 10
TAG_MULTI_SEARCH_REQUEST = 11
TAG_MULTI_SEARCH_RESPONSE = 12
TAG_OK = 13
TAG_ERROR = 14
TAG_STATS_REQUEST = 15
TAG_STATS_RESPONSE = 16
TAG_METRICS_REQUEST = 17
TAG_METRICS_RESPONSE = 18
TAG_UPDATE_REQUEST = 19
TAG_UPDATE_BATCH_REQUEST = 20
TAG_STORE_OPEN = 21
TAG_STORE_SEARCH = 22
TAG_STORE_SEARCH_RESPONSE = 23


def _pack_chunks(chunks: "list[bytes]") -> bytes:
    parts = [len(chunks).to_bytes(4, "big")]
    for chunk in chunks:
        parts.append(len(chunk).to_bytes(4, "big"))
        parts.append(chunk)
    return b"".join(parts)


def _unpack_chunks(body: bytes, offset: int = 0) -> "tuple[list[bytes], int]":
    count = int.from_bytes(body[offset : offset + 4], "big")
    offset += 4
    chunks = []
    for _ in range(count):
        length = int.from_bytes(body[offset : offset + 4], "big")
        offset += 4
        if offset + length > len(body):
            raise TokenError("truncated protocol frame")
        chunks.append(body[offset : offset + length])
        offset += length
    return chunks, offset


def _frame(tag: int, body: bytes) -> bytes:
    return _HEADER.pack(tag, len(body)) + body


def parse_frame(frame: bytes) -> "tuple[int, bytes]":
    """Split a frame into (tag, body), validating the length prefix."""
    if len(frame) < _HEADER.size:
        raise TokenError("protocol frame shorter than header")
    tag, length = _HEADER.unpack_from(frame)
    body = frame[_HEADER.size :]
    if len(body) != length:
        raise TokenError(
            f"frame length mismatch: header says {length}, got {len(body)}"
        )
    return tag, body


@dataclass(frozen=True)
class UploadIndex:
    """Owner → server: store an EDB under a fresh index handle."""

    index_id: int
    edb_bytes: bytes

    def to_frame(self) -> bytes:
        return _frame(
            TAG_UPLOAD_INDEX,
            self.index_id.to_bytes(8, "big") + self.edb_bytes,
        )

    @classmethod
    def from_body(cls, body: bytes) -> "UploadIndex":
        return cls(int.from_bytes(body[:8], "big"), body[8:])


@dataclass(frozen=True)
class UploadRecords:
    """Owner → server: store encrypted tuples for later retrieval."""

    index_id: int
    entries: "list[tuple[int, bytes]]"  # (record id, ciphertext)

    def to_frame(self) -> bytes:
        chunks = []
        for rid, blob in self.entries:
            chunks.append(rid.to_bytes(8, "big") + blob)
        return _frame(
            TAG_UPLOAD_RECORDS,
            self.index_id.to_bytes(8, "big") + _pack_chunks(chunks),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "UploadRecords":
        index_id = int.from_bytes(body[:8], "big")
        chunks, _ = _unpack_chunks(body, 8)
        entries = [(int.from_bytes(c[:8], "big"), c[8:]) for c in chunks]
        return cls(index_id, entries)


@dataclass(frozen=True)
class SearchRequest:
    """Owner → server: keyword tokens for one index.

    Tokens travel as opaque 32-byte (label_key ‖ value_key) strings, or
    33-byte (seed ‖ level) DPRF delegation tokens; ``kind`` says which.
    """

    index_id: int
    kind: str  # "sse" or "dprf"
    tokens: "list[bytes]"

    def to_frame(self) -> bytes:
        kind_byte = b"\x00" if self.kind == "sse" else b"\x01"
        return _frame(
            TAG_SEARCH_REQUEST,
            self.index_id.to_bytes(8, "big") + kind_byte + _pack_chunks(self.tokens),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "SearchRequest":
        index_id = int.from_bytes(body[:8], "big")
        kind = "sse" if body[8] == 0 else "dprf"
        tokens, _ = _unpack_chunks(body, 9)
        return cls(index_id, kind, tokens)


@dataclass(frozen=True)
class SearchResponse:
    """Server → owner: the payloads the tokens unlocked."""

    payloads: "list[bytes]" = field(default_factory=list)

    def to_frame(self) -> bytes:
        return _frame(TAG_SEARCH_RESPONSE, _pack_chunks(self.payloads))

    @classmethod
    def from_body(cls, body: bytes) -> "SearchResponse":
        payloads, _ = _unpack_chunks(body)
        return cls(payloads)


@dataclass(frozen=True)
class MultiSearchRequest:
    """Owner → server: one frame carrying a whole batch of searches.

    ``queries[i]`` is the token list of the i-th query (same opaque
    token encodings as :class:`SearchRequest`; one ``kind`` for the
    batch, since a batch always comes from one scheme).  The server
    executes the batch through its exec engine and answers with one
    :class:`MultiSearchResponse` — one round-trip per batch instead of
    one per query.

    ``hint`` names the dispatch lane the owner's cost dispatcher chose
    for this batch (``"auto"``/empty when undispatched) — a trailing,
    length-prefixed field, so frames from pre-hint clients parse
    unchanged.  The hint is advisory observability: the server
    normalizes it through :func:`repro.exec.dispatch.normalize_hint`,
    and a malformed or unknown hint degrades to ``"auto"`` rather than
    failing the batch (hostile bytes must never change behaviour
    beyond "no hint").

    ``trace`` carries an optional trace id and rides as a *second*
    trailing length-prefixed field after the hint — hint-era parsers
    already tolerate extra bytes past the hint trailer, so traced
    frames parse unchanged on old servers.  Like the hint, the trace
    trailer is forgiving: absent, truncated, over-long or undecodable
    bytes all collapse to "no trace".
    """

    index_id: int
    kind: str  # "sse" or "dprf"
    queries: "list[list[bytes]]"
    hint: str = ""
    trace: str = ""

    def to_frame(self) -> bytes:
        kind_byte = b"\x00" if self.kind == "sse" else b"\x01"
        body = _pack_chunks([_pack_chunks(tokens) for tokens in self.queries])
        hint_bytes = self.hint.encode("utf-8")[:MAX_HINT_LEN]
        tail = len(hint_bytes).to_bytes(2, "big") + hint_bytes
        if self.trace:
            trace_bytes = self.trace.encode("utf-8")[:MAX_TRACE_LEN]
            tail += len(trace_bytes).to_bytes(2, "big") + trace_bytes
        return _frame(
            TAG_MULTI_SEARCH_REQUEST,
            self.index_id.to_bytes(8, "big") + kind_byte + body + tail,
        )

    @classmethod
    def from_body(cls, body: bytes) -> "MultiSearchRequest":
        index_id = int.from_bytes(body[:8], "big")
        kind = "sse" if body[8] == 0 else "dprf"
        blobs, offset = _unpack_chunks(body, 9)
        # Both trailing fields are deliberately forgiving: absent,
        # truncated, over-long or undecodable trailing bytes all
        # collapse to "no hint" / "no trace" — observability trailers
        # may never be a parse hazard.
        hint = ""
        trace = ""
        trailer = body[offset:]
        if len(trailer) >= 2:
            hint_len = int.from_bytes(trailer[:2], "big")
            raw = trailer[2 : 2 + hint_len]
            if hint_len <= MAX_HINT_LEN and len(raw) == hint_len:
                hint = raw.decode("utf-8", "replace")
                rest = trailer[2 + hint_len :]
                if len(rest) >= 2:
                    trace_len = int.from_bytes(rest[:2], "big")
                    raw_trace = rest[2 : 2 + trace_len]
                    if trace_len <= MAX_TRACE_LEN and len(raw_trace) == trace_len:
                        trace = raw_trace.decode("utf-8", "replace")
        return cls(
            index_id,
            kind,
            [_unpack_chunks(blob)[0] for blob in blobs],
            hint,
            trace,
        )


@dataclass(frozen=True)
class MultiSearchResponse:
    """Server → owner: per-query payload lists, in request order."""

    results: "list[list[bytes]]" = field(default_factory=list)

    def to_frame(self) -> bytes:
        body = _pack_chunks([_pack_chunks(payloads) for payloads in self.results])
        return _frame(TAG_MULTI_SEARCH_RESPONSE, body)

    @classmethod
    def from_body(cls, body: bytes) -> "MultiSearchResponse":
        blobs, _ = _unpack_chunks(body)
        return cls([_unpack_chunks(blob)[0] for blob in blobs])


@dataclass(frozen=True)
class FetchRequest:
    """Owner → server: retrieve encrypted tuples by id."""

    index_id: int
    record_ids: "list[int]"

    def to_frame(self) -> bytes:
        chunks = [rid.to_bytes(8, "big") for rid in self.record_ids]
        return _frame(
            TAG_FETCH_REQUEST, self.index_id.to_bytes(8, "big") + _pack_chunks(chunks)
        )

    @classmethod
    def from_body(cls, body: bytes) -> "FetchRequest":
        index_id = int.from_bytes(body[:8], "big")
        chunks, _ = _unpack_chunks(body, 8)
        return cls(index_id, [int.from_bytes(c, "big") for c in chunks])


@dataclass(frozen=True)
class FetchResponse:
    """Server → owner: the requested ciphertexts (order preserved)."""

    blobs: "list[bytes]"

    def to_frame(self) -> bytes:
        return _frame(TAG_FETCH_RESPONSE, _pack_chunks(self.blobs))

    @classmethod
    def from_body(cls, body: bytes) -> "FetchResponse":
        blobs, _ = _unpack_chunks(body)
        return cls(blobs)


@dataclass(frozen=True)
class UploadPayloads:
    """Owner → server: store encrypted payload documents."""

    index_id: int
    entries: "list[tuple[int, bytes]]"  # (record id, ciphertext)

    def to_frame(self) -> bytes:
        chunks = [rid.to_bytes(8, "big") + blob for rid, blob in self.entries]
        return _frame(
            TAG_UPLOAD_PAYLOADS,
            self.index_id.to_bytes(8, "big") + _pack_chunks(chunks),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "UploadPayloads":
        index_id = int.from_bytes(body[:8], "big")
        chunks, _ = _unpack_chunks(body, 8)
        return cls(index_id, [(int.from_bytes(c[:8], "big"), c[8:]) for c in chunks])


@dataclass(frozen=True)
class FetchPayloads:
    """Owner → server: retrieve encrypted payloads by id."""

    index_id: int
    record_ids: "list[int]"

    def to_frame(self) -> bytes:
        chunks = [rid.to_bytes(8, "big") for rid in self.record_ids]
        return _frame(
            TAG_FETCH_PAYLOADS,
            self.index_id.to_bytes(8, "big") + _pack_chunks(chunks),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "FetchPayloads":
        index_id = int.from_bytes(body[:8], "big")
        chunks, _ = _unpack_chunks(body, 8)
        return cls(index_id, [int.from_bytes(c, "big") for c in chunks])


@dataclass(frozen=True)
class PayloadResponse:
    """Server → owner: (id, ciphertext) pairs; ids without payload absent."""

    entries: "list[tuple[int, bytes]]"

    def to_frame(self) -> bytes:
        chunks = [rid.to_bytes(8, "big") + blob for rid, blob in self.entries]
        return _frame(TAG_PAYLOAD_RESPONSE, _pack_chunks(chunks))

    @classmethod
    def from_body(cls, body: bytes) -> "PayloadResponse":
        chunks, _ = _unpack_chunks(body)
        return cls([(int.from_bytes(c[:8], "big"), c[8:]) for c in chunks])


@dataclass(frozen=True)
class DropIndex:
    """Owner → server: delete an index (consolidation cleanup)."""

    index_id: int

    def to_frame(self) -> bytes:
        return _frame(TAG_DROP_INDEX, self.index_id.to_bytes(8, "big"))

    @classmethod
    def from_body(cls, body: bytes) -> "DropIndex":
        return cls(int.from_bytes(body[:8], "big"))


@dataclass(frozen=True)
class OkResponse:
    """Server → owner: a write-style request succeeded.

    Write frames (uploads, drops) used to be answered with silence —
    fine in-process, where the transport returning at all *is* the
    acknowledgement, but fatal over a socket: a client that pipelines
    ``N`` requests must be able to count ``N`` replies.  Every request
    therefore gets exactly one response frame; this is the one that
    says "done, nothing to report".
    """

    def to_frame(self) -> bytes:
        return _frame(TAG_OK, b"")

    @classmethod
    def from_body(cls, body: bytes) -> "OkResponse":
        if body:
            raise TokenError("OkResponse carries no body")
        return cls()


#: Exception class ↔ stable wire code.  The code travels instead of the
#: Python class name so the mapping survives refactors, and so a client
#: can re-raise the *same* exception type the in-process transport
#: would have raised — remote and local failures look identical to
#: application code.
_ERROR_CODES = {
    "domain": errors.DomainError,
    "invalid-range": errors.InvalidRangeError,
    "key": errors.KeyError_,
    "token": errors.TokenError,
    "integrity": errors.IntegrityError,
    "query-intersection": errors.QueryIntersectionError,
    "index-state": errors.IndexStateError,
    "update": errors.UpdateError,
    "transport": errors.TransportError,
    "framing": errors.FramingError,
}
_CODE_BY_CLASS = {cls: code for code, cls in _ERROR_CODES.items()}


@dataclass(frozen=True)
class ErrorResponse:
    """Server → owner: the request failed; here is why.

    ``code`` is a stable token from :data:`_ERROR_CODES` (``"internal"``
    for anything outside the library's own hierarchy); ``message`` is
    human-readable detail.  A typed error frame is what keeps a network
    client from hanging forever on a request whose handling died
    server-side.
    """

    code: str
    message: str = ""

    def to_frame(self) -> bytes:
        return _frame(
            TAG_ERROR,
            _pack_chunks(
                [self.code.encode("utf-8"), self.message.encode("utf-8")]
            ),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "ErrorResponse":
        chunks, _ = _unpack_chunks(body)
        if len(chunks) != 2:
            raise TokenError("ErrorResponse carries (code, message)")
        return cls(
            chunks[0].decode("utf-8", "replace"),
            chunks[1].decode("utf-8", "replace"),
        )

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorResponse":
        # Walk the MRO so subclasses map to their nearest coded ancestor.
        for klass in type(exc).__mro__:
            code = _CODE_BY_CLASS.get(klass)
            if code is not None:
                return cls(code, str(exc))
        return cls("internal", f"{type(exc).__name__}: {exc}")

    def raise_(self) -> None:
        """Re-raise as the exception the server originally hit."""
        klass = _ERROR_CODES.get(self.code, errors.RemoteError)
        raise klass(self.message or f"server error ({self.code})")


@dataclass(frozen=True)
class StatsRequest:
    """Owner/operator → server: report your counters."""

    def to_frame(self) -> bytes:
        return _frame(TAG_STATS_REQUEST, b"")

    @classmethod
    def from_body(cls, body: bytes) -> "StatsRequest":
        if body:
            raise TokenError("StatsRequest carries no body")
        return cls()


@dataclass(frozen=True)
class StatsResponse:
    """Server → owner: observability counters as a JSON document.

    Stats are operator-facing observability, not protocol state, so the
    body is self-describing JSON rather than positional binary — new
    counters can appear without a wire version bump, and old clients
    simply ignore keys they don't know.  The body carries a schema
    version (``"v": 1``) so consumers can key tolerant parsing off it;
    readers must ignore unknown keys regardless.
    """

    #: Schema version stamped into every serialized stats body.
    SCHEMA_VERSION = 1

    stats: dict = field(default_factory=dict)

    def to_frame(self) -> bytes:
        stats = dict(self.stats)
        stats.setdefault("v", self.SCHEMA_VERSION)
        return _frame(
            TAG_STATS_RESPONSE,
            json.dumps(stats, sort_keys=True).encode("utf-8"),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "StatsResponse":
        try:
            stats = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TokenError(f"StatsResponse body is not JSON: {exc}") from None
        if not isinstance(stats, dict):
            raise TokenError("StatsResponse body must be a JSON object")
        return cls(stats)


@dataclass(frozen=True)
class MetricsRequest:
    """Operator → server: the metrics delta past cursor ``since``.

    ``since`` is a sequence number from a previous
    :class:`MetricsResponse` (0 = full snapshot); ``max_traces`` asks
    for up to that many recent trace records from the server's ring
    buffer (0 = none).  The fixed 12-byte body keeps the request as
    cheap to reject as it is to serve.

    PR-10 extension, same trailing-optional idiom as the trace trailer:
    ``max_slow`` asks for up to that many slow-query flight-recorder
    captures, and ``boot`` echoes the registry incarnation id a prior
    response carried so a restarted server can detect (and reset) a
    cursor minted against its predecessor.  A request using neither
    encodes byte-identically to the legacy 12-byte body; otherwise a
    12-byte extension (4-byte ``max_slow`` + 8-byte boot id, zeros =
    unset) is appended, and legacy servers reject it loudly rather
    than misparse it.
    """

    since: int = 0
    max_traces: int = 0
    max_slow: int = 0
    boot: str = ""

    def _boot_raw(self) -> bytes:
        if not self.boot:
            return bytes(8)
        try:
            raw = bytes.fromhex(self.boot)
        except ValueError:
            raise TokenError("MetricsRequest boot must be 16 hex chars") from None
        if len(raw) != 8:
            raise TokenError("MetricsRequest boot must be 16 hex chars")
        return raw

    def to_frame(self) -> bytes:
        body = self.since.to_bytes(8, "big") + self.max_traces.to_bytes(4, "big")
        if self.max_slow or self.boot:
            body += self.max_slow.to_bytes(4, "big") + self._boot_raw()
        return _frame(TAG_METRICS_REQUEST, body)

    @classmethod
    def from_body(cls, body: bytes) -> "MetricsRequest":
        if len(body) not in (12, 24):
            raise TokenError(
                "MetricsRequest carries (since, max_traces[, max_slow, boot])"
            )
        max_slow = 0
        boot = ""
        if len(body) == 24:
            max_slow = int.from_bytes(body[12:16], "big")
            boot_raw = body[16:24]
            if boot_raw != bytes(8):
                boot = boot_raw.hex()
        return cls(
            int.from_bytes(body[:8], "big"),
            int.from_bytes(body[8:12], "big"),
            max_slow,
            boot,
        )


@dataclass(frozen=True)
class MetricsResponse:
    """Server → operator: a registry delta (plus optional traces).

    Same self-describing JSON posture as :class:`StatsResponse`; the
    payload shape is :meth:`repro.obs.MetricsRegistry.delta` — a
    versioned document whose ``"seq"`` is the cursor for the next
    :class:`MetricsRequest`.
    """

    payload: dict = field(default_factory=dict)

    def to_frame(self) -> bytes:
        return _frame(
            TAG_METRICS_RESPONSE,
            json.dumps(self.payload, sort_keys=True).encode("utf-8"),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "MetricsResponse":
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TokenError(f"MetricsResponse body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise TokenError("MetricsResponse body must be a JSON object")
        return cls(payload)


def _pack_trace_trailer(trace: str) -> bytes:
    """Serialize an optional trailing trace id (empty string = absent)."""
    if not trace:
        return b""
    raw = trace.encode("utf-8")[:MAX_TRACE_LEN]
    return len(raw).to_bytes(2, "big") + raw


def _parse_trace_trailer(trailer: bytes) -> str:
    """Forgiving inverse of :func:`_pack_trace_trailer`.

    Absent, truncated, over-long or undecodable trailing bytes all
    collapse to "no trace" — same compatibility discipline as the
    :class:`MultiSearchRequest` hint/trace trailers: an observability
    field may never be a parse hazard.
    """
    if len(trailer) >= 2:
        length = int.from_bytes(trailer[:2], "big")
        raw = trailer[2 : 2 + length]
        if length <= MAX_TRACE_LEN and len(raw) == length:
            return raw.decode("utf-8", "replace")
    return ""


@dataclass(frozen=True)
class StoreOpenRequest:
    """Client → server: host a live (dynamic) range store under a handle.

    Unlike the split-trust upload frames, a *managed store* keeps the
    whole :class:`~repro.rangestore.RangeStore` lifecycle server-side —
    per-batch keys, LSM consolidation and refinement included — so a
    thin network client can insert/delete/search without running any
    scheme code of its own.  The network boundary sits between the
    application and the database; the classic key-free frames are
    untouched.  One scheme name opens a :class:`~repro.rangestore.
    RangeStore`; two or more open a cost-dispatched
    :class:`~repro.rangestore.HybridRangeStore`.

    Opening is idempotent: re-sending the same frame (same schemes,
    domain and step) on an existing handle is an ack'd no-op, so a
    reconnecting client can always re-open before resuming; differing
    parameters raise :class:`~repro.errors.IndexStateError`.
    """

    index_id: int
    domain_size: int
    schemes: "tuple[str, ...]"
    consolidation_step: int = 4

    def to_frame(self) -> bytes:
        return _frame(
            TAG_STORE_OPEN,
            self.index_id.to_bytes(8, "big")
            + self.domain_size.to_bytes(8, "big")
            + self.consolidation_step.to_bytes(4, "big")
            + _pack_chunks([name.encode("utf-8") for name in self.schemes]),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "StoreOpenRequest":
        if len(body) < 20:
            raise TokenError("StoreOpenRequest body too short")
        chunks, _ = _unpack_chunks(body, 20)
        if not chunks:
            raise TokenError("StoreOpenRequest names no schemes")
        return cls(
            int.from_bytes(body[:8], "big"),
            int.from_bytes(body[8:16], "big"),
            tuple(c.decode("utf-8", "replace") for c in chunks),
            int.from_bytes(body[16:20], "big"),
        )


@dataclass(frozen=True)
class UpdateRequest:
    """Client → server: apply one operation to a managed store, now.

    The single-op fast path: the operation is applied (and flushed into
    a fresh one-op batch index) immediately, acked with
    :class:`OkResponse`.  Latency-sensitive ingest should batch through
    :class:`UpdateBatchRequest` instead — each flush builds one static
    index, so op-at-a-time traffic grows the LSM forest fastest.
    """

    index_id: int
    op: UpdateOp

    def to_frame(self) -> bytes:
        return _frame(
            TAG_UPDATE_REQUEST, self.index_id.to_bytes(8, "big") + self.op.encode()
        )

    @classmethod
    def from_body(cls, body: bytes) -> "UpdateRequest":
        if len(body) != 8 + OP_LEN:
            raise TokenError(
                f"UpdateRequest body must be {8 + OP_LEN} bytes, got {len(body)}"
            )
        return cls(int.from_bytes(body[:8], "big"), UpdateOp.decode(body[8:]))


@dataclass(frozen=True)
class UpdateBatchRequest:
    """Client → server: apply a whole operation batch to a managed store.

    Ops travel as fixed-size encoded chunks (see
    :meth:`~repro.updates.batch.UpdateOp.encode`), are applied as *one*
    batch — one fresh index, then logarithmic consolidation — and acked
    with a single :class:`OkResponse`.  ``trace`` rides as a trailing
    length-prefixed field with the same forgiving compatibility
    discipline as the multi-search trailers: absent/garbage trailing
    bytes collapse to "no trace", never to a parse error.
    """

    index_id: int
    ops: "tuple[UpdateOp, ...]"
    trace: str = ""

    def to_frame(self) -> bytes:
        return _frame(
            TAG_UPDATE_BATCH_REQUEST,
            self.index_id.to_bytes(8, "big")
            + _pack_chunks([op.encode() for op in self.ops])
            + _pack_trace_trailer(self.trace),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "UpdateBatchRequest":
        if len(body) < 12:  # 8B handle + 4B op count, even when empty
            raise TokenError("UpdateBatchRequest body too short")
        chunks, offset = _unpack_chunks(body, 8)
        # UpdateOp.decode raises typed UpdateError on truncated,
        # oversized or unknown-kind chunks — hostile op bytes become an
        # ErrorResponse, never a crash.
        return cls(
            int.from_bytes(body[:8], "big"),
            tuple(UpdateOp.decode(c) for c in chunks),
            _parse_trace_trailer(body[offset:]),
        )


@dataclass(frozen=True)
class StoreSearchRequest:
    """Client → server: range query ``[lo, hi]`` against a managed store."""

    index_id: int
    lo: int
    hi: int
    trace: str = ""

    def to_frame(self) -> bytes:
        return _frame(
            TAG_STORE_SEARCH,
            self.index_id.to_bytes(8, "big")
            + self.lo.to_bytes(8, "big")
            + self.hi.to_bytes(8, "big")
            + _pack_trace_trailer(self.trace),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "StoreSearchRequest":
        if len(body) < 24:
            raise TokenError("StoreSearchRequest body too short")
        return cls(
            int.from_bytes(body[:8], "big"),
            int.from_bytes(body[8:16], "big"),
            int.from_bytes(body[16:24], "big"),
            _parse_trace_trailer(body[24:]),
        )


@dataclass(frozen=True)
class StoreSearchResponse:
    """Server → client: the matching record ids, exact and sorted.

    Managed-store answers are fully refined server-side (the store
    holds the keys), so the body carries plaintext record ids — sorted
    ascending, which makes the frame a *deterministic* function of the
    store's logical state: two servers that ingested the same op
    sequence answer byte-identical frames regardless of their
    (independent, random) key material.  ``rounds`` is the number of
    active LSM indexes the query fanned over; ``scheme`` names the lane
    that served it (the dispatch decision for hybrid stores).
    """

    ids: "tuple[int, ...]"
    rounds: int = 0
    scheme: str = ""

    def to_frame(self) -> bytes:
        scheme_raw = self.scheme.encode("utf-8")[:MAX_HINT_LEN]
        ids = sorted(self.ids)
        return _frame(
            TAG_STORE_SEARCH_RESPONSE,
            len(scheme_raw).to_bytes(2, "big")
            + scheme_raw
            + self.rounds.to_bytes(4, "big")
            + len(ids).to_bytes(4, "big")
            + b"".join(rid.to_bytes(8, "big") for rid in ids),
        )

    @classmethod
    def from_body(cls, body: bytes) -> "StoreSearchResponse":
        if len(body) < 2:
            raise TokenError("StoreSearchResponse body too short")
        name_len = int.from_bytes(body[:2], "big")
        offset = 2 + name_len
        if name_len > MAX_HINT_LEN or len(body) < offset + 8:
            raise TokenError("StoreSearchResponse header truncated")
        scheme = body[2:offset].decode("utf-8", "replace")
        rounds = int.from_bytes(body[offset : offset + 4], "big")
        count = int.from_bytes(body[offset + 4 : offset + 8], "big")
        offset += 8
        if len(body) != offset + 8 * count:
            raise TokenError("StoreSearchResponse id list truncated")
        ids = tuple(
            int.from_bytes(body[offset + 8 * i : offset + 8 * (i + 1)], "big")
            for i in range(count)
        )
        return cls(ids, rounds, scheme)


_PARSERS = {
    TAG_UPLOAD_INDEX: UploadIndex.from_body,
    TAG_UPLOAD_RECORDS: UploadRecords.from_body,
    TAG_SEARCH_REQUEST: SearchRequest.from_body,
    TAG_SEARCH_RESPONSE: SearchResponse.from_body,
    TAG_FETCH_REQUEST: FetchRequest.from_body,
    TAG_FETCH_RESPONSE: FetchResponse.from_body,
    TAG_DROP_INDEX: DropIndex.from_body,
    TAG_UPLOAD_PAYLOADS: UploadPayloads.from_body,
    TAG_FETCH_PAYLOADS: FetchPayloads.from_body,
    TAG_PAYLOAD_RESPONSE: PayloadResponse.from_body,
    TAG_MULTI_SEARCH_REQUEST: MultiSearchRequest.from_body,
    TAG_MULTI_SEARCH_RESPONSE: MultiSearchResponse.from_body,
    TAG_OK: OkResponse.from_body,
    TAG_ERROR: ErrorResponse.from_body,
    TAG_STATS_REQUEST: StatsRequest.from_body,
    TAG_STATS_RESPONSE: StatsResponse.from_body,
    TAG_METRICS_REQUEST: MetricsRequest.from_body,
    TAG_METRICS_RESPONSE: MetricsResponse.from_body,
    TAG_UPDATE_REQUEST: UpdateRequest.from_body,
    TAG_UPDATE_BATCH_REQUEST: UpdateBatchRequest.from_body,
    TAG_STORE_OPEN: StoreOpenRequest.from_body,
    TAG_STORE_SEARCH: StoreSearchRequest.from_body,
    TAG_STORE_SEARCH_RESPONSE: StoreSearchResponse.from_body,
}

#: Every tag this protocol revision can frame — the net layer's
#: garbage-header filter (an inbound header with any other tag byte can
#: never resolve to a parsable message, so it is rejected before its
#: claimed body is ever buffered).
KNOWN_TAGS = frozenset(_PARSERS)


def parse_message(frame: bytes):
    """Decode any protocol frame into its message object."""
    tag, body = parse_frame(frame)
    parser = _PARSERS.get(tag)
    if parser is None:
        raise TokenError(f"unknown protocol tag {tag}")
    return parser(body)


def parse_reply(frame: "bytes | None"):
    """Decode a response frame, re-raising a carried server error.

    The client-side counterpart of every request: local and remote
    failures surface as the same exception types because an
    :class:`ErrorResponse` re-raises here, at the parse site, exactly
    where an in-process transport would have thrown.
    """
    if frame is None:
        raise TokenError("transport returned no response frame")
    message = parse_message(frame)
    if isinstance(message, ErrorResponse):
        message.raise_()
    return message
