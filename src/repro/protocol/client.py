"""The owner-side client: keys stay here, only frames leave.

``RemoteRangeClient`` wraps **any** registry scheme so that build and
search run against an :class:`RsseServer` (or anything else with a
``handle(frame) -> frame | None`` transport), demonstrating that the
library's trust boundary survives an actual serialization seam.  The
client:

1. builds the encrypted index locally, uploads the scheme's entire
   server-side state (EDBs + encrypted tuples + encrypted payloads) via
   :meth:`~repro.core.scheme.RangeScheme.export_server_state`, then
   *detaches* — after setup the owner holds nothing but keys;
2. turns trapdoors into :class:`~repro.protocol.messages.SearchRequest`
   frames and refines the returned ids by fetching + decrypting tuples.

Every scheme family is covered through public scheme APIs only:

- Quadratic / Logarithmic-BRC/URC/SRC ship per-keyword SSE tokens
  (``kind="sse"``);
- Constant-BRC/URC delegate DPRF seeds (``kind="dprf"``) that the
  server expands itself;
- Logarithmic-SRC-i runs its two-round protocol (round 1 on the domain
  index, owner-side merge, round 2 on the position index).

:meth:`query_many` batches a workload: all trapdoors are computed
up-front (pipelined ahead of any transport round-trip) and the final
tuple fetch is coalesced into a single frame for the whole batch.

Wire caveat: the server re-derives labels with the Π_bas algorithm, so
remote search requires schemes built with the default PiBas SSE factory
(in-process queries support any black-box SSE).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterable, Sequence

from repro.core.scheme import QueryOutcome, RangeScheme
from repro.errors import IndexStateError
from repro.protocol import messages as msg
from repro.sse.encoding import decode_id, decode_triple

#: Transport: delivers one frame, returns the peer's response frame.
Transport = Callable[[bytes], "bytes | None"]


class RemoteRangeClient:
    """Owner endpoint running any RSSE scheme against a remote server."""

    def __init__(
        self,
        scheme: RangeScheme,
        transport: Transport,
        *,
        index_id: "int | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        names = scheme.index_names()
        if not names:
            raise IndexStateError(
                f"scheme {scheme.name!r} exposes no server-side EDB and "
                "cannot be outsourced over the wire protocol"
            )
        self._scheme = scheme
        self._transport = transport
        rng = rng if rng is not None else random.SystemRandom()
        base = index_id if index_id is not None else rng.randrange(1 << 62)
        self.index_id = base
        #: One wire handle per named EDB (SRC-i uploads two indexes).
        self._index_ids: dict[str, int] = {
            name: base + offset for offset, name in enumerate(names)
        }
        self._uploaded = False

    # -- setup -------------------------------------------------------------------

    @property
    def _records_id(self) -> int:
        """The handle holding the encrypted tuple store (the index that
        answers the final per-query fetch — I2 for SRC-i)."""
        return self._index_ids[self._scheme.index_names()[-1]]

    def outsource(
        self, records: "Iterable[tuple] | None" = None, *, payloads=None
    ) -> None:
        """Build locally, upload the full server state, detach local copies.

        Pass ``records=None`` to outsource a scheme that is *already*
        built (e.g. restored from an :mod:`repro.io.snapshot`) without
        rebuilding it.  When the transport exposes ``send_many`` (the
        pooled network transport does), all upload frames ride one
        pipelined wave instead of one round-trip each.
        """
        if records is not None:
            self._scheme.build_index(records, payloads=payloads)
        elif not self._scheme._built:
            raise IndexStateError(
                "outsource(records=None) requires an already-built scheme"
            )
        state = self._scheme.export_server_state(detach=True)
        frames = [
            msg.UploadIndex(handle, state.indexes[name]).to_frame()
            for name, handle in self._index_ids.items()
        ]
        frames.append(
            msg.UploadRecords(self._records_id, state.tuples).to_frame()
        )
        if state.payloads:
            frames.append(
                msg.UploadPayloads(self._records_id, state.payloads).to_frame()
            )
        send_many = getattr(self._transport, "send_many", None)
        if send_many is not None:
            responses = send_many(frames)
        else:
            responses = [self._transport(frame) for frame in frames]
        for response in responses:
            if response is not None:
                msg.parse_reply(response)  # surface a refused upload
        self._uploaded = True

    def attach(self) -> None:
        """Adopt an index this owner already uploaded (same keys, any
        process).

        The multi-process analogue of :meth:`outsource`: a second
        client holding the *same* scheme keys (e.g. restored from a
        snapshot by a worker process) and the same ``index_id`` marks
        itself attached and queries the live server-side state
        directly.  Keys never travel — sharing them across the owner's
        own processes is inside the trust boundary by definition.
        """
        self._uploaded = True

    # -- query --------------------------------------------------------------------

    def query(self, lo: int, hi: int) -> "frozenset[int]":
        """Full remote protocol: trapdoor → search frame(s) → fetch → refine."""
        return self.query_outcome(lo, hi).ids

    def query_outcome(self, lo: int, hi: int) -> QueryOutcome:
        """Like :meth:`query`, with the full cost breakdown.

        ``server_seconds`` is transport wall-clock (including
        serialization), ``response_bytes`` counts every server→owner
        frame byte — the remote analogues of the in-process metrics.
        """
        self._require_uploaded()
        if self._scheme.interactive:
            return self._interactive_outcome(lo, hi)
        t0 = time.perf_counter()
        token = self._scheme.trapdoor(lo, hi)
        t1 = time.perf_counter()
        response, server_s, resp_bytes = self._search_round(
            self._index_ids[self._scheme.index_names()[0]], token
        )
        raw_ids = [decode_id(p) for p in response.payloads]
        return self._finish(
            lo,
            hi,
            raw_ids,
            token_bytes=self._scheme.token_size_bytes(token),
            rounds=1,
            trapdoor_s=t1 - t0,
            server_s=server_s,
            response_bytes=resp_bytes,
        )

    def query_many(
        self,
        ranges: "Sequence[tuple[int, int]]",
        *,
        dispatch_hint: "str | None" = None,
        trace_id: "str | None" = None,
    ) -> "list[frozenset[int]]":
        """Batched queries behind one search frame per batch.

        All trapdoors are computed up-front and shipped in a single
        :class:`~repro.protocol.messages.MultiSearchRequest`; the server
        executes the batch through its exec engine and answers in one
        frame.  The final tuple fetch is likewise coalesced for the
        whole batch.  Returns one refined id-set per input range, in
        order.

        ``dispatch_hint`` rides the search frame so the server can
        observe which lane a cost dispatcher routed this batch through;
        it defaults to this client's scheme name (a remote client *is*
        a fixed one-lane dispatch).  ``trace_id`` likewise rides the
        frame (a second trailing field) and makes the server collect a
        span tree for this batch in its trace ring; ``None`` — the
        default — traces nothing and adds no bytes to the frame.
        """
        self._require_uploaded()
        if not ranges:
            return []
        hint = dispatch_hint if dispatch_hint is not None else self._scheme.name
        trace = trace_id or ""
        if self._scheme.interactive:
            raw_per_range = self._interactive_raw_many(
                ranges, hint=hint, trace=trace
            )
        else:
            # Pipeline stage 1: all trapdoors before any round-trip.
            tokens = [self._scheme.trapdoor(lo, hi) for lo, hi in ranges]
            handle = self._index_ids[self._scheme.index_names()[0]]
            response = self._multi_search_round(
                handle,
                tokens[0].wire_kind,
                [token.wire_tokens() for token in tokens],
                hint=hint,
                trace=trace,
            )
            raw_per_range = [
                [decode_id(p) for p in payloads] for payloads in response.results
            ]
        # Drop EDB-only ids (padded Quadratic's dummies), then issue a
        # single fetch for the union of all candidate ids.
        fetchable_per_range = [
            self._scheme.fetchable_ids(raw) for raw in raw_per_range
        ]
        union = sorted({rid for ids in fetchable_per_range for rid in ids})
        records = self._fetch_records(union)
        results: list[frozenset[int]] = []
        for (lo, hi), ids in zip(ranges, fetchable_per_range):
            results.append(
                frozenset(
                    records[rid].id
                    for rid in ids
                    if lo <= records[rid].value <= hi
                )
            )
        return results

    def fetch_payloads(self, ids: "Sequence[int]") -> "dict[int, bytes]":
        """Fetch and decrypt the full documents for (matched) ids."""
        self._require_uploaded()
        if not ids:
            return {}
        response = msg.parse_reply(
            self._transport(
                msg.FetchPayloads(self._records_id, list(ids)).to_frame()
            )
        )
        return {
            rid: self._scheme.decrypt_payload(blob)
            for rid, blob in response.entries
        }

    def retire(self) -> None:
        """Ask the server to delete the index (e.g. after consolidation).

        Idempotent: a no-op when nothing was ever uploaded (or it was
        already retired).  A server-side refusal (an ``ErrorResponse``
        over the network transport) raises and leaves the client
        attached — silently dropping it would leak the encrypted index
        on the server forever.
        """
        if not self._uploaded:
            return
        for handle in self._index_ids.values():
            response = self._transport(msg.DropIndex(handle).to_frame())
            if response is not None:
                msg.parse_reply(response)
        self._uploaded = False

    # -- protocol plumbing ---------------------------------------------------------

    def _require_uploaded(self) -> None:
        if not self._uploaded:
            raise IndexStateError("call outsource() before querying")

    def _search_round(self, handle: int, token):
        """One SearchRequest round-trip; returns (response, seconds, bytes)."""
        frame = msg.SearchRequest(
            handle, token.wire_kind, token.wire_tokens()
        ).to_frame()
        t0 = time.perf_counter()
        response_frame = self._transport(frame)
        elapsed = time.perf_counter() - t0
        return (
            msg.parse_reply(response_frame),
            elapsed,
            len(response_frame),
        )

    def _multi_search_round(
        self,
        handle: int,
        kind: str,
        queries: "list[list[bytes]]",
        *,
        hint: str = "",
        trace: str = "",
    ) -> msg.MultiSearchResponse:
        """One MultiSearchRequest round-trip for a whole query batch."""
        frame = msg.MultiSearchRequest(
            handle, kind, queries, hint, trace
        ).to_frame()
        return msg.parse_reply(self._transport(frame))

    def _fetch_records(self, ids: "Sequence[int]"):
        """Fetch + decrypt tuples, returning ``{id: Record}``."""
        if not ids:
            return {}
        frame = msg.FetchRequest(self._records_id, list(ids)).to_frame()
        response = msg.parse_reply(self._transport(frame))
        records = {}
        for rid, blob in zip(ids, response.blobs):
            rec = self._scheme.decrypt_record(blob)
            records[rid] = rec
        return records

    def _finish(
        self,
        lo: int,
        hi: int,
        raw_ids: "list[int]",
        *,
        token_bytes: int,
        rounds: int,
        trapdoor_s: float,
        server_s: float,
        response_bytes: int,
    ) -> QueryOutcome:
        """Common tail: fetch candidates, refine, assemble the outcome."""
        fetch_s = 0.0
        t0 = time.perf_counter()
        # Padded Quadratic's dummy ids exist only inside the EDB;
        # filter them out before asking the server for tuples.
        fetch_ids = self._scheme.fetchable_ids(raw_ids)
        if fetch_ids:
            unique = sorted(set(fetch_ids))
            frame = msg.FetchRequest(self._records_id, unique).to_frame()
            t_fetch = time.perf_counter()
            response_frame = self._transport(frame)
            fetch_s = time.perf_counter() - t_fetch
            fetched = msg.parse_reply(response_frame)
            response_bytes += len(response_frame)
            matched = frozenset(
                rec.id
                for rec in (
                    self._scheme.decrypt_record(blob) for blob in fetched.blobs
                )
                if lo <= rec.value <= hi
            )
        else:
            matched = frozenset()
        refine_s = time.perf_counter() - t0 - fetch_s
        return QueryOutcome(
            ids=matched,
            raw_ids=tuple(raw_ids),
            false_positives=len(raw_ids) - len(matched),
            token_bytes=token_bytes,
            rounds=rounds,
            trapdoor_seconds=trapdoor_s,
            server_seconds=server_s + fetch_s,
            refine_seconds=refine_s,
            response_bytes=response_bytes,
        )

    # -- the interactive (SRC-i) protocol ------------------------------------------

    def _round1(self, lo: int, hi: int):
        """Round 1 + owner merge; returns (merged interval or None, stats)."""
        t0 = time.perf_counter()
        token1 = self._scheme.trapdoor_phase1(lo, hi)
        trapdoor_s = time.perf_counter() - t0
        response, server_s, resp_bytes = self._search_round(
            self._index_ids["edb1"], token1
        )
        t0 = time.perf_counter()
        triples = [decode_triple(p) for p in response.payloads]
        merged = self._scheme.merge_qualifying(triples, lo, hi)
        refine_s = time.perf_counter() - t0
        return merged, token1.serialized_size(), trapdoor_s, server_s, refine_s, resp_bytes

    def _interactive_outcome(self, lo: int, hi: int) -> QueryOutcome:
        merged, token_bytes, trapdoor_s, server_s, refine_s, resp_bytes = (
            self._round1(lo, hi)
        )
        if merged is None:
            return QueryOutcome(
                ids=frozenset(),
                raw_ids=(),
                false_positives=0,
                token_bytes=token_bytes,
                rounds=1,
                trapdoor_seconds=trapdoor_s,
                server_seconds=server_s,
                refine_seconds=refine_s,
                response_bytes=resp_bytes,
            )
        t0 = time.perf_counter()
        token2 = self._scheme.trapdoor_phase2(*merged)
        trapdoor_s += time.perf_counter() - t0
        response, server2_s, resp2_bytes = self._search_round(
            self._index_ids["edb2"], token2
        )
        raw_ids = [decode_id(p) for p in response.payloads]
        outcome = self._finish(
            lo,
            hi,
            raw_ids,
            token_bytes=token_bytes + token2.serialized_size(),
            rounds=2,
            trapdoor_s=trapdoor_s,
            server_s=server_s + server2_s,
            response_bytes=resp_bytes + resp2_bytes,
        )
        outcome.refine_seconds += refine_s
        return outcome

    def _interactive_raw_many(
        self,
        ranges: "Sequence[tuple[int, int]]",
        *,
        hint: str = "",
        trace: str = "",
    ) -> "list[list[int]]":
        """Two-round raw candidate ids per range (fetch left to the caller).

        Each round is one :class:`MultiSearchRequest` for the whole
        batch: round 1 covers every range on I1 at once, the owner
        merges per range, and the surviving position intervals ride a
        single round-2 frame against I2.  Round 2 necessarily waits on
        round 1 (the position intervals depend on it) — the paper's
        interactive protocol, at two transport round-trips per *batch*
        instead of two per query.
        """
        if not ranges:
            return []
        phase1_tokens = [
            self._scheme.trapdoor_phase1(lo, hi) for lo, hi in ranges
        ]
        response1 = self._multi_search_round(
            self._index_ids["edb1"],
            phase1_tokens[0].wire_kind,
            [token.wire_tokens() for token in phase1_tokens],
            hint=hint,
            trace=trace,
        )
        # Owner-side merge between the rounds; ranges whose round-1
        # answer holds nothing in range stop early with an empty result.
        phase2_tokens: list = []
        positions: "list[int]" = []
        raw_per_range: "list[list[int]]" = [[] for _ in ranges]
        for position, ((lo, hi), payloads) in enumerate(
            zip(ranges, response1.results)
        ):
            triples = [decode_triple(p) for p in payloads]
            merged = self._scheme.merge_qualifying(triples, lo, hi)
            if merged is None:
                continue
            phase2_tokens.append(self._scheme.trapdoor_phase2(*merged))
            positions.append(position)
        if phase2_tokens:
            # Round 2 carries no hint: the batch was already attributed
            # on round 1, and a second tally would double-count SRC-i
            # batches in the server's lane statistics.  The trace id
            # *does* ride again — each round is a real server-side unit
            # of work, and both span trees share the one trace id.
            response2 = self._multi_search_round(
                self._index_ids["edb2"],
                phase2_tokens[0].wire_kind,
                [token.wire_tokens() for token in phase2_tokens],
                trace=trace,
            )
            for position, payloads in zip(positions, response2.results):
                raw_per_range[position] = [decode_id(p) for p in payloads]
        return raw_per_range
