"""The owner-side client: keys stay here, only frames leave.

``RemoteRangeClient`` wraps a Logarithmic-family scheme (BRC, URC or
SRC) so that build and search run against an :class:`RsseServer` (or
anything else with a ``handle(frame) -> frame | None`` transport),
demonstrating that the library's trust boundary survives an actual
serialization seam.  The client:

1. builds the encrypted index locally, uploads it + the encrypted tuple
   store, then *drops its own copies* — after setup the owner holds
   nothing but keys;
2. turns trapdoors into :class:`~repro.protocol.messages.SearchRequest`
   frames and refines the returned ids by fetching + decrypting tuples.

The interactive SRC-i and the Constant schemes are supported through
the same message vocabulary (DPRF tokens use ``kind="dprf"``); this
client keeps to the non-interactive family for clarity, and the test
suite drives an interactive round trip manually.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.core.scheme import MultiKeywordToken, RangeScheme
from repro.errors import IndexStateError
from repro.protocol import messages as msg
from repro.sse.encoding import decode_id, decode_record

#: Transport: delivers one frame, returns the peer's response frame.
Transport = Callable[[bytes], "bytes | None"]


class RemoteRangeClient:
    """Owner endpoint running a non-interactive RSSE scheme remotely."""

    def __init__(
        self,
        scheme: RangeScheme,
        transport: Transport,
        *,
        index_id: "int | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        self._scheme = scheme
        self._transport = transport
        rng = rng if rng is not None else random.SystemRandom()
        self.index_id = index_id if index_id is not None else rng.randrange(1 << 62)
        self._uploaded = False

    # -- setup -------------------------------------------------------------------

    def outsource(self, records: "Iterable[tuple]") -> None:
        """Build locally, upload EDB + encrypted tuples, forget local copies."""
        self._scheme.build_index(records)
        edb = self._scheme._index  # Logarithmic-family single index
        if edb is None:
            raise IndexStateError("scheme did not build an index")
        self._transport(msg.UploadIndex(self.index_id, edb.to_bytes()).to_frame())
        entries = list(self._scheme._encrypted_store.items())
        self._transport(msg.UploadRecords(self.index_id, entries).to_frame())
        # The owner keeps keys only: drop the local EDB and tuple store.
        self._scheme._index = None
        self._scheme._encrypted_store = {}
        self._uploaded = True

    # -- query --------------------------------------------------------------------

    def query(self, lo: int, hi: int) -> "frozenset[int]":
        """Full remote protocol: trapdoor → search frame → fetch → refine."""
        if not self._uploaded:
            raise IndexStateError("call outsource() before querying")
        token = self._scheme.trapdoor(lo, hi)
        raw_tokens = [
            kw.label_key + kw.value_key for kw in self._iter_keyword_tokens(token)
        ]
        response_frame = self._transport(
            msg.SearchRequest(self.index_id, "sse", raw_tokens).to_frame()
        )
        response = msg.parse_message(response_frame)
        ids = [decode_id(p) for p in response.payloads]
        if not ids:
            return frozenset()
        fetch_frame = self._transport(
            msg.FetchRequest(self.index_id, ids).to_frame()
        )
        fetched = msg.parse_message(fetch_frame)
        matched = set()
        for blob in fetched.blobs:
            rid, value = decode_record(self._scheme._record_cipher.decrypt(blob))
            if lo <= value <= hi:
                matched.add(rid)
        return frozenset(matched)

    def retire(self) -> None:
        """Ask the server to delete the index (e.g. after consolidation)."""
        self._transport(msg.DropIndex(self.index_id).to_frame())
        self._uploaded = False

    @staticmethod
    def _iter_keyword_tokens(token: MultiKeywordToken):
        if not isinstance(token, MultiKeywordToken):
            raise IndexStateError(
                "RemoteRangeClient supports the non-interactive keyword-token "
                "schemes (Logarithmic-BRC/URC/SRC, Quadratic)"
            )
        return iter(token)
