"""Remote clients for the schemes the basic client cannot drive.

:class:`RemoteConstantClient` ships DPRF delegation tokens over the
wire (``kind="dprf"``): the server expands GGM seeds itself, so a
Constant-scheme owner transmits only ``O(log R)`` seeds per query.

:class:`RemoteSrcIClient` runs Logarithmic-SRC-i's two-round protocol
across the serialization boundary: round 1 queries the domain-side
index, the owner refines and merges position ranges locally, round 2
queries the position-side index — exactly the message flow of paper
Figure 4, with each round a single
:class:`~repro.protocol.messages.SearchRequest` frame.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.constant import ConstantScheme
from repro.core.log_src_i import LogarithmicSrcI
from repro.errors import IndexStateError
from repro.protocol import messages as msg
from repro.protocol.client import Transport
from repro.sse.encoding import decode_id, decode_record, decode_triple


class RemoteConstantClient:
    """Owner endpoint for Constant-BRC/URC over the wire protocol."""

    def __init__(
        self,
        scheme: ConstantScheme,
        transport: Transport,
        *,
        index_id: "int | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        if not isinstance(scheme, ConstantScheme):
            raise IndexStateError("RemoteConstantClient requires a Constant scheme")
        self._scheme = scheme
        self._transport = transport
        rng = rng if rng is not None else random.SystemRandom()
        self.index_id = index_id if index_id is not None else rng.randrange(1 << 62)
        self._uploaded = False

    def outsource(self, records: "Iterable[tuple]") -> None:
        """Build locally, upload, drop local EDB and tuple store."""
        self._scheme.build_index(records)
        self._transport(
            msg.UploadIndex(self.index_id, self._scheme._index.to_bytes()).to_frame()
        )
        self._transport(
            msg.UploadRecords(
                self.index_id, list(self._scheme._encrypted_store.items())
            ).to_frame()
        )
        self._scheme._index = None
        self._scheme._encrypted_store = {}
        self._uploaded = True

    def query(self, lo: int, hi: int) -> "frozenset[int]":
        """Delegate the range; the server expands and searches."""
        if not self._uploaded:
            raise IndexStateError("call outsource() before querying")
        token = self._scheme.trapdoor(lo, hi)  # guard enforced here
        wire = [t.seed + bytes([t.level]) for t in token]
        response = msg.parse_message(
            self._transport(
                msg.SearchRequest(self.index_id, "dprf", wire).to_frame()
            )
        )
        ids = [decode_id(p) for p in response.payloads]
        if not ids:
            return frozenset()
        fetched = msg.parse_message(
            self._transport(msg.FetchRequest(self.index_id, ids).to_frame())
        )
        matched = set()
        for blob in fetched.blobs:
            rid, value = decode_record(self._scheme._record_cipher.decrypt(blob))
            if lo <= value <= hi:
                matched.add(rid)
        return frozenset(matched)


class RemoteSrcIClient:
    """Owner endpoint for the interactive Logarithmic-SRC-i protocol."""

    def __init__(
        self,
        scheme: LogarithmicSrcI,
        transport: Transport,
        *,
        index_id_1: "int | None" = None,
        index_id_2: "int | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        if not isinstance(scheme, LogarithmicSrcI):
            raise IndexStateError("RemoteSrcIClient requires Logarithmic-SRC-i")
        self._scheme = scheme
        self._transport = transport
        rng = rng if rng is not None else random.SystemRandom()
        self.index_id_1 = (
            index_id_1 if index_id_1 is not None else rng.randrange(1 << 62)
        )
        self.index_id_2 = (
            index_id_2 if index_id_2 is not None else rng.randrange(1 << 62)
        )
        self._uploaded = False

    def outsource(self, records: "Iterable[tuple]") -> None:
        """Build both indexes locally, upload, drop local copies."""
        self._scheme.build_index(records)
        self._transport(
            msg.UploadIndex(self.index_id_1, self._scheme._index1.to_bytes()).to_frame()
        )
        self._transport(
            msg.UploadIndex(self.index_id_2, self._scheme._index2.to_bytes()).to_frame()
        )
        self._transport(
            msg.UploadRecords(
                self.index_id_2, list(self._scheme._encrypted_store.items())
            ).to_frame()
        )
        self._scheme._index1 = None
        self._scheme._index2 = None
        self._scheme._encrypted_store = {}
        self._uploaded = True

    def query(self, lo: int, hi: int) -> "frozenset[int]":
        """Two wire rounds + fetch, with owner-side refinement between."""
        if not self._uploaded:
            raise IndexStateError("call outsource() before querying")
        # Round 1: SRC token on the domain TDAG → (value, positions) docs.
        token1 = self._scheme.trapdoor_phase1(lo, hi)
        wire1 = [kw.label_key + kw.value_key for kw in token1]
        response1 = msg.parse_message(
            self._transport(
                msg.SearchRequest(self.index_id_1, "sse", wire1).to_frame()
            )
        )
        triples = [decode_triple(p) for p in response1.payloads]
        merged = self._scheme.merge_qualifying(triples, lo, hi)
        if merged is None:
            return frozenset()
        # Round 2: SRC token on the position TDAG → tuple ids.
        token2 = self._scheme.trapdoor_phase2(*merged)
        wire2 = [kw.label_key + kw.value_key for kw in token2]
        response2 = msg.parse_message(
            self._transport(
                msg.SearchRequest(self.index_id_2, "sse", wire2).to_frame()
            )
        )
        ids = [decode_id(p) for p in response2.payloads]
        if not ids:
            return frozenset()
        fetched = msg.parse_message(
            self._transport(msg.FetchRequest(self.index_id_2, ids).to_frame())
        )
        matched = set()
        for blob in fetched.blobs:
            rid, value = decode_record(self._scheme._record_cipher.decrypt(blob))
            if lo <= value <= hi:
                matched.add(rid)
        return frozenset(matched)
