"""Scheme-specialized remote clients (compatibility façades).

:class:`~repro.protocol.client.RemoteRangeClient` now drives every
scheme family through public scheme APIs; these subclasses survive as
type-checked entry points with the historical constructor signatures:

:class:`RemoteConstantClient` ships DPRF delegation tokens over the
wire (``kind="dprf"``): the server expands GGM seeds itself, so a
Constant-scheme owner transmits only ``O(log R)`` seeds per query.

:class:`RemoteSrcIClient` runs Logarithmic-SRC-i's two-round protocol
across the serialization boundary: round 1 queries the domain-side
index, the owner refines and merges position ranges locally, round 2
queries the position-side index — exactly the message flow of paper
Figure 4, with each round a single
:class:`~repro.protocol.messages.SearchRequest` frame.
"""

from __future__ import annotations

import random

from repro.core.constant import ConstantScheme
from repro.core.log_src_i import LogarithmicSrcI
from repro.errors import IndexStateError
from repro.protocol.client import RemoteRangeClient, Transport


class RemoteConstantClient(RemoteRangeClient):
    """Owner endpoint for Constant-BRC/URC over the wire protocol."""

    def __init__(
        self,
        scheme: ConstantScheme,
        transport: Transport,
        *,
        index_id: "int | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        if not isinstance(scheme, ConstantScheme):
            raise IndexStateError("RemoteConstantClient requires a Constant scheme")
        super().__init__(scheme, transport, index_id=index_id, rng=rng)


class RemoteSrcIClient(RemoteRangeClient):
    """Owner endpoint for the interactive Logarithmic-SRC-i protocol."""

    def __init__(
        self,
        scheme: LogarithmicSrcI,
        transport: Transport,
        *,
        index_id_1: "int | None" = None,
        index_id_2: "int | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        if not isinstance(scheme, LogarithmicSrcI):
            raise IndexStateError("RemoteSrcIClient requires Logarithmic-SRC-i")
        super().__init__(scheme, transport, index_id=index_id_1, rng=rng)
        if index_id_2 is not None:
            self._index_ids["edb2"] = index_id_2
        self.index_id_1 = self._index_ids["edb1"]
        self.index_id_2 = self._index_ids["edb2"]
