"""Access-pattern analysis: the residual risk SSE-style leakage carries.

The paper is explicit that SSE (and hence RSSE) "relaxes the security of
ORAM by leaking the access patterns of each query".  This module
measures what that relaxation costs in the known-data threat model
(the standard setting of access-pattern attacks à la Islam et al.): an
adversary who knows the plaintext dataset observes which tuple ids a
query touched and tries to identify the query.

For Logarithmic-SRC this is particularly crisp: every query is one TDAG
node, and the observed id set is exactly the node's bucket — so the
adversary just matches buckets.  :func:`src_query_identification`
returns, per observed query, the set of TDAG nodes consistent with the
observation; :func:`identification_ambiguity` summarizes how many
queries were pinned to a unique node.

This is deliberately an *upper-bound honesty check*, not a break: the
paper's security claims hold (the leakage is exactly as formulated);
what the numbers show is why access-pattern leakage must be priced in
when choosing parameters — and the tests show the countermeasure
direction (heavier buckets/smaller domains = more ambiguity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.covers.tdag import Tdag, TdagNode


@dataclass
class IdentificationReport:
    """Outcome of a query-identification attempt over a trace."""

    #: Per observed query: TDAG nodes whose bucket matches exactly.
    candidates: "list[list[TdagNode]]"

    @property
    def uniquely_identified(self) -> int:
        """Queries pinned to exactly one possible cover node."""
        return sum(1 for c in self.candidates if len(c) == 1)

    @property
    def unidentified(self) -> int:
        """Queries matching no node (should be 0 for honest traces)."""
        return sum(1 for c in self.candidates if not c)

    @property
    def mean_ambiguity(self) -> float:
        """Average candidate-set size (higher = safer)."""
        if not self.candidates:
            return 0.0
        return sum(len(c) for c in self.candidates) / len(self.candidates)


def _node_bucket(
    node: TdagNode, by_value: "dict[int, list[int]]", domain_size: int
) -> "frozenset[int]":
    ids: list[int] = []
    for value in range(node.lo, min(node.hi, domain_size - 1) + 1):
        ids.extend(by_value.get(value, ()))
    return frozenset(ids)


def src_query_identification(
    records: "Sequence[tuple[int, int]]",
    domain_size: int,
    observed_id_sets: "Sequence[frozenset]",
) -> IdentificationReport:
    """Known-data attack on Logarithmic-SRC access patterns.

    Enumerates every TDAG node (regular and injected) and keeps those
    whose bucket equals each observed id set.  Exact enumeration, so
    meant for analysis-scale domains (the tests use ≤ 2^12).
    """
    tdag = Tdag(domain_size)
    by_value: dict[int, list[int]] = {}
    for doc_id, value in records:
        by_value.setdefault(value, []).append(doc_id)
    # Precompute bucket -> nodes over the whole TDAG.
    buckets: dict[frozenset, list[TdagNode]] = {}
    for level in range(tdag.height + 1):
        for index in range(1 << (tdag.height - level)):
            node = TdagNode(level, index)
            buckets.setdefault(
                _node_bucket(node, by_value, domain_size), []
            ).append(node)
        for index in range(tdag.injected_count(level)):
            node = TdagNode(level, index, injected=True)
            buckets.setdefault(
                _node_bucket(node, by_value, domain_size), []
            ).append(node)
    candidates = [list(buckets.get(frozenset(obs), [])) for obs in observed_id_sets]
    return IdentificationReport(candidates)


def identification_ambiguity(
    records: "Sequence[tuple[int, int]]",
    domain_size: int,
    queries: "Sequence[tuple[int, int]]",
) -> IdentificationReport:
    """Convenience: simulate the SRC access patterns for ``queries`` and
    run :func:`src_query_identification` on them."""
    tdag = Tdag(domain_size)
    by_value: dict[int, list[int]] = {}
    for doc_id, value in records:
        by_value.setdefault(value, []).append(doc_id)
    observed = [
        _node_bucket(tdag.src_cover(lo, hi), by_value, domain_size)
        for lo, hi in queries
    ]
    return src_query_identification(records, domain_size, observed)
