"""Attacks on the prior-work baselines (OPE, DET bucketization).

The paper's core argument against the prior art is that its leakage is
*exploitable*, not just formally larger.  These attacks make that
concrete, operating strictly on what the honest-but-curious server
stores:

- :func:`ope_rank_attack` — from an OPE index's ciphertext array alone,
  estimate every tuple's plaintext by rank/scale inversion; reports the
  rank correlation (always 1.0 — order leaks perfectly) and the mean
  relative value error (small for near-uniform data).
- :func:`det_histogram_attack` — from a DET-bucket index's occupancy
  counts plus a public reference distribution (the classic auxiliary-
  knowledge assumption), align buckets to domain positions and estimate
  per-bucket value ranges; reports the fraction of tuples whose bucket
  is correctly localized.

Contrast: an RSSE index offers *nothing at rest* — before any query the
EDB is pseudorandom labels and ciphertexts, so both attacks are
information-theoretically empty against it (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class OpeAttackResult:
    """What the OPE adversary recovered."""

    #: Spearman rank correlation between true values and estimates
    #: (1.0 = total order fully recovered).
    rank_correlation: float
    #: Mean |estimate - true| / domain_size over all tuples.
    mean_relative_error: float


def ope_rank_attack(
    ciphertexts: "list[int]",
    cipher_space: int,
    domain_size: int,
    true_values_in_ct_order: "list[int]",
) -> OpeAttackResult:
    """Estimate plaintexts from OPE ciphertexts by linear inversion.

    The attacker knows the public parameters (domain and ciphertext
    space sizes — they are not secret) and scales each ciphertext back:
    ``estimate = ct / N * m``.  Because OPE is monotone, the estimates'
    *order* is exactly the plaintext order; for data that is roughly
    uniform the absolute estimates land close too.
    """
    cts = np.asarray(ciphertexts, dtype=float)
    truth = np.asarray(true_values_in_ct_order, dtype=float)
    if len(cts) == 0:
        return OpeAttackResult(0.0, 0.0)
    estimates = cts / cipher_space * domain_size
    # Spearman via rank vectors (scipy-free; ties broken by position).
    def ranks(a):
        order = np.argsort(a, kind="stable")
        out = np.empty(len(a))
        out[order] = np.arange(len(a))
        return out

    r_est, r_true = ranks(estimates), ranks(truth)
    if np.std(r_est) == 0 or np.std(r_true) == 0:
        correlation = 1.0 if np.array_equal(r_est, r_true) else 0.0
    else:
        correlation = float(np.corrcoef(r_est, r_true)[0, 1])
    error = float(np.mean(np.abs(estimates - truth)) / domain_size)
    return OpeAttackResult(correlation, error)


@dataclass
class DetAttackResult:
    """What the DET-bucket adversary recovered."""

    #: Fraction of tuples assigned to the correct bucket position.
    localization_accuracy: float
    #: L1 distance between the recovered and true (sorted) histograms,
    #: normalized by n.  0 = histogram shape fully disclosed.
    histogram_distance: float


def det_histogram_attack(
    occupancies_by_tag: "list[int]",
    reference_histogram: "list[int]",
) -> DetAttackResult:
    """Match observed bucket occupancies against auxiliary knowledge.

    Model: the adversary holds a public reference distribution over the
    same bucketization (census data, a leaked sibling dataset, …) and
    matches the observed occupancy multiset to reference buckets by
    sorted-order alignment — the standard frequency-analysis attack on
    deterministic encryption.

    ``localization_accuracy`` counts tuples whose tag was matched to the
    reference bucket of the same rank position; with a faithful
    reference this approaches 1 for skewed data (distinct frequencies
    are unambiguous) and degrades only when occupancies tie.
    """
    observed = np.asarray(occupancies_by_tag, dtype=float)
    reference = np.asarray(reference_histogram, dtype=float)
    n = observed.sum()
    if n == 0:
        return DetAttackResult(0.0, 0.0)
    # Histogram shape disclosure: compare sorted occupancy multisets.
    k = max(len(observed), len(reference))
    obs_sorted = np.sort(np.pad(observed, (0, k - len(observed))))[::-1]
    ref_sorted = np.sort(np.pad(reference, (0, k - len(reference))))[::-1]
    distance = float(np.abs(obs_sorted - ref_sorted).sum() / max(n, 1))
    # Localization: align by frequency rank; a tuple is localized when
    # its bucket's rank position is unambiguous (unique occupancy).
    localized = 0.0
    unique, counts = np.unique(observed, return_counts=True)
    ambiguous = {int(v) for v, c in zip(unique, counts) if c > 1}
    for occ in observed:
        if int(occ) not in ambiguous:
            localized += occ
    return DetAttackResult(float(localized / n), distance)


def edb_at_rest_attack(index_bytes: bytes) -> OpeAttackResult:
    """The same adversary pointed at an RSSE EDB: nothing to invert.

    The EDB serialization is pseudorandom labels + ciphertexts; there is
    no monotone structure to scale back, so the attack degenerates to a
    constant estimator.  Returned as an :class:`OpeAttackResult` with
    zero correlation for symmetric comparison in reports.
    """
    return OpeAttackResult(rank_correlation=0.0, mean_relative_error=0.5)
