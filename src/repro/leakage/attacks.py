"""Adversarial analysis: what the formulated leakages actually surrender.

The paper ranks its schemes by security level (Table 1) with qualitative
arguments — Constant-* reveals in-subtree order, Logarithmic-BRC/URC
reveal only result partitioning, the SRC family hides even that.  This
module turns the ranking into *measured* quantities, by running honest
leakage-only adversaries:

- :func:`order_reconstruction` — from Constant-* leakage, recover ordered
  id pairs using the disclosed per-subtree ``idmap`` offsets.
- :func:`group_order_reconstruction` — from Logarithmic-BRC/URC leakage,
  recover only *cross-group* ordered pairs implied when the same token
  (node alias) recurs across queries and BRC's left-to-right structure
  is combined with range endpoints known to the adversary... which it is
  **not** under the scheme's model; what remains observable is the
  partition structure itself, measured as distinguishable-pair counts.
- :func:`partition_entropy` — how much the result partitioning refines
  the adversary's knowledge (0 bits for SRC single groups).

The test suite asserts the strict ordering the paper claims:
``recoverable(Constant) ≥ recoverable(Logarithmic) ≥ recoverable(SRC) = 0``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.leakage.profiles import QueryLeakage


def order_reconstruction(trace: "Sequence[QueryLeakage]") -> "set[tuple[int, int]]":
    """Ordered id pairs ``(i, j)`` (i strictly before j) an adversary
    recovers from Constant-style ``idmap`` disclosures.

    Within one disclosed subtree the offsets give a total preorder of
    the ids it contains; pairs at equal offsets stay incomparable.
    """
    pairs: set[tuple[int, int]] = set()
    for query in trace:
        for node in query.nodes:
            if not node.id_offsets:
                continue
            items = sorted(node.id_offsets.items(), key=lambda kv: kv[1])
            for a in range(len(items)):
                for b in range(a + 1, len(items)):
                    if items[a][1] < items[b][1]:
                        pairs.add((items[a][0], items[b][0]))
    return pairs


def group_order_reconstruction(
    trace: "Sequence[QueryLeakage]",
) -> "set[tuple[frozenset, frozenset]]":
    """Distinguishable (unordered) group pairs from result partitioning.

    Logarithmic-BRC/URC queries split the result into per-subtree groups.
    The adversary cannot order the groups (tokens are permuted), but it
    learns which ids travel together — each pair of distinct groups in
    one query is a unit of structural information SRC would have hidden.
    """
    pairs: set[tuple[frozenset, frozenset]] = set()
    for query in trace:
        groups = [frozenset(node.ids) for node in query.nodes if node.ids]
        for a in range(len(groups)):
            for b in range(a + 1, len(groups)):
                if groups[a] != groups[b]:
                    key = tuple(sorted((groups[a], groups[b]), key=sorted))
                    pairs.add(key)  # type: ignore[arg-type]
    return pairs


def ordered_pair_accuracy(
    pairs: "set[tuple[int, int]]", records: "Sequence[tuple[int, int]]"
) -> float:
    """Fraction of recovered ordered pairs consistent with the true order.

    Sanity meter for :func:`order_reconstruction`: a sound attack on
    correct leakage must score 1.0 (every claimed pair is truly ordered).
    """
    if not pairs:
        return 1.0
    value_of = {doc_id: value for doc_id, value in records}
    correct = sum(1 for i, j in pairs if value_of[i] < value_of[j])
    return correct / len(pairs)


def partition_entropy(trace: "Sequence[QueryLeakage]") -> float:
    """Average per-query entropy (bits) of the result partitioning.

    For each query with result ids split into groups of sizes
    ``g_1 … g_k``, the partition reveals ``log2(multinomial)`` bits
    relative to an unpartitioned answer.  SRC queries have k = 1 and
    contribute exactly 0 bits.
    """
    if not trace:
        return 0.0
    total = 0.0
    for query in trace:
        sizes = [len(node.ids) for node in query.nodes if node.ids]
        n = sum(sizes)
        if n == 0 or len(sizes) <= 1:
            continue
        bits = math.lgamma(n + 1)
        for size in sizes:
            bits -= math.lgamma(size + 1)
        total += bits / math.log(2)
    return total / len(trace)


def distinct_value_disclosure(trace: "Sequence[QueryLeakage]") -> "list[int]":
    """Per-query count of distinct values betrayed by SRC-i's round 1.

    For SRC-i traces the access pattern of round 1 reveals, per query,
    how many distinct domain values lie under the domain-side cover —
    information the single-index SRC never surrenders.  Returns the
    per-query counts (callers compare against SRC's constant 0).
    """
    return [len(q.nodes) and len({id_ for n in q.nodes for id_ in n.ids}) for q in trace]
