"""Leakage functions L1/L2 of every scheme, as executable code.

The paper's security methodology is: *formulate the leakage precisely,
then prove a simulator needs nothing else*.  This module implements the
leakage functions themselves — pure functions of the plaintext dataset
and the query trace, exactly what the simulator in the ideal game
receives.  They are deliberately computed **without** touching any
ciphertext: leakage is a property of (D, A, W), not of a particular
encryption run.

Having leakage as data lets the test suite check the paper's qualitative
claims mechanically (e.g. "Logarithmic-SRC reveals no result
partitioning", "URC token multisets depend only on R") and lets
:mod:`repro.leakage.attacks` quantify what an adversary extracts.

Node aliasing: the leakage reveals a *pseudonym* per index node, stable
across the trace (that is how search patterns on structure arise), but
never the node's position.  We model aliases as dense integers in first-
seen order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.covers.brc import best_range_cover
from repro.covers.tdag import Tdag
from repro.covers.urc import uniform_range_cover
from repro.crypto.dprf import COVER_BRC, COVER_URC


@dataclass(frozen=True)
class L1Profile:
    """Setup-time leakage: what the index alone reveals."""

    scheme: str
    n: int
    m: int
    #: SRC-i only: the size of I1 reveals the distinct-value count.
    distinct_values: "int | None" = None


@dataclass
class NodeDisclosure:
    """Per-cover-node structural leakage of one query.

    ``alias`` is the node pseudonym; ``level`` its height (Constant
    schemes disclose it; Logarithmic ones do not need to); ``ids`` the
    result ids in the node's group; ``id_offsets`` — Constant only — the
    exact mapping of ids to leaf offsets *within* the node's subtree,
    the paper's ``idmap`` leakage that reveals relative order.
    """

    alias: int
    level: "int | None"
    ids: "tuple[int, ...]"
    id_offsets: "dict[int, int] | None" = None


@dataclass
class QueryLeakage:
    """L2 leakage of a single range query."""

    #: Access pattern α: the ids the query returns (as the server sees).
    access_pattern: "tuple[int, ...]"
    #: Search pattern σ: index of the first identical earlier query, or
    #: None when fresh.  (For SRC schemes, equality is at token level:
    #: different ranges mapping to the same cover node *do* repeat.)
    repeats_query: "int | None"
    #: Structural disclosure per covering node.
    nodes: "list[NodeDisclosure]" = field(default_factory=list)


class _AliasTable:
    """Dense pseudonyms for nodes, in first-seen order."""

    def __init__(self) -> None:
        self._table: dict = {}

    def alias(self, key) -> int:
        if key not in self._table:
            self._table[key] = len(self._table)
        return self._table[key]


def _search_pattern(history: "list", key) -> "int | None":
    for i, earlier in enumerate(history):
        if earlier == key:
            return i
    return None


# ---------------------------------------------------------------------------
# Per-scheme leakage functions
# ---------------------------------------------------------------------------


def constant_leakage(
    records: Sequence, domain_size: int, queries: Sequence, cover: str = COVER_BRC
) -> "tuple[L1Profile, list[QueryLeakage]]":
    """L1/L2 of Constant-BRC/URC (paper Section 5).

    The heavy disclosure: for every cover node, the *exact mapping* of
    result ids to leaf positions inside the node's subtree — relative
    order within each subtree is gone.
    """
    by_value: dict[int, list[int]] = {}
    for doc_id, value in records:
        by_value.setdefault(value, []).append(doc_id)
    aliases = _AliasTable()
    trace: list[QueryLeakage] = []
    history: list = []
    cover_fn = best_range_cover if cover == COVER_BRC else uniform_range_cover
    for lo, hi in queries:
        nodes = []
        all_ids: list[int] = []
        for node in cover_fn(lo, hi):
            ids_here: list[int] = []
            offsets: dict[int, int] = {}
            for value in range(node.lo, node.hi + 1):
                for doc_id in by_value.get(value, ()):
                    ids_here.append(doc_id)
                    offsets[doc_id] = value - node.lo
            nodes.append(
                NodeDisclosure(
                    alias=aliases.alias(("c", node.level, node.index)),
                    level=node.level,
                    ids=tuple(ids_here),
                    id_offsets=offsets,
                )
            )
            all_ids.extend(ids_here)
        trace.append(
            QueryLeakage(
                access_pattern=tuple(all_ids),
                repeats_query=_search_pattern(history, (lo, hi)),
                nodes=nodes,
            )
        )
        history.append((lo, hi))
    return L1Profile("constant-" + cover, len(records), domain_size), trace


def logarithmic_leakage(
    records: Sequence, domain_size: int, queries: Sequence, cover: str = COVER_BRC
) -> "tuple[L1Profile, list[QueryLeakage]]":
    """L1/L2 of Logarithmic-BRC/URC (Section 6.1).

    Only the *partitioning* of result ids into per-subtree groups leaks;
    within a group, ids are randomly permuted — no offsets.
    """
    by_value: dict[int, list[int]] = {}
    for doc_id, value in records:
        by_value.setdefault(value, []).append(doc_id)
    aliases = _AliasTable()
    trace: list[QueryLeakage] = []
    history: list = []
    cover_fn = best_range_cover if cover == COVER_BRC else uniform_range_cover
    for lo, hi in queries:
        nodes = []
        all_ids: list[int] = []
        for node in cover_fn(lo, hi):
            ids_here = [
                doc_id
                for value in range(node.lo, node.hi + 1)
                for doc_id in by_value.get(value, ())
            ]
            nodes.append(
                NodeDisclosure(
                    alias=aliases.alias(("l", node.level, node.index)),
                    level=None,
                    ids=tuple(sorted(ids_here)),  # group content, unordered
                )
            )
            all_ids.extend(ids_here)
        trace.append(
            QueryLeakage(
                access_pattern=tuple(sorted(all_ids)),
                repeats_query=_search_pattern(history, (lo, hi)),
                nodes=nodes,
            )
        )
        history.append((lo, hi))
    return L1Profile("logarithmic-" + cover, len(records), domain_size), trace


def src_leakage(
    records: Sequence, domain_size: int, queries: Sequence
) -> "tuple[L1Profile, list[QueryLeakage]]":
    """L2 of Logarithmic-SRC (Section 6.2): pure single-keyword SSE.

    One node per query, one unordered id set (including the false
    positives — the access pattern is what the server returns).  The
    subtle extra: two *different* ranges covered by the same TDAG node
    produce the same token, modeled by keying the search pattern on the
    cover node rather than the range.
    """
    tdag = Tdag(domain_size)
    by_value: dict[int, list[int]] = {}
    for doc_id, value in records:
        by_value.setdefault(value, []).append(doc_id)
    aliases = _AliasTable()
    trace: list[QueryLeakage] = []
    history: list = []
    for lo, hi in queries:
        node = tdag.src_cover(lo, hi)
        ids_here = sorted(
            doc_id
            for value in range(node.lo, min(node.hi, domain_size - 1) + 1)
            for doc_id in by_value.get(value, ())
        )
        key = (node.injected, node.level, node.index)
        trace.append(
            QueryLeakage(
                access_pattern=tuple(ids_here),
                repeats_query=_search_pattern(history, key),
                nodes=[
                    NodeDisclosure(
                        alias=aliases.alias(key), level=None, ids=tuple(ids_here)
                    )
                ],
            )
        )
        history.append(key)
    return L1Profile("logarithmic-src", len(records), domain_size), trace


def src_i_leakage(
    records: Sequence, domain_size: int, queries: Sequence
) -> "tuple[L1Profile, list[QueryLeakage]]":
    """L1/L2 of Logarithmic-SRC-i (Section 6.3).

    Two independent SSE instances leak independently; additionally the
    size of I1 reveals the dataset's distinct-value count and each round-1
    answer reveals the distinct-value count under the cover.  Position
    information within TDAG2 is still hidden (ids per node, unordered).
    """
    tdag1 = Tdag(domain_size)
    values_sorted = sorted(value for _, value in records)
    by_value: dict[int, list[int]] = {}
    for doc_id, value in records:
        by_value.setdefault(value, []).append(doc_id)
    distinct = sorted(by_value)
    aliases = _AliasTable()
    trace: list[QueryLeakage] = []
    history: list = []
    for lo, hi in queries:
        node1 = tdag1.src_cover(lo, hi)
        distinct_under_cover = [
            v for v in distinct if node1.lo <= v <= node1.hi
        ]
        # Round 2: ids under the position cover (superset of the result).
        qualifying = [v for v in distinct_under_cover if lo <= v <= hi]
        round2_ids: list[int] = []
        if qualifying:
            # Contiguous position interval of qualifying values, then the
            # SRC cover over positions; the leaked ids are the tuples in
            # the covered position window.
            positions: dict[int, tuple[int, int]] = {}
            cursor = 0
            for v in distinct:
                count = len(by_value[v])
                positions[v] = (cursor, cursor + count - 1)
                cursor += count
            pos_lo = min(positions[v][0] for v in qualifying)
            pos_hi = max(positions[v][1] for v in qualifying)
            tdag2 = Tdag(max(1, len(records)))
            node2 = tdag2.src_cover(pos_lo, pos_hi)
            window_lo, window_hi = node2.lo, min(node2.hi, len(records) - 1)
            # Which values occupy the window:
            round2_ids = sorted(
                doc_id
                for v in distinct
                if positions[v][1] >= window_lo and positions[v][0] <= window_hi
                for doc_id in by_value[v]
            )
        key1 = ("i1", node1.injected, node1.level, node1.index)
        trace.append(
            QueryLeakage(
                access_pattern=tuple(round2_ids),
                repeats_query=_search_pattern(history, key1),
                nodes=[
                    NodeDisclosure(
                        alias=aliases.alias(key1),
                        level=None,
                        ids=tuple(round2_ids),
                        id_offsets=None,
                    )
                ],
            )
        )
        history.append(key1)
    return (
        L1Profile(
            "logarithmic-src-i", len(records), domain_size, distinct_values=len(distinct)
        ),
        trace,
    )
