"""Leakage accounting: L1/L2 profiles and leakage-only adversaries."""

from repro.leakage.access_pattern import (
    IdentificationReport,
    identification_ambiguity,
    src_query_identification,
)
from repro.leakage.baseline_attacks import (
    DetAttackResult,
    OpeAttackResult,
    det_histogram_attack,
    edb_at_rest_attack,
    ope_rank_attack,
)
from repro.leakage.attacks import (
    distinct_value_disclosure,
    group_order_reconstruction,
    order_reconstruction,
    ordered_pair_accuracy,
    partition_entropy,
)
from repro.leakage.profiles import (
    L1Profile,
    NodeDisclosure,
    QueryLeakage,
    constant_leakage,
    logarithmic_leakage,
    src_i_leakage,
    src_leakage,
)

__all__ = [
    "DetAttackResult",
    "IdentificationReport",
    "L1Profile",
    "identification_ambiguity",
    "src_query_identification",
    "OpeAttackResult",
    "det_histogram_attack",
    "edb_at_rest_attack",
    "ope_rank_attack",
    "NodeDisclosure",
    "QueryLeakage",
    "constant_leakage",
    "distinct_value_disclosure",
    "group_order_reconstruction",
    "logarithmic_leakage",
    "order_reconstruction",
    "ordered_pair_accuracy",
    "partition_entropy",
    "src_i_leakage",
    "src_leakage",
]
