"""Synthetic dataset generators standing in for the paper's real data.

The paper evaluates on two datasets whose *distribution shapes* drive
every experiment:

- **Gowalla** (geo-social check-ins): timestamps over a huge domain
  (~1.03e8), ~95% of values distinct — effectively near-uniform.
- **USPS** (employee salaries): domain 276,840, only ~5% distinct values
  — heavy clustering/skew.

Neither raw dataset ships here (proprietary scraping / dead links), so
:func:`gowalla_like` and :func:`usps_like` synthesize datasets with the
same two controlling properties — domain size and distinct-value
fraction (plus skew of the cluster masses) — which is what Figures 5–7
and Table 2 exercise.  See DESIGN.md §5 for the substitution rationale.

All generators take an explicit seed and return ``(id, value)`` lists
with ids ``0 … n-1`` in shuffled value order.
"""

from __future__ import annotations

import random

import numpy as np

#: Domain sizes mirroring the paper (scaled Gowalla keeps 2^27 ≈ 1.3e8).
GOWALLA_DOMAIN = 103_017_914
USPS_DOMAIN = 276_841


def _materialize(values: "list[int]", rng: "random.Random") -> "list[tuple[int, int]]":
    """Attach shuffled ids so id order carries no value information."""
    records = [(i, int(v)) for i, v in enumerate(values)]
    rng.shuffle(records)
    return [(doc_id, value) for doc_id, (_, value) in zip(range(len(records)), records)]


def uniform(n: int, domain_size: int, *, seed: int = 0) -> "list[tuple[int, int]]":
    """n values drawn uniformly at random from the domain."""
    rng = random.Random(seed)
    return _materialize([rng.randrange(domain_size) for _ in range(n)], rng)


def with_distinct_fraction(
    n: int,
    domain_size: int,
    distinct_frac: float,
    *,
    skew: float = 0.0,
    seed: int = 0,
) -> "list[tuple[int, int]]":
    """n values with ≈ ``distinct_frac·n`` distinct values.

    A pool of ``round(distinct_frac·n)`` distinct values is sampled
    uniformly from the domain; each pool value appears at least once and
    the remaining draws are distributed over the pool either uniformly
    (``skew=0``) or Zipf-weighted with exponent ``skew`` — reproducing
    the clustered-salary shape of USPS when skewed.
    """
    if not 0.0 < distinct_frac <= 1.0:
        raise ValueError(f"distinct_frac must be in (0, 1], got {distinct_frac}")
    rng = random.Random(seed)
    pool_size = max(1, min(domain_size, round(distinct_frac * n)))
    if pool_size >= domain_size:
        pool = list(range(domain_size))
    else:
        pool = rng.sample(range(domain_size), pool_size)
    values = list(pool)  # each distinct value occurs at least once
    extra = n - len(values)
    if extra > 0:
        if skew > 0.0:
            weights = np.arange(1, pool_size + 1, dtype=float) ** (-skew)
            weights /= weights.sum()
            rng_np = np.random.default_rng(seed + 1)
            draws = rng_np.choice(pool_size, size=extra, p=weights)
            values.extend(pool[int(i)] for i in draws)
        else:
            values.extend(rng.choice(pool) for _ in range(extra))
    return _materialize(values[:n], rng)


def gowalla_like(
    n: int, *, domain_size: int = GOWALLA_DOMAIN, seed: int = 0
) -> "list[tuple[int, int]]":
    """Near-uniform check-in-timestamp stand-in: ~95% distinct values."""
    return with_distinct_fraction(n, domain_size, 0.95, skew=0.0, seed=seed)


def usps_like(
    n: int, *, domain_size: int = USPS_DOMAIN, seed: int = 0
) -> "list[tuple[int, int]]":
    """Heavily skewed salary stand-in: ~5% distinct values, Zipf masses."""
    return with_distinct_fraction(n, domain_size, 0.05, skew=1.1, seed=seed)


def zipf(
    n: int, domain_size: int, *, exponent: float = 1.2, seed: int = 0
) -> "list[tuple[int, int]]":
    """Classic Zipf-over-domain generator for stress-testing skew."""
    rng_np = np.random.default_rng(seed)
    weights = np.arange(1, domain_size + 1, dtype=float) ** (-exponent)
    weights /= weights.sum()
    draws = rng_np.choice(domain_size, size=n, p=weights)
    return _materialize([int(v) for v in draws], random.Random(seed))


def clustered(
    n: int,
    domain_size: int,
    *,
    clusters: int = 8,
    spread_frac: float = 0.002,
    seed: int = 0,
) -> "list[tuple[int, int]]":
    """Gaussian-mixture values: a few tight clusters over the domain.

    Useful for adversarial SRC tests — a query near a heavy cluster is
    the worst case Lemma 1's slack can hit.
    """
    rng_np = np.random.default_rng(seed)
    centers = rng_np.integers(0, domain_size, size=clusters)
    spread = max(1.0, domain_size * spread_frac)
    assignments = rng_np.integers(0, clusters, size=n)
    raw = rng_np.normal(centers[assignments], spread)
    values = np.clip(np.rint(raw), 0, domain_size - 1).astype(int)
    return _materialize([int(v) for v in values], random.Random(seed))


def distinct_fraction(records: "list[tuple[int, int]]") -> float:
    """Observed distinct-value fraction of a dataset (sanity metric)."""
    if not records:
        return 0.0
    return len({value for _, value in records}) / len(records)
