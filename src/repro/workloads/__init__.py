"""Synthetic datasets (Gowalla/USPS stand-ins) and query workloads."""

from repro.workloads.datasets import (
    GOWALLA_DOMAIN,
    USPS_DOMAIN,
    clustered,
    distinct_fraction,
    gowalla_like,
    uniform,
    usps_like,
    with_distinct_fraction,
    zipf,
)
from repro.workloads.queries import (
    fixed_size_ranges,
    non_intersecting_ranges,
    percent_of_domain_ranges,
    random_range,
    random_ranges,
    sweep,
)

__all__ = [
    "GOWALLA_DOMAIN",
    "USPS_DOMAIN",
    "clustered",
    "distinct_fraction",
    "fixed_size_ranges",
    "gowalla_like",
    "non_intersecting_ranges",
    "percent_of_domain_ranges",
    "random_range",
    "random_ranges",
    "sweep",
    "uniform",
    "usps_like",
    "with_distinct_fraction",
    "zipf",
]
